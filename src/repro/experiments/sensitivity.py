"""Parameter-sensitivity experiments (Fig. 16).

Sweeps SATORI's two tunables — the prioritization period ``T_P`` and
the equalization period ``T_E`` — and reports throughput/fairness as
% of the Balanced Oracle. The paper's finding: performance is flat
across a wide range and only degrades for very long periods
(``T_P > 5 s``, ``T_E > 30 s``), i.e. SATORI does not need tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.controller import SatoriController
from repro.metrics.goals import GoalSet
from repro.policies.oracle import OraclePolicy, OracleSearch
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.experiments.comparison import full_space
from repro.experiments.runner import RunConfig, run_policy, experiment_catalog
from repro.workloads.mixes import JobMix

#: Paper-style sweep points (seconds).
DEFAULT_PRIORITIZATION_SWEEP = (0.5, 1.0, 2.0, 5.0, 10.0)
DEFAULT_EQUALIZATION_SWEEP = (5.0, 10.0, 20.0, 30.0, 60.0)


@dataclass(frozen=True)
class SweepPoint:
    """One sweep setting with its normalized scores."""

    value_s: float
    throughput_vs_oracle: float
    fairness_vs_oracle: float


@dataclass(frozen=True)
class SensitivityResult:
    """Fig. 16 data: scores across T_P and T_E sweeps."""

    mix_label: str
    prioritization: List[SweepPoint]
    equalization: List[SweepPoint]

    @staticmethod
    def _spread(points: Sequence[SweepPoint]) -> float:
        ts = [p.throughput_vs_oracle for p in points]
        fs = [p.fairness_vs_oracle for p in points]
        return max(max(ts) - min(ts), max(fs) - min(fs))

    def prioritization_spread(self) -> float:
        """Max %-point spread across the T_P sweep (low = insensitive)."""
        return self._spread(self.prioritization)

    def equalization_spread(self) -> float:
        return self._spread(self.equalization)


def period_sensitivity(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    prioritization_sweep: Sequence[float] = DEFAULT_PRIORITIZATION_SWEEP,
    equalization_sweep: Sequence[float] = DEFAULT_EQUALIZATION_SWEEP,
) -> SensitivityResult:
    """Sweep T_P (at T_E=10 s) and T_E (at T_P=1 s) on one mix."""
    catalog = catalog or experiment_catalog()
    goals = goals or GoalSet()
    rng = make_rng(seed)

    search = OracleSearch(mix, catalog, goals)
    oracle = run_policy(
        OraclePolicy(search, 0.5, 0.5), mix, catalog, run_config, goals, seed=spawn_rng(rng)
    )

    def run_point(t_p: float, t_e: float) -> Tuple[float, float]:
        controller = SatoriController(
            full_space(catalog, len(mix)),
            goals,
            prioritization_period_s=t_p,
            equalization_period_s=t_e,
            rng=spawn_rng(rng),
        )
        result = run_policy(controller, mix, catalog, run_config, goals, seed=spawn_rng(rng))
        return (
            100.0 * result.throughput / max(oracle.throughput, 1e-12),
            100.0 * result.fairness / max(oracle.fairness, 1e-12),
        )

    prioritization = []
    for t_p in prioritization_sweep:
        t_e = max(10.0, t_p)
        t, f = run_point(t_p, t_e)
        prioritization.append(SweepPoint(t_p, t, f))

    equalization = []
    for t_e in equalization_sweep:
        t, f = run_point(min(1.0, t_e), t_e)
        equalization.append(SweepPoint(t_e, t, f))

    return SensitivityResult(
        mix_label=mix.label, prioritization=prioritization, equalization=equalization
    )
