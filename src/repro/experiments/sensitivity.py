"""Parameter-sensitivity experiments (Fig. 16).

Sweeps SATORI's two tunables — the prioritization period ``T_P`` and
the equalization period ``T_E`` — and reports throughput/fairness as
% of the Balanced Oracle. The paper's finding: performance is flat
across a wide range and only degrades for very long periods
(``T_P > 5 s``, ``T_E > 30 s``), i.e. SATORI does not need tuning.

Every sweep point is a :class:`~repro.engine.RunSpec` (SATORI with the
periods as policy kwargs), so the whole sweep is one engine batch: the
points run in parallel and repeat visits to the same setting hit the
cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.engine import ExecutionEngine, RunSpec
from repro.metrics.goals import GoalSet
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike
from repro.experiments.comparison import seed_to_int
from repro.experiments.runner import RunConfig, RunResult, experiment_catalog
from repro.workloads.mixes import JobMix

#: Paper-style sweep points (seconds).
DEFAULT_PRIORITIZATION_SWEEP = (0.5, 1.0, 2.0, 5.0, 10.0)
DEFAULT_EQUALIZATION_SWEEP = (5.0, 10.0, 20.0, 30.0, 60.0)


@dataclass(frozen=True)
class SweepPoint:
    """One sweep setting with its normalized scores."""

    value_s: float
    throughput_vs_oracle: float
    fairness_vs_oracle: float


@dataclass(frozen=True)
class SensitivityResult:
    """Fig. 16 data: scores across T_P and T_E sweeps."""

    mix_label: str
    prioritization: List[SweepPoint]
    equalization: List[SweepPoint]

    @staticmethod
    def _spread(points: Sequence[SweepPoint]) -> float:
        ts = [p.throughput_vs_oracle for p in points]
        fs = [p.fairness_vs_oracle for p in points]
        return max(max(ts) - min(ts), max(fs) - min(fs))

    def prioritization_spread(self) -> float:
        """Max %-point spread across the T_P sweep (low = insensitive)."""
        return self._spread(self.prioritization)

    def equalization_spread(self) -> float:
        return self._spread(self.equalization)


def period_sensitivity(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    prioritization_sweep: Sequence[float] = DEFAULT_PRIORITIZATION_SWEEP,
    equalization_sweep: Sequence[float] = DEFAULT_EQUALIZATION_SWEEP,
    engine: Optional[ExecutionEngine] = None,
) -> SensitivityResult:
    """Sweep T_P (at T_E=10 s) and T_E (at T_P=1 s) on one mix."""
    catalog = catalog or experiment_catalog()
    run_config = run_config or RunConfig()
    goals = goals or GoalSet()
    engine = engine or ExecutionEngine()

    base = dict(
        mix=mix,
        catalog=catalog,
        run_config=run_config,
        goals=(goals.throughput_metric, goals.fairness_metric),
        seed=seed_to_int(seed),
    )

    def satori_spec(t_p: float, t_e: float) -> RunSpec:
        return RunSpec(
            policy="SATORI",
            policy_kwargs={
                "prioritization_period_s": float(t_p),
                "equalization_period_s": float(t_e),
            },
            **base,
        )

    oracle_spec = RunSpec(
        policy="Oracle", policy_kwargs={"w_throughput": 0.5, "w_fairness": 0.5}, **base
    )
    p_specs = [satori_spec(t_p, max(10.0, t_p)) for t_p in prioritization_sweep]
    e_specs = [satori_spec(min(1.0, t_e), t_e) for t_e in equalization_sweep]

    results = engine.run([oracle_spec, *p_specs, *e_specs])
    oracle = results[0]
    n_p = len(p_specs)

    def score(result: RunResult) -> Tuple[float, float]:
        return (
            100.0 * result.throughput / max(oracle.throughput, 1e-12),
            100.0 * result.fairness / max(oracle.fairness, 1e-12),
        )

    prioritization = [
        SweepPoint(t_p, *score(result))
        for t_p, result in zip(prioritization_sweep, results[1 : 1 + n_p])
    ]
    equalization = [
        SweepPoint(t_e, *score(result))
        for t_e, result in zip(equalization_sweep, results[1 + n_p :])
    ]

    return SensitivityResult(
        mix_label=mix.label, prioritization=prioritization, equalization=equalization
    )
