"""Overhead characterization (Sec. V, "SATORI is practical").

The paper measures: all BO-related tasks take ~1.2 ms of each 100 ms
interval; SATORI executes ~1 % of the job mix's instructions; the
idle optimization skips BO work entirely while performance is stable.
This driver measures the reproduction's equivalents on a live run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.controller import SatoriController
from repro.metrics.goals import GoalSet
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.experiments.comparison import full_space
from repro.experiments.runner import RunConfig, run_policy, experiment_catalog
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class OverheadResult:
    """Measured controller overhead for one run."""

    mix_label: str
    mean_decision_time_ms: float
    control_interval_ms: float
    idle_fraction: float
    n_decisions: int

    @property
    def decision_fraction_of_interval(self) -> float:
        """Decision time as a fraction of the control interval.

        The paper's equivalent number is 1.2 ms / 100 ms = 1.2 %. The
        decision is off the critical path (jobs keep running under the
        previous configuration while it is computed), so this is a
        compute-interference bound, not a stall.
        """
        return self.mean_decision_time_ms / self.control_interval_ms

    def estimated_instruction_overhead(
        self,
        controller_ips: float = 1.5e9,
        mix_total_ips: float = 6e9,
    ) -> float:
        """Controller instructions as a fraction of the mix's (paper: ~1 %).

        Estimated from the measured decision time: the controller
        occupies one core at ``controller_ips`` for
        ``mean_decision_time`` out of every interval, while the mix
        retires ``mix_total_ips``.
        """
        controller_instr = controller_ips * (self.mean_decision_time_ms / 1000.0)
        mix_instr = mix_total_ips * (self.control_interval_ms / 1000.0)
        return controller_instr / mix_instr


def controller_overhead(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    idle_detection: bool = True,
) -> OverheadResult:
    """Measure SATORI's decision-time overhead on a live run."""
    catalog = catalog or experiment_catalog()
    run_config = run_config or RunConfig(duration_s=15.0)
    rng = make_rng(seed)
    controller = SatoriController(
        full_space(catalog, len(mix)),
        goals,
        idle_detection=idle_detection,
        rng=spawn_rng(rng),
    )
    run_policy(controller, mix, catalog, run_config, goals, seed=spawn_rng(rng))
    return OverheadResult(
        mix_label=mix.label,
        mean_decision_time_ms=controller.mean_decision_time_s * 1000.0,
        control_interval_ms=run_config.interval_s * 1000.0,
        idle_fraction=controller.idle_fraction,
        n_decisions=run_config.n_steps,
    )
