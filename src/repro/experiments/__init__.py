"""Paper-reproduction experiment drivers (see DESIGN.md index)."""

from repro.experiments.ablation import (
    DesignChoiceResult,
    SubsetAblationResult,
    bo_design_ablation,
    resource_subset_ablation,
)
from repro.experiments.churn import ChurnResult, workload_churn
from repro.experiments.figures import FigureScale, figure_names, run_figure
from repro.experiments.qos import QosComparison, QosPolicyResult, qos_colocation
from repro.experiments.report import ReportConfig, generate_report
from repro.experiments.variants import VariantLimitsResult, single_goal_limits
from repro.experiments.extensions import (
    PowerExtensionResult,
    metric_sweep,
    power_capped_partitioning,
    power_catalog,
)
from repro.experiments.characterization import (
    DriftResult,
    GoalGapResult,
    RebalancingExample,
    conflicting_goal_gap,
    optimal_configuration_drift,
    rebalancing_opportunity,
)
from repro.experiments.comparison import (
    STANDARD_POLICY_ORDER,
    MixComparison,
    PolicyScore,
    aggregate,
    compare_on_mix,
    compare_on_mixes,
    comparison_specs,
    full_space,
    seed_to_int,
    standard_policies,
)
from repro.experiments.internals import (
    ObjectiveTraces,
    VariantComparison,
    VariationResult,
    WeightTrace,
    dynamic_vs_static,
    objective_trace,
    performance_variation,
    weak_goal_priority,
    weight_trace,
)
from repro.experiments.overhead import OverheadResult, controller_overhead
from repro.experiments.proximity import ProximityResult, distance_to_oracle
from repro.experiments.reporting import format_series, format_table
from repro.experiments.resilience import (
    DEFAULT_INTENSITIES,
    RESILIENCE_VARIANTS,
    ResilienceResult,
    VariantOutcome,
    moderate_fault_plan,
    recovery_time_s,
    resilience_specs,
    resilience_sweep,
)
from repro.experiments.runner import (
    RunConfig,
    RunResult,
    experiment_catalog,
    run_policy,
)
from repro.experiments.scalability import (
    DegreePoint,
    ScalabilityResult,
    colocation_scalability,
)
from repro.experiments.sensitivity import (
    DEFAULT_EQUALIZATION_SWEEP,
    DEFAULT_PRIORITIZATION_SWEEP,
    SensitivityResult,
    SweepPoint,
    period_sensitivity,
)

__all__ = [
    "ChurnResult",
    "DEFAULT_EQUALIZATION_SWEEP",
    "FigureScale",
    "QosComparison",
    "QosPolicyResult",
    "figure_names",
    "qos_colocation",
    "run_figure",
    "PowerExtensionResult",
    "ReportConfig",
    "VariantLimitsResult",
    "generate_report",
    "metric_sweep",
    "single_goal_limits",
    "power_capped_partitioning",
    "power_catalog",
    "workload_churn",
    "DEFAULT_PRIORITIZATION_SWEEP",
    "DegreePoint",
    "DesignChoiceResult",
    "DriftResult",
    "GoalGapResult",
    "MixComparison",
    "ObjectiveTraces",
    "OverheadResult",
    "PolicyScore",
    "ProximityResult",
    "DEFAULT_INTENSITIES",
    "RESILIENCE_VARIANTS",
    "RebalancingExample",
    "ResilienceResult",
    "RunConfig",
    "RunResult",
    "STANDARD_POLICY_ORDER",
    "VariantOutcome",
    "ScalabilityResult",
    "SensitivityResult",
    "SubsetAblationResult",
    "SweepPoint",
    "VariantComparison",
    "VariationResult",
    "WeightTrace",
    "aggregate",
    "bo_design_ablation",
    "colocation_scalability",
    "compare_on_mix",
    "compare_on_mixes",
    "comparison_specs",
    "conflicting_goal_gap",
    "controller_overhead",
    "distance_to_oracle",
    "dynamic_vs_static",
    "experiment_catalog",
    "format_series",
    "format_table",
    "full_space",
    "objective_trace",
    "optimal_configuration_drift",
    "performance_variation",
    "moderate_fault_plan",
    "period_sensitivity",
    "rebalancing_opportunity",
    "recovery_time_s",
    "resilience_specs",
    "resilience_sweep",
    "resource_subset_ablation",
    "run_policy",
    "seed_to_int",
    "standard_policies",
    "weak_goal_priority",
    "weight_trace",
]
