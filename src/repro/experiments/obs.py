"""Self-measurement: where does a SATORI control interval's time go?

Extends :mod:`repro.experiments.overhead` — which reports only the
controller's aggregate decision time — with a span-level budget: the
same live run executes under a real :class:`~repro.obs.TraceCollector`,
and the recorded ``gp_fit`` / ``acquisition`` / ``actuation`` spans
decompose the measured overhead into the paper's components (Sec. V:
"all BO-related tasks take ~1.2 ms of each 100 ms interval").

The decomposition is honest rather than definitional: the components
are timed independently of the enclosing ``suggest``/``decide`` spans,
so their sum *measured* as >= 90 % of the decision latency is evidence
the instrumentation covers the budget, not an identity. Controller
time outside the decision path — sample validation, record keeping,
weight scheduling — is monitoring-side bookkeeping and reported
separately (``bookkeeping_ms``), mirroring the paper's own split of
monitoring cost from BO-task cost.

``idle_detection`` defaults to off here, unlike the production
controller: the overhead question is about the worst case — BO work
every interval — and idle intervals would dilute the breakdown with
near-zero decide spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import serialize
from repro.core.controller import SatoriController
from repro.experiments.comparison import full_space
from repro.experiments.runner import RunConfig, experiment_catalog, run_policy
from repro.metrics.goals import GoalSet
from repro.obs import SPAN, TraceCollector, use_collector
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class SpanStat:
    """Aggregate timing of one span name over a run."""

    name: str
    count: int
    total_ms: float
    mean_ms: float
    max_ms: float

    def to_dict(self) -> dict:
        return serialize.dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SpanStat":
        return serialize.dataclass_from_dict(cls, data)


@dataclass(frozen=True)
class DecisionBudget:
    """The per-interval decision-latency budget, decomposed.

    All ``*_ms`` fields are totals over the run; the per-interval and
    fraction views are derived properties. The decomposition follows
    the paper's own split of online cost (Sec. V): *decision latency*
    is the BO suggestion (``suggest_ms``, itself split into GP fit and
    acquisition) plus actuation; the controller's remaining per-sample
    work — monitor-feed validation, record keeping, weight scheduling —
    is monitoring-side bookkeeping, reported separately as
    :attr:`bookkeeping_ms` rather than folded into the decision path.
    """

    n_intervals: int
    control_interval_ms: float
    decide_ms: float
    suggest_ms: float
    gp_fit_ms: float
    acquisition_ms: float
    actuation_ms: float

    @property
    def overhead_ms(self) -> float:
        """Measured decision latency: BO suggestion + actuation."""
        return self.suggest_ms + self.actuation_ms

    @property
    def total_overhead_ms(self) -> float:
        """Everything controller-side: decide (incl. bookkeeping) + actuation."""
        return self.decide_ms + self.actuation_ms

    @property
    def bookkeeping_ms(self) -> float:
        """Decide time outside the BO suggestion: sample validation,
        record keeping, and weight scheduling (monitoring-side work)."""
        return max(0.0, self.decide_ms - self.suggest_ms)

    @property
    def other_decision_ms(self) -> float:
        """Suggest time not captured by the GP-fit/acquisition spans."""
        return max(0.0, self.suggest_ms - self.gp_fit_ms - self.acquisition_ms)

    @property
    def component_ms(self) -> float:
        """Sum of the three instrumented components."""
        return self.gp_fit_ms + self.acquisition_ms + self.actuation_ms

    @property
    def span_coverage(self) -> float:
        """Fraction of the measured decision latency the component
        spans explain (acceptance target: >= 0.9). Measured, not
        definitional: the components are timed by their own spans,
        independently of the enclosing ``suggest`` span."""
        return self.component_ms / self.overhead_ms if self.overhead_ms > 0 else 0.0

    @property
    def mean_overhead_ms(self) -> float:
        """Mean decision latency per interval (the paper's ~1.2 ms)."""
        return self.overhead_ms / self.n_intervals if self.n_intervals else 0.0

    @property
    def overhead_fraction_of_interval(self) -> float:
        return self.mean_overhead_ms / self.control_interval_ms

    def to_dict(self) -> dict:
        return serialize.dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionBudget":
        return serialize.dataclass_from_dict(cls, data)


@dataclass(frozen=True)
class ObsReport:
    """One instrumented SATORI run, summarized.

    ``mean_decision_time_ms`` comes from the controller's own
    wall-clock accounting (the :mod:`~repro.experiments.overhead`
    metric) and cross-checks the span-derived ``budget.decide_ms``;
    the two are measured independently.
    """

    mix_label: str
    policy_name: str
    idle_detection: bool
    idle_fraction: float
    mean_decision_time_ms: float
    budget: DecisionBudget
    span_stats: Tuple[SpanStat, ...]
    counters: Tuple[Tuple[str, float], ...]
    n_events: int

    _CODECS = {
        "budget": serialize.object_codec(DecisionBudget),
        "span_stats": serialize.FieldCodec(
            encode=lambda value: [s.to_dict() for s in value],
            decode=lambda data: tuple(SpanStat.from_dict(d) for d in data),
        ),
        "counters": serialize.FieldCodec(
            encode=lambda value: [[name, v] for name, v in value],
            decode=lambda data: tuple((str(name), float(v)) for name, v in data),
        ),
    }

    def to_dict(self) -> dict:
        return serialize.dataclass_to_dict(self, codecs=self._CODECS)

    @classmethod
    def from_dict(cls, data: dict) -> "ObsReport":
        return serialize.dataclass_from_dict(cls, data, codecs=cls._CODECS)

    def counter(self, name: str) -> float:
        for counter_name, value in self.counters:
            if counter_name == name:
                return value
        return 0.0


def summarize_collector(
    collector: TraceCollector,
    mix_label: str,
    policy_name: str,
    control_interval_ms: float,
    idle_detection: bool,
    idle_fraction: float,
    mean_decision_time_ms: float,
) -> ObsReport:
    """Condense a collector's events and metrics into an :class:`ObsReport`."""
    totals: Dict[str, list] = {}
    for event in collector.events:
        if event.kind != SPAN:
            continue
        totals.setdefault(event.name, []).append(event.duration_ns / 1e6)
    span_stats = tuple(
        SpanStat(
            name=name,
            count=len(durations),
            total_ms=sum(durations),
            mean_ms=sum(durations) / len(durations),
            max_ms=max(durations),
        )
        for name, durations in sorted(totals.items())
    )

    def total_ms(name: str) -> float:
        return sum(totals.get(name, ()))

    n_intervals = len(totals.get("interval", totals.get("decide", ())))
    budget = DecisionBudget(
        n_intervals=n_intervals,
        control_interval_ms=control_interval_ms,
        decide_ms=total_ms("decide"),
        suggest_ms=total_ms("suggest"),
        gp_fit_ms=total_ms("gp_fit"),
        acquisition_ms=total_ms("acquisition"),
        actuation_ms=total_ms("actuation"),
    )
    return ObsReport(
        mix_label=mix_label,
        policy_name=policy_name,
        idle_detection=idle_detection,
        idle_fraction=idle_fraction,
        mean_decision_time_ms=mean_decision_time_ms,
        budget=budget,
        span_stats=span_stats,
        counters=tuple(sorted(collector.metrics.counters().items())),
        n_events=len(collector.events),
    )


def observed_overhead(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    idle_detection: bool = False,
    collector: Optional[TraceCollector] = None,
) -> Tuple[ObsReport, TraceCollector]:
    """Run SATORI under a live collector and decompose its overhead.

    Returns the report together with the collector, so callers can
    export the raw trace (JSONL / Chrome) alongside the summary.
    """
    catalog = catalog or experiment_catalog()
    run_config = run_config or RunConfig(duration_s=15.0)
    rng = make_rng(seed)
    controller = SatoriController(
        full_space(catalog, len(mix)),
        goals,
        idle_detection=idle_detection,
        rng=spawn_rng(rng),
    )
    collector = collector if collector is not None else TraceCollector()
    with use_collector(collector):
        run_policy(controller, mix, catalog, run_config, goals, seed=spawn_rng(rng))
    report = summarize_collector(
        collector,
        mix_label=mix.label,
        policy_name=controller.name,
        control_interval_ms=run_config.interval_s * 1000.0,
        idle_detection=idle_detection,
        idle_fraction=controller.idle_fraction,
        mean_decision_time_ms=controller.mean_decision_time_s * 1000.0,
    )
    return report, collector
