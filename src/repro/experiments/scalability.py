"""Co-location-degree scalability (Sec. V, "scalability" paragraph).

The paper: as the co-location degree grows from 3 to 7 applications,
the %-point gap between SATORI and PARTIES grows monotonically
(8, 11, 13, 13, 15 points) because the configuration space grows and
gradient descent gets stuck in the proliferating local maxima.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine import ExecutionEngine
from repro.errors import ExperimentError
from repro.metrics.goals import GoalSet
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike
from repro.experiments.comparison import compare_on_mixes, seed_to_int
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.workloads.mixes import JobMix, suite_mixes
from repro.workloads.registry import WorkloadRegistry, default_registry


@dataclass(frozen=True)
class DegreePoint:
    """Scores at one co-location degree."""

    degree: int
    satori_throughput: float
    satori_fairness: float
    parties_throughput: float
    parties_fairness: float

    @property
    def throughput_gap_points(self) -> float:
        return self.satori_throughput - self.parties_throughput

    @property
    def fairness_gap_points(self) -> float:
        return self.satori_fairness - self.parties_fairness


@dataclass(frozen=True)
class ScalabilityResult:
    """SATORI-vs-PARTIES gap across co-location degrees."""

    points: List[DegreePoint]

    def gaps(self) -> List[float]:
        """Mean of the throughput and fairness gaps per degree."""
        return [
            0.5 * (p.throughput_gap_points + p.fairness_gap_points) for p in self.points
        ]


def colocation_scalability(
    degrees: Sequence[int] = (3, 4, 5, 6, 7),
    suite: str = "parsec",
    mixes_per_degree: int = 2,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    registry: Optional[WorkloadRegistry] = None,
    engine: Optional[ExecutionEngine] = None,
) -> ScalabilityResult:
    """Compare SATORI and PARTIES across co-location degrees.

    For each degree, a few representative mixes (deterministically
    chosen from the ``C(7, degree)`` combinations) are averaged; each
    degree's mixes go to the engine as one batch.
    """
    catalog = catalog or experiment_catalog()
    registry = registry or default_registry()
    engine = engine or ExecutionEngine()
    seed_int = seed_to_int(seed)
    n_available = len(registry.suite(suite))

    points = []
    for degree in degrees:
        if degree > n_available:
            raise ExperimentError(
                f"degree {degree} exceeds the {n_available} workloads of suite {suite!r}"
            )
        all_mixes = suite_mixes(suite, mix_size=degree, registry=registry)
        stride = max(1, len(all_mixes) // mixes_per_degree)
        chosen = all_mixes[::stride][:mixes_per_degree]

        comparisons = compare_on_mixes(
            chosen,
            catalog=catalog,
            run_config=run_config,
            goals=goals,
            seed=seed_int,
            include=("PARTIES", "SATORI"),
            engine=engine,
        )
        sat_t = [c.score("SATORI").throughput_vs_oracle for c in comparisons]
        sat_f = [c.score("SATORI").fairness_vs_oracle for c in comparisons]
        par_t = [c.score("PARTIES").throughput_vs_oracle for c in comparisons]
        par_f = [c.score("PARTIES").fairness_vs_oracle for c in comparisons]

        points.append(
            DegreePoint(
                degree=degree,
                satori_throughput=float(np.mean(sat_t)),
                satori_fairness=float(np.mean(sat_f)),
                parties_throughput=float(np.mean(par_t)),
                parties_fairness=float(np.mean(par_f)),
            )
        )
    return ScalabilityResult(points=points)
