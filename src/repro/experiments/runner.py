"""Experiment runner: one policy controlling one job mix.

Implements the measurement methodology of Sec. IV via
:class:`~repro.system.session.ControlSession`:

* 0.1 s control/sampling intervals;
* isolation baselines measured online at the start and re-measured
  every equalization period (Algorithm 1, lines 12-13) — policies see
  the *held* (possibly stale) baseline, exactly like the real system;
* telemetry scored against the *true* current isolation performance,
  so reported throughput/fairness reflect reality rather than the
  controller's belief.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro import serialize
from repro.errors import ExperimentError
from repro.faults.plan import FaultPlan
from repro.faults.schedule import FaultSchedule
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.resources.types import ResourceCatalog, default_catalog
from repro.rng import SeedLike
from repro.state import PolicyState
from repro.system.session import ControlSession
from repro.system.simulation import DEFAULT_CONTROL_INTERVAL_S, CoLocationSimulator
from repro.system.telemetry import TelemetryLog
from repro.workloads.mixes import JobMix

#: Factory signature used by comparison drivers: policies are stateful,
#: so each run constructs a fresh one.
PolicyFactory = Callable[[ResourceCatalog, int], PartitioningPolicy]


def experiment_catalog(units: int = 8) -> ResourceCatalog:
    """The reduced-scale default catalog for reproduction experiments.

    Keeps the default server's total capacities (10 cores worth of
    compute, 13.75 MB LLC, 12 GB/s of sustained bandwidth) but
    quantizes LLC/bandwidth into ``units`` allocation units so the
    brute-force Oracle stays fast (see DESIGN.md). ``units=10``
    restores the paper's scale.
    """
    if units < 2:
        raise ExperimentError(f"need at least 2 units per resource, got {units}")
    return default_catalog(
        cores=units,
        llc_ways=units,
        bandwidth_units=units,
        llc_way_bytes=13.75 * 2**20 / units,
        bandwidth_unit_bytes=12e9 / units,
    )


@dataclass(frozen=True)
class RunConfig:
    """Methodology knobs for one policy run.

    ``actuation_retries`` is the simulator's bounded-retry budget for
    installs that fail under fault injection; it lives here (rather
    than as a loose runner argument) so a :class:`~repro.engine.RunSpec`
    digest covers it.
    """

    duration_s: float = 20.0
    interval_s: float = DEFAULT_CONTROL_INTERVAL_S
    baseline_reset_s: float = 10.0
    noise_sigma: float = 0.03
    phase_offset_s: float = 0.0
    warmup_fraction: float = 0.25
    actuation_retries: int = 2

    def __post_init__(self) -> None:
        if self.duration_s < self.interval_s:
            raise ExperimentError("duration must cover at least one interval")
        if not 0 <= self.warmup_fraction < 1:
            raise ExperimentError(f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}")
        if self.actuation_retries < 0:
            raise ExperimentError(
                f"actuation_retries must be >= 0, got {self.actuation_retries}"
            )

    @property
    def n_steps(self) -> int:
        return max(1, round(self.duration_s / self.interval_s))

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return serialize.dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Rebuild from :meth:`to_dict` output (lenient: unknown keys
        are ignored so old artifacts stay readable as fields grow)."""
        return serialize.dataclass_from_dict(cls, data)


@dataclass(frozen=True)
class RunResult:
    """A completed policy run with its scored telemetry.

    ``final_state`` is the policy's snapshot at session end (``None``
    for stateless policies): feed it to a later spec's
    ``initial_state`` to warm-start a continuation run.
    """

    policy_name: str
    mix_label: str
    telemetry: TelemetryLog
    run_config: RunConfig
    final_state: Optional[PolicyState] = None

    @property
    def scored(self) -> TelemetryLog:
        """Telemetry after discarding the warmup transient."""
        keep = 1.0 - self.run_config.warmup_fraction
        return self.telemetry.tail(keep) if keep < 1.0 else self.telemetry

    @property
    def throughput(self) -> float:
        return self.scored.mean_throughput()

    @property
    def fairness(self) -> float:
        return self.scored.mean_fairness()

    @property
    def worst_job_speedup(self) -> float:
        return self.scored.worst_job_speedup()

    _CODECS = {
        "telemetry": serialize.object_codec(TelemetryLog),
        "run_config": serialize.FieldCodec(
            encode=lambda value: value.to_dict(), decode=lambda data: RunConfig.from_dict(data)
        ),
        "final_state": serialize.optional(serialize.object_codec(PolicyState)),
    }

    def to_dict(self) -> dict:
        """JSON-compatible representation of the full run (lossless).

        The engine's on-disk cache and its worker processes both ship
        results through this representation, so equality of
        ``to_dict`` outputs is the engine's definition of
        "bit-identical results".
        """
        return serialize.dataclass_to_dict(self, codecs=self._CODECS)

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a run result from :meth:`to_dict` output."""
        return serialize.dataclass_from_dict(cls, data, codecs=cls._CODECS)


def run_policy(
    policy: PartitioningPolicy,
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = None,
    faults: Optional[FaultPlan] = None,
    fault_seed: int = 0,
) -> RunResult:
    """Run ``policy`` on ``mix`` for one experiment and score it.

    Args:
        policy: a fresh (or reset) policy instance.
        mix: the co-located workloads.
        catalog: server resources (defaults to the experiment catalog).
        run_config: methodology knobs; defaults per Sec. IV.
        goals: metric choices for telemetry scoring.
        seed: controls measurement noise (give different seeds to
            repeated runs to vary the noise realization).
        faults: optional fault plan; realized deterministically from
            ``fault_seed`` into a schedule the simulator injects.
        fault_seed: seed for the fault realization (independent of the
            measurement-noise seed).
    """
    catalog = catalog or experiment_catalog()
    run_config = run_config or RunConfig()
    goals = goals or GoalSet()

    schedule = None
    if faults is not None and not faults.is_empty:
        schedule = FaultSchedule.generate(
            faults,
            n_jobs=len(mix),
            duration_s=run_config.duration_s,
            interval_s=run_config.interval_s,
            seed=fault_seed,
        )

    simulator = CoLocationSimulator(
        mix,
        catalog=catalog,
        control_interval_s=run_config.interval_s,
        noise_sigma=run_config.noise_sigma,
        seed=seed,
        phase_offset_s=run_config.phase_offset_s,
        fault_schedule=schedule,
        actuation_retries=run_config.actuation_retries,
    )
    session = ControlSession(
        policy,
        simulator,
        goals=goals,
        baseline_reset_s=run_config.baseline_reset_s,
    )
    session.run(run_config.n_steps)

    return RunResult(
        policy_name=policy.name,
        mix_label=mix.label,
        telemetry=session.telemetry,
        run_config=run_config,
        final_state=session.policy_state(),
    )
