"""Multi-policy comparisons normalized to the Balanced Oracle.

The paper presents all evaluation results "as % of Balanced Oracle
(i.e., % distance from the theoretical optimal)" (Sec. IV). This
module runs every competing policy on a mix (or a list of mixes),
runs the Balanced Oracle on the same mixes, and reports normalized
throughput and fairness — the data behind Figs. 7-13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.controller import SatoriController
from repro.errors import ExperimentError
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.policies.copart import CoPartPolicy
from repro.policies.dcat import DCatPolicy
from repro.policies.oracle import OraclePolicy, OracleSearch
from repro.policies.parties import PartiesPolicy
from repro.policies.random_search import RandomSearchPolicy
from repro.resources.space import ConfigurationSpace
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH, ResourceCatalog
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.experiments.runner import RunConfig, RunResult, experiment_catalog, run_policy
from repro.workloads.mixes import JobMix

#: Canonical policy order used in tables (mirrors Fig. 7's x axis).
STANDARD_POLICY_ORDER = ("Random", "dCAT", "CoPart", "PARTIES", "SATORI")


@dataclass(frozen=True)
class PolicyScore:
    """One policy's scores on one mix, normalized to the Balanced Oracle."""

    policy_name: str
    mix_label: str
    throughput: float
    fairness: float
    worst_job_speedup: float
    throughput_vs_oracle: float
    fairness_vs_oracle: float
    worst_job_vs_oracle: float


@dataclass(frozen=True)
class MixComparison:
    """All policies' scores on one mix plus the oracle reference."""

    mix_label: str
    oracle: RunResult
    scores: Dict[str, PolicyScore]

    def score(self, policy_name: str) -> PolicyScore:
        try:
            return self.scores[policy_name]
        except KeyError:
            raise ExperimentError(
                f"no score for {policy_name!r}; have {sorted(self.scores)}"
            ) from None


def full_space(catalog: ResourceCatalog, n_jobs: int) -> ConfigurationSpace:
    """Space over the three paper resources (cores, LLC, bandwidth)."""
    return ConfigurationSpace(catalog.subset([CORES, LLC_WAYS, MEMORY_BANDWIDTH]), n_jobs)


def standard_policies(
    catalog: ResourceCatalog,
    n_jobs: int,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = None,
    include: Sequence[str] = STANDARD_POLICY_ORDER,
    satori_kwargs: Optional[dict] = None,
) -> Dict[str, PartitioningPolicy]:
    """Fresh instances of the paper's competing policies.

    Args:
        include: which of the standard policy names to build.
        satori_kwargs: forwarded to :class:`SatoriController`.
    """
    rng = make_rng(seed)
    goals = goals or GoalSet()
    space = full_space(catalog, n_jobs)
    builders: Dict[str, Callable[[], PartitioningPolicy]] = {
        "Random": lambda: RandomSearchPolicy(space, goals, rng=spawn_rng(rng)),
        "dCAT": lambda: DCatPolicy(
            ConfigurationSpace(catalog.subset([LLC_WAYS]), n_jobs), goals, rng=spawn_rng(rng)
        ),
        "CoPart": lambda: CoPartPolicy(
            ConfigurationSpace(catalog.subset([LLC_WAYS, MEMORY_BANDWIDTH]), n_jobs), goals
        ),
        "PARTIES": lambda: PartiesPolicy(space, goals),
        "SATORI": lambda: SatoriController(
            space, goals, rng=spawn_rng(rng), **(satori_kwargs or {})
        ),
    }
    unknown = set(include) - set(builders)
    if unknown:
        raise ExperimentError(f"unknown policies {sorted(unknown)}; have {sorted(builders)}")
    return {name: builders[name]() for name in include}


def compare_on_mix(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    include: Sequence[str] = STANDARD_POLICY_ORDER,
    satori_kwargs: Optional[dict] = None,
    extra_policies: Optional[Dict[str, PartitioningPolicy]] = None,
    oracle_search: Optional[OracleSearch] = None,
) -> MixComparison:
    """Run the standard policies plus the Balanced Oracle on one mix."""
    catalog = catalog or experiment_catalog()
    goals = goals or GoalSet()
    rng = make_rng(seed)

    search = oracle_search or OracleSearch(mix, catalog, goals)
    oracle_policy = OraclePolicy(search, 0.5, 0.5)
    oracle = run_policy(oracle_policy, mix, catalog, run_config, goals, seed=spawn_rng(rng))

    policies = standard_policies(
        catalog, len(mix), goals, seed=spawn_rng(rng), include=include, satori_kwargs=satori_kwargs
    )
    if extra_policies:
        policies.update(extra_policies)

    scores: Dict[str, PolicyScore] = {}
    for name, policy in policies.items():
        result = run_policy(policy, mix, catalog, run_config, goals, seed=spawn_rng(rng))
        scores[name] = _normalize(result, oracle)
    return MixComparison(mix_label=mix.label, oracle=oracle, scores=scores)


def compare_on_mixes(
    mixes: Sequence[JobMix],
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    include: Sequence[str] = STANDARD_POLICY_ORDER,
    satori_kwargs: Optional[dict] = None,
) -> List[MixComparison]:
    """Run :func:`compare_on_mix` over a list of mixes (Figs. 8, 10, 11)."""
    rng = make_rng(seed)
    return [
        compare_on_mix(
            mix,
            catalog=catalog,
            run_config=run_config,
            goals=goals,
            seed=spawn_rng(rng),
            include=include,
            satori_kwargs=satori_kwargs,
        )
        for mix in mixes
    ]


def aggregate(
    comparisons: Sequence[MixComparison],
    policy_names: Optional[Sequence[str]] = None,
) -> Dict[str, Tuple[float, float]]:
    """Mean (throughput%, fairness%) of Balanced Oracle per policy.

    The aggregation behind Figs. 7, 12, 13.
    """
    if not comparisons:
        raise ExperimentError("no comparisons to aggregate")
    names = policy_names or sorted(comparisons[0].scores)
    result = {}
    for name in names:
        t = np.mean([c.score(name).throughput_vs_oracle for c in comparisons])
        f = np.mean([c.score(name).fairness_vs_oracle for c in comparisons])
        result[name] = (float(t), float(f))
    return result


def _normalize(result: RunResult, oracle: RunResult) -> PolicyScore:
    oracle_t = max(oracle.throughput, 1e-12)
    oracle_f = max(oracle.fairness, 1e-12)
    oracle_w = max(oracle.worst_job_speedup, 1e-12)
    return PolicyScore(
        policy_name=result.policy_name,
        mix_label=result.mix_label,
        throughput=result.throughput,
        fairness=result.fairness,
        worst_job_speedup=result.worst_job_speedup,
        throughput_vs_oracle=100.0 * result.throughput / oracle_t,
        fairness_vs_oracle=100.0 * result.fairness / oracle_f,
        worst_job_vs_oracle=100.0 * result.worst_job_speedup / oracle_w,
    )
