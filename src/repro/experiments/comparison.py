"""Multi-policy comparisons normalized to the Balanced Oracle.

The paper presents all evaluation results "as % of Balanced Oracle
(i.e., % distance from the theoretical optimal)" (Sec. IV). This
module describes every competing policy run on a mix (or a list of
mixes) as :class:`~repro.engine.RunSpec` jobs, submits them to an
:class:`~repro.engine.ExecutionEngine` — parallel and cache-aware —
and reports normalized throughput and fairness, the data behind
Figs. 7-13. The Balanced Oracle reference run is itself a spec, so the
engine's cache shares it across every driver that normalizes against
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import ExecutionEngine, RunSpec, derive_seed
from repro.errors import ExperimentError
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.policies.oracle import OraclePolicy, OracleSearch
from repro.policies.registry import make_policy, policy_names
from repro.resources.space import ConfigurationSpace
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH, ResourceCatalog
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.experiments.runner import RunConfig, RunResult, experiment_catalog, run_policy
from repro.workloads.mixes import JobMix

#: Canonical policy order used in tables (mirrors Fig. 7's x axis).
STANDARD_POLICY_ORDER = ("Random", "dCAT", "CoPart", "PARTIES", "SATORI")

#: Balanced Oracle weights (the normalization ceiling).
_ORACLE_KWARGS = {"w_throughput": 0.5, "w_fairness": 0.5}


@dataclass(frozen=True)
class PolicyScore:
    """One policy's scores on one mix, normalized to the Balanced Oracle."""

    policy_name: str
    mix_label: str
    throughput: float
    fairness: float
    worst_job_speedup: float
    throughput_vs_oracle: float
    fairness_vs_oracle: float
    worst_job_vs_oracle: float


@dataclass(frozen=True)
class MixComparison:
    """All policies' scores on one mix plus the oracle reference."""

    mix_label: str
    oracle: RunResult
    scores: Dict[str, PolicyScore]

    def score(self, policy_name: str) -> PolicyScore:
        try:
            return self.scores[policy_name]
        except KeyError:
            raise ExperimentError(
                f"no score for {policy_name!r}; have {sorted(self.scores)}"
            ) from None


def full_space(catalog: ResourceCatalog, n_jobs: int) -> ConfigurationSpace:
    """Space over the three paper resources (cores, LLC, bandwidth)."""
    return ConfigurationSpace(catalog.subset([CORES, LLC_WAYS, MEMORY_BANDWIDTH]), n_jobs)


def seed_to_int(seed: SeedLike) -> int:
    """Collapse a SeedLike into the integer a :class:`RunSpec` carries.

    Integers pass through unchanged (the reproducible path); a
    generator or ``None`` draws one value, preserving the "no seed =
    fresh randomness" convention of the legacy drivers.
    """
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        return int(seed)
    return int(make_rng(seed).integers(0, 2**63 - 1))


def comparison_specs(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    include: Sequence[str] = STANDARD_POLICY_ORDER,
    satori_kwargs: Optional[dict] = None,
) -> Tuple[RunSpec, Dict[str, RunSpec]]:
    """The Balanced Oracle spec plus one spec per included policy.

    The returned specs fully determine the comparison: submitting them
    to any engine — serial, parallel, cached — yields bit-identical
    :class:`MixComparison` tables.
    """
    catalog = catalog or experiment_catalog()
    run_config = run_config or RunConfig()
    goals = goals or GoalSet()
    known = set(policy_names())
    unknown = set(include) - known
    if unknown:
        raise ExperimentError(f"unknown policies {sorted(unknown)}; have {sorted(known)}")
    base = dict(
        mix=mix,
        catalog=catalog,
        run_config=run_config,
        goals=(goals.throughput_metric, goals.fairness_metric),
        seed=seed_to_int(seed),
    )
    oracle = RunSpec(policy="Oracle", policy_kwargs=_ORACLE_KWARGS, **base)
    specs = {
        name: RunSpec(
            policy=name,
            policy_kwargs=(satori_kwargs or {}) if name == "SATORI" else {},
            **base,
        )
        for name in include
    }
    return oracle, specs


def standard_policies(
    catalog: ResourceCatalog,
    n_jobs: int,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = None,
    include: Sequence[str] = STANDARD_POLICY_ORDER,
    satori_kwargs: Optional[dict] = None,
) -> Dict[str, PartitioningPolicy]:
    """Fresh instances of the paper's competing policies.

    Construction goes through the policy-factory registry
    (:mod:`repro.policies.registry`) — the same factories the engine's
    worker processes use — rather than ad-hoc closures.

    Args:
        include: which of the standard policy names to build.
        satori_kwargs: forwarded to :class:`SatoriController`.
    """
    rng = make_rng(seed)
    goals = goals or GoalSet()
    known = set(policy_names())
    unknown = set(include) - known
    if unknown:
        raise ExperimentError(f"unknown policies {sorted(unknown)}; have {sorted(known)}")
    policies: Dict[str, PartitioningPolicy] = {}
    for name in include:
        kwargs = (satori_kwargs or {}) if name == "SATORI" else {}
        policies[name] = make_policy(
            name, None, catalog, goals, rng=spawn_rng(rng), n_jobs=n_jobs, **kwargs
        )
    return policies


def compare_on_mix(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    include: Sequence[str] = STANDARD_POLICY_ORDER,
    satori_kwargs: Optional[dict] = None,
    extra_policies: Optional[Dict[str, PartitioningPolicy]] = None,
    oracle_search: Optional[OracleSearch] = None,
    engine: Optional[ExecutionEngine] = None,
) -> MixComparison:
    """Run the standard policies plus the Balanced Oracle on one mix.

    Args:
        engine: execution engine; defaults to a fresh serial engine.
            Pass a shared parallel/cached engine to fan the runs out.
        extra_policies: pre-built policy instances to score alongside
            the registry policies; these cannot cross process
            boundaries, so they always run in-process (uncached).
        oracle_search: a pre-built (shareable) search used instead of
            the engine's own Oracle run; in-process as well.
    """
    catalog = catalog or experiment_catalog()
    run_config = run_config or RunConfig()
    goals = goals or GoalSet()
    engine = engine or ExecutionEngine()

    oracle_spec, policy_specs = comparison_specs(
        mix, catalog, run_config, goals, seed, include, satori_kwargs
    )
    if oracle_search is not None:
        # Legacy path: honor the caller's search object but keep the
        # noise stream identical to what the oracle spec would use.
        oracle = run_policy(
            OraclePolicy(oracle_search, 0.5, 0.5),
            mix,
            catalog,
            run_config,
            goals,
            seed=derive_seed(oracle_spec.cold_digest, "noise"),
        )
        results = engine.run(list(policy_specs.values()))
    else:
        batch = engine.run([oracle_spec, *policy_specs.values()])
        oracle, results = batch[0], batch[1:]

    scores: Dict[str, PolicyScore] = {
        name: _normalize(result, oracle) for name, result in zip(policy_specs, results)
    }
    for name, policy in (extra_policies or {}).items():
        result = run_policy(
            policy,
            mix,
            catalog,
            run_config,
            goals,
            seed=derive_seed(oracle_spec.digest, "extra", name),
        )
        scores[name] = _normalize(result, oracle)
    return MixComparison(mix_label=mix.label, oracle=oracle, scores=scores)


def compare_on_mixes(
    mixes: Sequence[JobMix],
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    include: Sequence[str] = STANDARD_POLICY_ORDER,
    satori_kwargs: Optional[dict] = None,
    engine: Optional[ExecutionEngine] = None,
) -> List[MixComparison]:
    """Run :func:`compare_on_mix` over a list of mixes (Figs. 8, 10, 11).

    All runs across all mixes are submitted as one engine batch, so a
    parallel engine interleaves them freely; per-run noise depends
    only on each spec's content, never on the mix order.
    """
    engine = engine or ExecutionEngine()
    seed_int = seed_to_int(seed)

    per_mix: List[Tuple[JobMix, RunSpec, Dict[str, RunSpec]]] = []
    flat: List[RunSpec] = []
    for mix in mixes:
        oracle_spec, policy_specs = comparison_specs(
            mix, catalog, run_config, goals, seed_int, include, satori_kwargs
        )
        per_mix.append((mix, oracle_spec, policy_specs))
        flat.extend([oracle_spec, *policy_specs.values()])

    results = engine.run(flat)

    comparisons: List[MixComparison] = []
    cursor = 0
    for mix, _oracle_spec, policy_specs in per_mix:
        oracle = results[cursor]
        cursor += 1
        scores: Dict[str, PolicyScore] = {}
        for name in policy_specs:
            scores[name] = _normalize(results[cursor], oracle)
            cursor += 1
        comparisons.append(MixComparison(mix_label=mix.label, oracle=oracle, scores=scores))
    return comparisons


def aggregate(
    comparisons: Sequence[MixComparison],
    policy_names: Optional[Sequence[str]] = None,
) -> Dict[str, Tuple[float, float]]:
    """Mean (throughput%, fairness%) of Balanced Oracle per policy.

    The aggregation behind Figs. 7, 12, 13.
    """
    if not comparisons:
        raise ExperimentError("no comparisons to aggregate")
    names = policy_names or sorted(comparisons[0].scores)
    result = {}
    for name in names:
        t = np.mean([c.score(name).throughput_vs_oracle for c in comparisons])
        f = np.mean([c.score(name).fairness_vs_oracle for c in comparisons])
        result[name] = (float(t), float(f))
    return result


def _normalize(result: RunResult, oracle: RunResult) -> PolicyScore:
    oracle_t = max(oracle.throughput, 1e-12)
    oracle_f = max(oracle.fairness, 1e-12)
    oracle_w = max(oracle.worst_job_speedup, 1e-12)
    return PolicyScore(
        policy_name=result.policy_name,
        mix_label=result.mix_label,
        throughput=result.throughput,
        fairness=result.fairness,
        worst_job_speedup=result.worst_job_speedup,
        throughput_vs_oracle=100.0 * result.throughput / oracle_t,
        fairness_vs_oracle=100.0 * result.fairness / oracle_f,
        worst_job_vs_oracle=100.0 * result.worst_job_speedup / oracle_w,
    )
