"""Ablation experiments (Sec. V "source of SATORI's benefits" + design choices).

* Resource-subset ablation: SATORI restricted to dCAT's resource set
  (LLC only) still beats dCAT (+4 pts T / +5 pts F in the paper), and
  restricted to CoPart's set (LLC + bandwidth) still beats CoPart
  (+7 / +4) — SATORI's advantage is the search, not merely the wider
  knob set.
* Acquisition-function and kernel ablations for the design choices
  DESIGN.md calls out (EI + Matérn 5/2 vs the alternatives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.controller import SatoriController
from repro.core.kernels import RBF, Matern52
from repro.metrics.goals import GoalSet
from repro.policies.copart import CoPartPolicy
from repro.policies.dcat import DCatPolicy
from repro.policies.oracle import OraclePolicy, OracleSearch
from repro.resources.space import ConfigurationSpace
from repro.resources.types import LLC_WAYS, MEMORY_BANDWIDTH, ResourceCatalog
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.experiments.comparison import full_space
from repro.experiments.runner import RunConfig, run_policy, experiment_catalog
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class SubsetAblationResult:
    """SATORI vs the baseline that controls the same resource subset."""

    mix_label: str
    resources: Tuple[str, ...]
    satori_throughput: float
    satori_fairness: float
    baseline_name: str
    baseline_throughput: float
    baseline_fairness: float

    @property
    def throughput_gap_points(self) -> float:
        return self.satori_throughput - self.baseline_throughput

    @property
    def fairness_gap_points(self) -> float:
        return self.satori_fairness - self.baseline_fairness


def resource_subset_ablation(
    mix: JobMix,
    subset: Sequence[str],
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
) -> SubsetAblationResult:
    """Compare SATORI-on-a-subset against the matching baseline.

    ``subset`` must be dCAT's (``[LLC_WAYS]``) or CoPart's
    (``[LLC_WAYS, MEMORY_BANDWIDTH]``) resource set. Scores are % of
    the Balanced Oracle (which still searches all resources — the
    same normalization the paper uses).
    """
    catalog = catalog or experiment_catalog()
    goals = goals or GoalSet()
    rng = make_rng(seed)
    subset = tuple(subset)
    space = ConfigurationSpace(catalog.subset(subset), len(mix))

    if set(subset) == {LLC_WAYS}:
        baseline = DCatPolicy(space, goals, rng=spawn_rng(rng))
    elif set(subset) == {LLC_WAYS, MEMORY_BANDWIDTH}:
        baseline = CoPartPolicy(space, goals)
    else:
        raise ValueError(f"no matching baseline for resource subset {subset}")

    search = OracleSearch(mix, catalog, goals)
    oracle = run_policy(
        OraclePolicy(search, 0.5, 0.5), mix, catalog, run_config, goals, seed=spawn_rng(rng)
    )
    satori = SatoriController(space, goals, rng=spawn_rng(rng))
    satori_result = run_policy(satori, mix, catalog, run_config, goals, seed=spawn_rng(rng))
    baseline_result = run_policy(baseline, mix, catalog, run_config, goals, seed=spawn_rng(rng))

    to_pct = lambda v, ref: 100.0 * v / max(ref, 1e-12)
    return SubsetAblationResult(
        mix_label=mix.label,
        resources=subset,
        satori_throughput=to_pct(satori_result.throughput, oracle.throughput),
        satori_fairness=to_pct(satori_result.fairness, oracle.fairness),
        baseline_name=baseline.name,
        baseline_throughput=to_pct(baseline_result.throughput, oracle.throughput),
        baseline_fairness=to_pct(baseline_result.fairness, oracle.fairness),
    )


@dataclass(frozen=True)
class DesignChoiceResult:
    """Scores of SATORI under alternative BO design choices."""

    mix_label: str
    #: variant label -> (throughput % of oracle, fairness % of oracle).
    scores: Dict[str, Tuple[float, float]]


def bo_design_ablation(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
) -> DesignChoiceResult:
    """Swap the acquisition function and kernel (DESIGN.md ablations)."""
    catalog = catalog or experiment_catalog()
    goals = goals or GoalSet()
    rng = make_rng(seed)
    space = full_space(catalog, len(mix))

    search = OracleSearch(mix, catalog, goals)
    oracle = run_policy(
        OraclePolicy(search, 0.5, 0.5), mix, catalog, run_config, goals, seed=spawn_rng(rng)
    )

    variants = {
        "EI + Matern52 (paper)": dict(acquisition="ei", kernel=Matern52()),
        "PI + Matern52": dict(acquisition="pi", kernel=Matern52()),
        "UCB + Matern52": dict(acquisition="ucb", kernel=Matern52()),
        "EI + RBF": dict(acquisition="ei", kernel=RBF()),
    }
    scores: Dict[str, Tuple[float, float]] = {}
    for label, kwargs in variants.items():
        controller = SatoriController(space, goals, rng=spawn_rng(rng), **kwargs)
        result = run_policy(controller, mix, catalog, run_config, goals, seed=spawn_rng(rng))
        scores[label] = (
            100.0 * result.throughput / max(oracle.throughput, 1e-12),
            100.0 * result.fairness / max(oracle.fairness, 1e-12),
        )
    return DesignChoiceResult(mix_label=mix.label, scores=scores)
