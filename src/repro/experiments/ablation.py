"""Ablation experiments (Sec. V "source of SATORI's benefits" + design choices).

* Resource-subset ablation: SATORI restricted to dCAT's resource set
  (LLC only) still beats dCAT (+4 pts T / +5 pts F in the paper), and
  restricted to CoPart's set (LLC + bandwidth) still beats CoPart
  (+7 / +4) — SATORI's advantage is the search, not merely the wider
  knob set.
* Acquisition-function and kernel ablations for the design choices
  DESIGN.md calls out (EI + Matérn 5/2 vs the alternatives).

Every variant is expressed as :class:`~repro.engine.RunSpec` policy
kwargs (``resources``, ``acquisition``, ``kernel`` by name), so the
ablations are plain engine batches and share the Balanced Oracle run
with every other driver through the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.engine import ExecutionEngine, RunSpec
from repro.metrics.goals import GoalSet
from repro.resources.types import LLC_WAYS, MEMORY_BANDWIDTH, ResourceCatalog
from repro.rng import SeedLike
from repro.experiments.comparison import seed_to_int
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class SubsetAblationResult:
    """SATORI vs the baseline that controls the same resource subset."""

    mix_label: str
    resources: Tuple[str, ...]
    satori_throughput: float
    satori_fairness: float
    baseline_name: str
    baseline_throughput: float
    baseline_fairness: float

    @property
    def throughput_gap_points(self) -> float:
        return self.satori_throughput - self.baseline_throughput

    @property
    def fairness_gap_points(self) -> float:
        return self.satori_fairness - self.baseline_fairness


def _base_fields(mix, catalog, run_config, goals, seed) -> dict:
    return dict(
        mix=mix,
        catalog=catalog,
        run_config=run_config or RunConfig(),
        goals=(goals.throughput_metric, goals.fairness_metric),
        seed=seed_to_int(seed),
    )


def _oracle_spec(base: dict) -> RunSpec:
    return RunSpec(
        policy="Oracle", policy_kwargs={"w_throughput": 0.5, "w_fairness": 0.5}, **base
    )


def resource_subset_ablation(
    mix: JobMix,
    subset: Sequence[str],
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    engine: Optional[ExecutionEngine] = None,
) -> SubsetAblationResult:
    """Compare SATORI-on-a-subset against the matching baseline.

    ``subset`` must be dCAT's (``[LLC_WAYS]``) or CoPart's
    (``[LLC_WAYS, MEMORY_BANDWIDTH]``) resource set. Scores are % of
    the Balanced Oracle (which still searches all resources — the
    same normalization the paper uses).
    """
    catalog = catalog or experiment_catalog()
    goals = goals or GoalSet()
    engine = engine or ExecutionEngine()
    subset = tuple(subset)

    if set(subset) == {LLC_WAYS}:
        baseline_policy = "dCAT"
    elif set(subset) == {LLC_WAYS, MEMORY_BANDWIDTH}:
        baseline_policy = "CoPart"
    else:
        raise ValueError(f"no matching baseline for resource subset {subset}")

    base = _base_fields(mix, catalog, run_config, goals, seed)
    oracle, satori_result, baseline_result = engine.run(
        [
            _oracle_spec(base),
            RunSpec(policy="SATORI", policy_kwargs={"resources": subset}, **base),
            RunSpec(policy=baseline_policy, **base),
        ]
    )

    to_pct = lambda v, ref: 100.0 * v / max(ref, 1e-12)
    return SubsetAblationResult(
        mix_label=mix.label,
        resources=subset,
        satori_throughput=to_pct(satori_result.throughput, oracle.throughput),
        satori_fairness=to_pct(satori_result.fairness, oracle.fairness),
        baseline_name=baseline_result.policy_name,
        baseline_throughput=to_pct(baseline_result.throughput, oracle.throughput),
        baseline_fairness=to_pct(baseline_result.fairness, oracle.fairness),
    )


@dataclass(frozen=True)
class DesignChoiceResult:
    """Scores of SATORI under alternative BO design choices."""

    mix_label: str
    #: variant label -> (throughput % of oracle, fairness % of oracle).
    scores: Dict[str, Tuple[float, float]]


def bo_design_ablation(
    mix: JobMix,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
    engine: Optional[ExecutionEngine] = None,
) -> DesignChoiceResult:
    """Swap the acquisition function and kernel (DESIGN.md ablations)."""
    catalog = catalog or experiment_catalog()
    goals = goals or GoalSet()
    engine = engine or ExecutionEngine()

    variants = {
        "EI + Matern52 (paper)": dict(acquisition="ei", kernel="matern52"),
        "PI + Matern52": dict(acquisition="pi", kernel="matern52"),
        "UCB + Matern52": dict(acquisition="ucb", kernel="matern52"),
        "EI + RBF": dict(acquisition="ei", kernel="rbf"),
    }
    base = _base_fields(mix, catalog, run_config, goals, seed)
    results = engine.run(
        [
            _oracle_spec(base),
            *(
                RunSpec(policy="SATORI", policy_kwargs=kwargs, **base)
                for kwargs in variants.values()
            ),
        ]
    )
    oracle = results[0]
    scores: Dict[str, Tuple[float, float]] = {
        label: (
            100.0 * result.throughput / max(oracle.throughput, 1e-12),
            100.0 * result.fairness / max(oracle.fairness, 1e-12),
        )
        for label, result in zip(variants, results[1:])
    }
    return DesignChoiceResult(mix_label=mix.label, scores=scores)
