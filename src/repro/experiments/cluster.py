"""Cluster experiment: placement x partitioning-policy sweep.

The fleet-level analogue of the comparison driver: replay *one* job
arrival trace against every (placement policy x partitioning policy)
cell and compare cluster-wide throughput/fairness. Everything that is
*environment* — the trace, per-node fault plans, node-epoch seeds — is
shared verbatim across cells, so observed differences are attributable
to the policies, not to workload or fault luck.

Fault pairing: when ``fault_intensity > 0``, every *even-numbered*
node gets the same :func:`~repro.experiments.resilience.moderate_fault_plan`
(over the middle third of each node-epoch) while odd nodes stay clean.
Keying plans by node id — rather than by the jobs that happen to land
there — is what keeps the fault environment identical across placement
cells: a placement policy that routes jobs away from faulty nodes is
*supposed* to look better, and this design makes that effect visible
instead of confounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.budget import BudgetLike
from repro.cluster.simulator import ClusterResult, ClusterSimulator, MigrationConfig
from repro.engine import ExecutionEngine
from repro.errors import ClusterError
from repro.experiments.resilience import moderate_fault_plan
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.faults.plan import FaultPlan
from repro.resources.types import ResourceCatalog
from repro.workloads.arrivals import ArrivalTrace, poisson_trace

#: Placement policies the default sweep compares.
DEFAULT_PLACEMENTS: Tuple[str, ...] = ("round_robin", "contention_aware")

#: Partitioning policies the default sweep compares (registry ids).
DEFAULT_CLUSTER_POLICIES: Tuple[str, ...] = ("SATORI", "EqualPartition")


def node_fault_plans(
    n_nodes: int, intensity: float, epoch_duration_s: float
) -> Dict[int, FaultPlan]:
    """Paired per-node fault plans: even-numbered nodes are faulty.

    Returns an empty mapping at intensity 0. The mapping is a pure
    function of ``(n_nodes, intensity, epoch_duration_s)``, never of
    placements or traces, so every sweep cell faces the same faulty
    fleet.
    """
    plan = moderate_fault_plan(intensity, epoch_duration_s)
    if plan is None:
        return {}
    return {node_id: plan for node_id in range(0, n_nodes, 2)}


@dataclass(frozen=True)
class ClusterCell:
    """One (placement, partitioning policy) cell of the sweep."""

    placement: str
    policy: str
    result: ClusterResult


@dataclass(frozen=True)
class ClusterSweepResult:
    """The full sweep over one shared arrival trace."""

    n_nodes: int
    n_epochs: int
    n_jobs: int
    peak_jobs: int
    cells: Tuple[ClusterCell, ...]

    def cell(self, placement: str, policy: str) -> ClusterCell:
        for cell in self.cells:
            if cell.placement == placement and cell.policy == policy:
                return cell
        have = sorted({(c.placement, c.policy) for c in self.cells})
        raise ClusterError(f"no cell ({placement!r}, {policy!r}); have {have}")

    def placements(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.placement not in seen:
                seen.append(cell.placement)
        return tuple(seen)

    def policies(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.policy not in seen:
                seen.append(cell.policy)
        return tuple(seen)


def cluster_sweep(
    trace: ArrivalTrace,
    n_nodes: int,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    policies: Sequence[str] = DEFAULT_CLUSTER_POLICIES,
    catalog: Optional[ResourceCatalog] = None,
    epoch_config: Optional[RunConfig] = None,
    seed: int = 0,
    fault_intensity: float = 0.0,
    migration: Optional[MigrationConfig] = None,
    node_budgets: Optional[Sequence[BudgetLike]] = None,
    engine: Optional[ExecutionEngine] = None,
    warm_start: bool = False,
) -> ClusterSweepResult:
    """Run every (placement x policy) cell over one shared trace.

    Args:
        trace: the arrival trace, shared verbatim by every cell.
        n_nodes: fleet size.
        placements: placement-policy registry ids to compare.
        policies: partitioning-policy registry ids to compare.
        catalog: per-node catalog (homogeneous fleet).
        epoch_config: node-epoch methodology; ``duration_s`` is the
            epoch length.
        seed: cluster base seed (node-epoch seeds derive from it and
            node/epoch coordinates, pairing noise across cells).
        fault_intensity: intensity for :func:`node_fault_plans`;
            0 disables fault injection.
        migration: optional migration policy applied in every cell.
        node_budgets: optional per-node initial budgets (heterogeneous
            fleets) — every cell starts from the same budgets; see
            :class:`~repro.cluster.simulator.ClusterSimulator`.
        engine: shared execution engine — one engine across all cells
            lets the run cache deduplicate node-epochs that different
            placements happen to produce identically.
        warm_start: warm-start membership-stable node controllers from
            their prior-epoch snapshots in every cell (see
            :class:`~repro.cluster.simulator.ClusterSimulator`).
    """
    if not placements:
        raise ClusterError("need at least one placement policy")
    if not policies:
        raise ClusterError("need at least one partitioning policy")
    catalog = catalog or experiment_catalog()
    epoch_config = epoch_config or RunConfig(duration_s=5.0)
    engine = engine or ExecutionEngine()
    plans = node_fault_plans(n_nodes, fault_intensity, epoch_config.duration_s)

    cells: List[ClusterCell] = []
    for placement in placements:
        for policy in policies:
            simulator = ClusterSimulator(
                trace,
                n_nodes=n_nodes,
                placement=placement,  # fresh instance per cell (stateful)
                policy=policy,
                catalog=catalog,
                epoch_config=epoch_config,
                seed=seed,
                node_fault_plans=plans,
                migration=migration,
                node_budgets=node_budgets,
                engine=engine,
                warm_start=warm_start,
            )
            cells.append(
                ClusterCell(placement=placement, policy=policy, result=simulator.run())
            )
    return ClusterSweepResult(
        n_nodes=n_nodes,
        n_epochs=trace.n_epochs,
        n_jobs=len(trace),
        peak_jobs=trace.peak_jobs,
        cells=tuple(cells),
    )


def default_trace(
    n_epochs: int,
    n_nodes: int,
    arrival_rate: float = 1.5,
    mean_residency: float = 3.0,
    suite: str = "parsec",
    seed: int = 0,
    catalog: Optional[ResourceCatalog] = None,
    qos_fraction: float = 0.0,
) -> ArrivalTrace:
    """A sweep-ready trace sized to the fleet.

    Starts warm (one resident job per node) and admission-controls the
    Poisson stream at the fleet's physical capacity so placement — not
    blanket rejection — decides outcomes. ``qos_fraction`` tags that
    share of arrivals ``"qos"``; the default 0 draws no extra RNG and
    reproduces historical traces bit-for-bit.
    """
    catalog = catalog or experiment_catalog()
    capacity = min(resource.units // resource.min_units for resource in catalog)
    return poisson_trace(
        n_epochs=n_epochs,
        arrival_rate=arrival_rate,
        mean_residency=mean_residency,
        max_jobs=n_nodes * capacity,
        suites=(suite,),
        seed=seed,
        initial_jobs=n_nodes,
        qos_fraction=qos_fraction,
    )
