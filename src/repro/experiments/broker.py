"""Broker experiment: budget-broker x placement sweep.

The hierarchical-control-plane study: replay *one* job arrival trace
against every (broker scheme x placement policy) cell — each node
running the same partitioning policy underneath — and compare
cluster-wide throughput, long-term fairness, and SLO attainment.
``static`` is the control cell: bit-identical to the fixed-capacity
fleet, it answers "what did moving budget units actually buy?" via
per-job paired deltas (the same trace routes the same jobs, so each
job is its own control).

Environment pairing matches :mod:`repro.experiments.cluster`: the
trace, node-keyed fault plans, and node-epoch seeds are shared
verbatim by every cell, so observed differences are attributable to
the broker (and placement), not to workload or fault luck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.stats import PairedDelta, paired_deltas
from repro.broker import broker_names
from repro.cluster.budget import BudgetLike
from repro.cluster.simulator import ClusterResult, ClusterSimulator
from repro.engine import ExecutionEngine
from repro.errors import ClusterError, ExperimentError
from repro.experiments.cluster import node_fault_plans
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.resources.types import ResourceCatalog
from repro.workloads.arrivals import ArrivalTrace

#: Broker schemes the default sweep compares (``static`` is the control).
DEFAULT_BROKERS: Tuple[str, ...] = ("static", "harvest", "trade", "bo")

#: The speedup threshold a job must retain to "make its SLO".
DEFAULT_SLO_THRESHOLD = 0.8


@dataclass(frozen=True)
class BrokerCell:
    """One (broker scheme, placement policy) cell of the sweep."""

    broker: str
    placement: str
    result: ClusterResult


@dataclass(frozen=True)
class BrokerDelta:
    """One broker cell's paired comparison against its static control.

    Attributes:
        broker / placement: the treatment cell's coordinates.
        speedup: per-job paired speedup deltas (treatment - control),
            with a confidence interval on the mean difference.
        fairness_delta: cluster fairness (Jain over per-job means),
            treatment minus control.
        throughput_delta: cluster mean speedup, treatment minus control.
        slo_delta: SLO attainment fraction, treatment minus control.
        budget_transfers: units the treatment broker moved in total.
    """

    broker: str
    placement: str
    speedup: PairedDelta
    fairness_delta: float
    throughput_delta: float
    slo_delta: float
    budget_transfers: int


@dataclass(frozen=True)
class BrokerSweepResult:
    """The full broker x placement sweep over one shared trace."""

    n_nodes: int
    n_epochs: int
    n_jobs: int
    policy: str
    slo_threshold: float
    cells: Tuple[BrokerCell, ...]

    def cell(self, broker: str, placement: str) -> BrokerCell:
        for cell in self.cells:
            if cell.broker == broker and cell.placement == placement:
                return cell
        have = sorted({(c.broker, c.placement) for c in self.cells})
        raise ClusterError(f"no cell ({broker!r}, {placement!r}); have {have}")

    def brokers(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.broker not in seen:
                seen.append(cell.broker)
        return tuple(seen)

    def placements(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.placement not in seen:
                seen.append(cell.placement)
        return tuple(seen)

    def deltas_vs_static(self) -> List[BrokerDelta]:
        """Every non-static cell paired against the static control with
        the same placement. Requires ``"static"`` in the sweep."""
        deltas: List[BrokerDelta] = []
        for cell in self.cells:
            if cell.broker == "static":
                continue
            control = self.cell("static", cell.placement)
            try:
                speedup = paired_deltas(
                    control.result.job_mean_speedups(),
                    cell.result.job_mean_speedups(),
                )
            except ExperimentError:
                continue  # too few paired jobs (tiny traces)
            deltas.append(
                BrokerDelta(
                    broker=cell.broker,
                    placement=cell.placement,
                    speedup=speedup,
                    fairness_delta=cell.result.fairness - control.result.fairness,
                    throughput_delta=(
                        cell.result.mean_speedup - control.result.mean_speedup
                    ),
                    slo_delta=(
                        cell.result.slo_attainment(self.slo_threshold)
                        - control.result.slo_attainment(self.slo_threshold)
                    ),
                    budget_transfers=cell.result.budget_transfers,
                )
            )
        return deltas


def broker_sweep(
    trace: ArrivalTrace,
    n_nodes: int,
    brokers: Sequence[str] = DEFAULT_BROKERS,
    placements: Sequence[str] = ("round_robin",),
    policy: str = "SATORI",
    catalog: Optional[ResourceCatalog] = None,
    epoch_config: Optional[RunConfig] = None,
    seed: int = 0,
    fault_intensity: float = 0.0,
    node_budgets: Optional[Sequence[BudgetLike]] = None,
    slo_threshold: float = DEFAULT_SLO_THRESHOLD,
    engine: Optional[ExecutionEngine] = None,
) -> BrokerSweepResult:
    """Run every (broker x placement) cell over one shared trace.

    Args:
        trace: the arrival trace, shared verbatim by every cell.
        n_nodes: fleet size.
        brokers: broker-scheme registry ids to compare; include
            ``"static"`` to enable :meth:`BrokerSweepResult.deltas_vs_static`.
        placements: placement-policy registry ids to cross with.
        policy: the partitioning policy every node runs in every cell
            (one local policy — the sweep varies the *global* layer).
        catalog: per-node catalog (homogeneous fleet).
        epoch_config: node-epoch methodology; ``duration_s`` is the
            epoch length.
        seed: cluster base seed, shared by every cell.
        fault_intensity: intensity for
            :func:`~repro.experiments.cluster.node_fault_plans`
            (node-keyed, so every cell faces the same faulty fleet).
        node_budgets: optional per-node initial budgets (heterogeneous
            fleets); every cell starts from the same budgets.
        slo_threshold: per-job mean-speedup threshold for SLO
            attainment reporting.
        engine: shared execution engine across cells (run-cache reuse:
            the static cell's node-epochs are byte-identical to a
            fixed-capacity fleet's and dedupe against them).
    """
    if not brokers:
        raise ClusterError("need at least one broker scheme")
    unknown = set(brokers) - set(broker_names())
    if unknown:
        raise ClusterError(
            f"unknown broker scheme(s) {sorted(unknown)}; "
            f"registered: {', '.join(broker_names())}"
        )
    if not placements:
        raise ClusterError("need at least one placement policy")
    catalog = catalog or experiment_catalog()
    epoch_config = epoch_config or RunConfig(duration_s=5.0)
    engine = engine or ExecutionEngine()
    plans = node_fault_plans(n_nodes, fault_intensity, epoch_config.duration_s)

    cells: List[BrokerCell] = []
    for placement in placements:
        for broker in brokers:
            simulator = ClusterSimulator(
                trace,
                n_nodes=n_nodes,
                placement=placement,  # fresh instance per cell (stateful)
                policy=policy,
                catalog=catalog,
                epoch_config=epoch_config,
                seed=seed,
                node_fault_plans=plans,
                node_budgets=node_budgets,
                broker=broker,  # fresh instance per cell (stateful)
                engine=engine,
            )
            cells.append(
                BrokerCell(broker=broker, placement=placement, result=simulator.run())
            )
    return BrokerSweepResult(
        n_nodes=n_nodes,
        n_epochs=trace.n_epochs,
        n_jobs=len(trace),
        policy=policy,
        slo_threshold=slo_threshold,
        cells=tuple(cells),
    )
