"""QoS experiment: PARTIES in its native latency-critical setting.

Reproduces the design-goal distinction the paper draws in Sec. IV:
PARTIES targets QoS of co-located latency-critical services, SATORI
targets throughput+fairness of batch jobs. Running both on an LC mix
shows each excelling at its own objective — QoS-PARTIES holds tail-
latency targets, SATORI (which knows nothing about latency targets)
extracts more raw throughput while violating more QoS intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.controller import SatoriController
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.policies.qos_parties import QosPartiesPolicy
from repro.policies.static import EqualPartitionPolicy
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.experiments.comparison import full_space
from repro.experiments.runner import RunConfig, run_policy, experiment_catalog
from repro.workloads.latency_critical import LatencyCriticalJob, latency_critical_suite
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class QosPolicyResult:
    """QoS and throughput outcomes for one policy."""

    policy_name: str
    qos_satisfaction: float  # fraction of (job, interval) pairs meeting QoS
    worst_job_satisfaction: float
    mean_total_ips: float


@dataclass(frozen=True)
class QosComparison:
    """All policies on the LC mix."""

    mix_label: str
    results: Dict[str, QosPolicyResult]

    def result(self, name: str) -> QosPolicyResult:
        return self.results[name]


def qos_colocation(
    jobs: Optional[Sequence[LatencyCriticalJob]] = None,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
) -> QosComparison:
    """Run QoS-PARTIES, SATORI, and an equal split on an LC mix."""
    catalog = catalog or experiment_catalog()
    jobs = list(jobs) if jobs is not None else list(latency_critical_suite())
    run_config = run_config or RunConfig(duration_s=15.0)
    goals = goals or GoalSet()
    rng = make_rng(seed)

    mix = JobMix(tuple(job.workload for job in jobs))
    space = full_space(catalog, len(mix))
    policies: Dict[str, PartitioningPolicy] = {
        "QoS-PARTIES": QosPartiesPolicy(space, jobs, goals),
        "SATORI": SatoriController(space, goals, rng=spawn_rng(rng)),
        "Equal Partition": EqualPartitionPolicy(space, goals),
    }

    results: Dict[str, QosPolicyResult] = {}
    for name, policy in policies.items():
        run = run_policy(policy, mix, catalog, run_config, goals, seed=spawn_rng(rng))
        satisfied = np.zeros(len(jobs))
        intervals = 0
        total_ips = []
        for record in run.scored.records:
            for j, job in enumerate(jobs):
                satisfied[j] += job.meets_qos(record.ips[j], record.time_s)
            intervals += 1
            total_ips.append(sum(record.ips))
        per_job = satisfied / max(intervals, 1)
        results[name] = QosPolicyResult(
            policy_name=name,
            qos_satisfaction=float(per_job.mean()),
            worst_job_satisfaction=float(per_job.min()),
            mean_total_ips=float(np.mean(total_ips)),
        )
    return QosComparison(mix_label=mix.label, results=results)
