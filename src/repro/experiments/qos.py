"""QoS experiments: single-server LC co-location and the cluster SLO sweep.

Two layers share this module:

* :func:`qos_colocation` reproduces the design-goal distinction the
  paper draws in Sec. IV: PARTIES targets QoS of co-located
  latency-critical services, SATORI targets throughput+fairness of
  batch jobs. Running both on an LC mix shows each excelling at its
  own objective — QoS-PARTIES holds tail-latency targets, SATORI
  (which knows nothing about latency targets) extracts more raw
  throughput while violating more QoS intervals.

* :func:`qos_sweep` is the fleet-level SLO experiment: replay paired
  arrival traces (flash-crowd and diurnal shapes, a fraction of
  arrivals tagged ``"qos"``) against the cluster simulator under an
  enforced :class:`~repro.qos.SLOSpec`, once per partitioning policy.
  Every cell of one (shape, qos_fraction, trace seed) coordinate faces
  a bit-identical trace and node-epoch seed derivation, so per-policy
  differences in SLO attainment and disruption-adjusted fairness are
  attributable to the policy alone. This is the experiment behind
  ``python -m repro qos`` and the ``BENCH_qos.json`` artifact: BoPF's
  short-term-guarantee phase must buy qos attainment on the
  flash-crowd shape without giving up more than a documented sliver
  of batch fairness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.controller import SatoriController
from repro.engine import ExecutionEngine
from repro.errors import ExperimentError
from repro.metrics.goals import GoalSet
from repro.policies.base import PartitioningPolicy
from repro.policies.qos_parties import QosPartiesPolicy
from repro.policies.static import EqualPartitionPolicy
from repro.qos.slo import SLOSpec
from repro.resources.types import ResourceCatalog
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.experiments.comparison import full_space
from repro.experiments.reporting import format_table
from repro.experiments.runner import RunConfig, run_policy, experiment_catalog
from repro.workloads.arrivals import ArrivalTrace, diurnal_trace, flash_crowd_trace
from repro.workloads.latency_critical import LatencyCriticalJob, latency_critical_suite
from repro.workloads.mixes import JobMix


@dataclass(frozen=True)
class QosPolicyResult:
    """QoS and throughput outcomes for one policy."""

    policy_name: str
    qos_satisfaction: float  # fraction of (job, interval) pairs meeting QoS
    worst_job_satisfaction: float
    mean_total_ips: float


@dataclass(frozen=True)
class QosComparison:
    """All policies on the LC mix."""

    mix_label: str
    results: Dict[str, QosPolicyResult]

    def result(self, name: str) -> QosPolicyResult:
        return self.results[name]


def qos_colocation(
    jobs: Optional[Sequence[LatencyCriticalJob]] = None,
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    goals: Optional[GoalSet] = None,
    seed: SeedLike = 0,
) -> QosComparison:
    """Run QoS-PARTIES, SATORI, and an equal split on an LC mix."""
    catalog = catalog or experiment_catalog()
    jobs = list(jobs) if jobs is not None else list(latency_critical_suite())
    run_config = run_config or RunConfig(duration_s=15.0)
    goals = goals or GoalSet()
    rng = make_rng(seed)

    mix = JobMix(tuple(job.workload for job in jobs))
    space = full_space(catalog, len(mix))
    policies: Dict[str, PartitioningPolicy] = {
        "QoS-PARTIES": QosPartiesPolicy(space, jobs, goals),
        "SATORI": SatoriController(space, goals, rng=spawn_rng(rng)),
        "Equal Partition": EqualPartitionPolicy(space, goals),
    }

    results: Dict[str, QosPolicyResult] = {}
    for name, policy in policies.items():
        run = run_policy(policy, mix, catalog, run_config, goals, seed=spawn_rng(rng))
        satisfied = np.zeros(len(jobs))
        intervals = 0
        total_ips = []
        for record in run.scored.records:
            for j, job in enumerate(jobs):
                satisfied[j] += job.meets_qos(record.ips[j], record.time_s)
            intervals += 1
            total_ips.append(sum(record.ips))
        per_job = satisfied / max(intervals, 1)
        results[name] = QosPolicyResult(
            policy_name=name,
            qos_satisfaction=float(per_job.mean()),
            worst_job_satisfaction=float(per_job.min()),
            mean_total_ips=float(np.mean(total_ips)),
        )
    return QosComparison(mix_label=mix.label, results=results)


# ---------------------------------------------------------------------------
# Cluster-level SLO sweep (``python -m repro qos``)
# ---------------------------------------------------------------------------

#: Trace shapes the sweep pairs across policies.
QOS_TRACE_SHAPES: Tuple[str, ...] = ("flash_crowd", "diurnal")

#: Partitioning policies the default sweep compares (registry ids).
DEFAULT_QOS_POLICIES: Tuple[str, ...] = ("SATORI", "BoPF", "QoSPARTIES")

#: The benchmark SLO. The floor sits below the equalization point of
#: typical 3-job co-locations (fair share at 8 units lands near 0.66),
#: so it is *feasible* for a guarantee-phase policy to hold — a floor
#: at or above the fair point turns attainment into threshold noise.
DEFAULT_QOS_SLO = SLOSpec(min_speedup=0.55, window=2, attain_target=0.75)


def qos_trace(
    shape: str,
    n_epochs: int = 8,
    qos_fraction: float = 0.25,
    max_jobs: int = 9,
    initial_jobs: int = 3,
    mean_residency: float = 5.0,
    suite: str = "parsec",
    seed: SeedLike = 0,
) -> ArrivalTrace:
    """One sweep trace: a pure function of ``(shape, qos_fraction, seed)``.

    ``flash_crowd`` runs quiet (rate 0.8), spikes to 3.5 arrivals per
    epoch over epochs [2, 4) — the surge lands *after* warm-started
    controllers have drained their probe phases, which is what makes
    the guarantee phase's reaction visible. ``diurnal`` sweeps a
    raised-cosine rate from 0.8 up to 3.5 and back over the trace.
    """
    common = dict(
        n_epochs=n_epochs,
        mean_residency=mean_residency,
        max_jobs=max_jobs,
        suites=(suite,),
        seed=seed,
        initial_jobs=initial_jobs,
        qos_fraction=qos_fraction,
    )
    if shape == "flash_crowd":
        return flash_crowd_trace(
            base_rate=0.8, burst_rate=3.5, burst_epoch=2, burst_duration=2, **common
        )
    if shape == "diurnal":
        return diurnal_trace(
            base_rate=0.8, peak_rate=3.5, period_epochs=n_epochs, **common
        )
    raise ExperimentError(
        f"unknown trace shape {shape!r}; shapes: {list(QOS_TRACE_SHAPES)}"
    )


@dataclass(frozen=True)
class QosCell:
    """One (shape, qos_fraction, trace seed, policy) run of the sweep."""

    shape: str
    policy: str
    qos_fraction: float
    trace_seed: int
    attainment: float
    miss_rate: float
    fairness: float  # disruption-adjusted: lost jobs count as 0.0 speedup
    throughput: float
    qos_jobs: int
    misses: int

    def to_dict(self) -> Dict:
        return {
            "shape": self.shape,
            "policy": self.policy,
            "qos_fraction": self.qos_fraction,
            "trace_seed": self.trace_seed,
            "attainment": self.attainment,
            "miss_rate": self.miss_rate,
            "fairness": self.fairness,
            "throughput": self.throughput,
            "qos_jobs": self.qos_jobs,
            "misses": self.misses,
        }


@dataclass(frozen=True)
class QosSweepReport:
    """The paired SLO sweep over every (shape x qos_fraction x policy) cell."""

    slo: SLOSpec
    n_nodes: int
    n_epochs: int
    epoch_seconds: float
    shapes: Tuple[str, ...]
    policies: Tuple[str, ...]
    qos_fractions: Tuple[float, ...]
    trace_seeds: Tuple[int, ...]
    cells: Tuple[QosCell, ...] = field(default_factory=tuple)

    def cells_for(
        self,
        shape: Optional[str] = None,
        policy: Optional[str] = None,
        qos_fraction: Optional[float] = None,
    ) -> Tuple[QosCell, ...]:
        return tuple(
            cell
            for cell in self.cells
            if (shape is None or cell.shape == shape)
            and (policy is None or cell.policy == policy)
            and (qos_fraction is None or cell.qos_fraction == qos_fraction)
        )

    def attainment(self, shape: str, policy: str) -> float:
        """Mean SLO attainment over the shape's (fraction, seed) cells."""
        cells = self.cells_for(shape=shape, policy=policy)
        if not cells:
            raise ExperimentError(f"no cells for ({shape!r}, {policy!r})")
        return float(np.mean([cell.attainment for cell in cells]))

    def fairness(self, shape: str, policy: str) -> float:
        """Mean disruption-adjusted fairness over the shape's cells."""
        cells = self.cells_for(shape=shape, policy=policy)
        if not cells:
            raise ExperimentError(f"no cells for ({shape!r}, {policy!r})")
        return float(np.mean([cell.fairness for cell in cells]))

    def attainment_delta(
        self, shape: str, policy: str, baseline: str = "SATORI"
    ) -> float:
        """``policy``'s attainment gain over ``baseline`` on one shape."""
        return self.attainment(shape, policy) - self.attainment(shape, baseline)

    def fairness_delta(
        self, shape: str, policy: str, baseline: str = "SATORI"
    ) -> float:
        """``policy``'s adjusted-fairness change vs ``baseline``."""
        return self.fairness(shape, policy) - self.fairness(shape, baseline)

    def to_dict(self) -> Dict:
        shapes = {
            shape: {
                policy: {
                    "attainment": self.attainment(shape, policy),
                    "fairness": self.fairness(shape, policy),
                    "attainment_delta_vs_satori": (
                        self.attainment_delta(shape, policy)
                        if "SATORI" in self.policies
                        else None
                    ),
                    "fairness_delta_vs_satori": (
                        self.fairness_delta(shape, policy)
                        if "SATORI" in self.policies
                        else None
                    ),
                }
                for policy in self.policies
            }
            for shape in self.shapes
        }
        return {
            "slo": self.slo.to_dict(),
            "n_nodes": self.n_nodes,
            "n_epochs": self.n_epochs,
            "epoch_seconds": self.epoch_seconds,
            "qos_fractions": list(self.qos_fractions),
            "trace_seeds": list(self.trace_seeds),
            "shapes": shapes,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def summary(self) -> str:
        rows = []
        for shape in self.shapes:
            for policy in self.policies:
                cells = self.cells_for(shape=shape, policy=policy)
                per_seed = ", ".join(f"{cell.attainment:.2f}" for cell in cells)
                rows.append([
                    shape,
                    policy,
                    f"{self.attainment(shape, policy):.3f}",
                    f"{self.fairness(shape, policy):.3f}",
                    f"{np.mean([c.miss_rate for c in cells]):.3f}",
                    f"{np.mean([c.throughput for c in cells]):.3f}",
                    per_seed,
                ])
        lines = [
            format_table(
                ["shape", "policy", "SLO attainment", "adj fairness",
                 "miss rate", "throughput", "per-cell attainment"],
                rows,
                title=(
                    f"SLO sweep: floor {self.slo.min_speedup:g}, "
                    f"{self.n_nodes} nodes, {self.n_epochs} epochs x "
                    f"{self.epoch_seconds:g}s, qos_fraction "
                    f"{list(self.qos_fractions)}, trace seeds "
                    f"{list(self.trace_seeds)}:"
                ),
            )
        ]
        if "SATORI" in self.policies:
            delta_rows = [
                [shape, policy,
                 f"{self.attainment_delta(shape, policy):+.3f}",
                 f"{self.fairness_delta(shape, policy):+.3f}"]
                for shape in self.shapes
                for policy in self.policies
                if policy != "SATORI"
            ]
            lines.append("")
            lines.append(
                format_table(
                    ["shape", "policy", "Δ attainment", "Δ adj fairness"],
                    delta_rows,
                    title="paired deltas vs plain SATORI (same traces, "
                          "same node-epoch seeds):",
                )
            )
        return "\n".join(lines)


def qos_sweep(
    shapes: Sequence[str] = QOS_TRACE_SHAPES,
    policies: Sequence[str] = DEFAULT_QOS_POLICIES,
    qos_fractions: Sequence[float] = (0.25,),
    trace_seeds: Sequence[int] = (0, 1, 2),
    n_nodes: int = 3,
    n_epochs: int = 8,
    slo: Optional[SLOSpec] = None,
    catalog: Optional[ResourceCatalog] = None,
    epoch_config: Optional[RunConfig] = None,
    placement: str = "slo_aware",
    seed_offset: int = 10,
    warm_start: bool = True,
    engine: Optional[ExecutionEngine] = None,
) -> QosSweepReport:
    """Run the paired cluster SLO sweep.

    Pairing: the trace is a pure function of ``(shape, qos_fraction,
    trace_seed)`` and the simulator seed of ``trace_seed + seed_offset``,
    both shared verbatim across policies — every policy faces identical
    arrivals, placements epochs, and node-epoch noise, so the
    attainment/fairness gaps are the policies' doing.

    Warm starts are on by default: BoPF's guarantee phase needs
    controllers that outlive their probe phase, and carrying state
    across membership-stable epochs is what gives the flash-crowd's
    post-burst epochs a trained model to tilt.
    """
    from repro.cluster.simulator import ClusterSimulator
    from repro.experiments.chaos import adjusted_epoch_fairness

    if not shapes:
        raise ExperimentError("need at least one trace shape")
    if not policies:
        raise ExperimentError("need at least one policy")
    if not qos_fractions:
        raise ExperimentError("need at least one qos_fraction")
    if not trace_seeds:
        raise ExperimentError("need at least one trace seed")
    slo = slo or DEFAULT_QOS_SLO
    catalog = catalog or experiment_catalog()
    epoch_config = epoch_config or RunConfig(duration_s=4.0)
    engine = engine or ExecutionEngine()

    cells: List[QosCell] = []
    for shape in shapes:
        for qos_fraction in qos_fractions:
            for trace_seed in trace_seeds:
                trace = qos_trace(
                    shape,
                    n_epochs=n_epochs,
                    qos_fraction=qos_fraction,
                    seed=trace_seed,
                )
                for policy in policies:
                    simulator = ClusterSimulator(
                        trace,
                        n_nodes=n_nodes,
                        placement=placement,
                        policy=policy,
                        catalog=catalog,
                        epoch_config=epoch_config,
                        seed=trace_seed + seed_offset,
                        warm_start=warm_start,
                        qos_slo=slo,
                        engine=engine,
                    )
                    result = simulator.run()
                    adjusted = [
                        value
                        for value in adjusted_epoch_fairness(result, trace).values()
                        if value == value  # skip NaN (empty) epochs
                    ]
                    cells.append(
                        QosCell(
                            shape=shape,
                            policy=policy,
                            qos_fraction=qos_fraction,
                            trace_seed=trace_seed,
                            attainment=result.qos_attainment(),
                            miss_rate=result.qos_miss_rate(),
                            fairness=(
                                float(np.mean(adjusted)) if adjusted else 1.0
                            ),
                            throughput=result.throughput,
                            qos_jobs=(
                                result.slo.qos_jobs if result.slo is not None else 0
                            ),
                            misses=(
                                len(result.slo.misses) if result.slo is not None else 0
                            ),
                        )
                    )
    return QosSweepReport(
        slo=slo,
        n_nodes=n_nodes,
        n_epochs=n_epochs,
        epoch_seconds=epoch_config.duration_s,
        shapes=tuple(shapes),
        policies=tuple(policies),
        qos_fractions=tuple(float(f) for f in qos_fractions),
        trace_seeds=tuple(int(s) for s in trace_seeds),
        cells=tuple(cells),
    )
