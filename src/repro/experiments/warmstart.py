"""Warm-vs-cold adaptation sweep: what controller state is worth.

SATORI's premise is sacrificing short-term benefit for long-term gain —
but the long-term gain only accrues if the accumulated state (GP
posterior, goal records, weight-scheduler position) survives run
boundaries. This experiment quantifies exactly that, at two scales:

* **Single node** — run one epoch on a mix, capture the controller's
  final :class:`~repro.state.PolicyState`, then run the *next* epoch
  (phase offset advanced) twice from identical environments: cold
  (fresh controller) and warm (``initial_state`` = the snapshot).
  Because the measurement-noise seed derives from the cold digest
  (the spec with warm-start state stripped), the cold and warm
  continuations face bit-identical noise — every
  difference is attributable to the carried state. Reported per mix:
  intervals-to-recover (when a 1 s moving average of the weighted
  objective first reaches 95% of the *better* of the two plateaus — a
  shared, symmetric threshold, so neither variant is penalized for
  converging higher than the other) and the early-window
  fairness/throughput before recovery completes.

* **Cluster** — replay one arrival trace twice through
  :class:`~repro.cluster.simulator.ClusterSimulator`, cold vs
  ``warm_start=True``, under round-robin placement and no migration so
  job→node routing is identical in both runs. Per-job mean speedups
  and per-node-epoch fairness then pair exactly (same jobs, same
  nodes, same epochs, same noise), and
  :func:`~repro.analysis.stats.paired_deltas` puts confidence
  intervals on the warm-minus-cold gains — including the headline
  acceptance metric, intervals for a warm-started membership-stable
  node's fairness to recover to the pair's better plateau.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import PairedDelta, confidence_interval, paired_deltas
from repro.cluster.simulator import ClusterResult, ClusterSimulator
from repro.engine import ExecutionEngine, RunSpec
from repro.errors import ExperimentError
from repro.experiments.runner import RunConfig, RunResult, experiment_catalog
from repro.resources.types import ResourceCatalog
from repro.workloads.arrivals import ArrivalTrace, poisson_trace
from repro.workloads.mixes import JobMix, suite_mixes

#: Fraction of an epoch treated as the "early window" when comparing
#: pre-recovery behaviour.
EARLY_WINDOW_FRACTION = 0.25


def _early_mean(result: RunResult, series: str) -> float:
    values = result.telemetry.series(series)
    keep = max(1, int(round(len(values) * EARLY_WINDOW_FRACTION)))
    return float(np.mean(values[:keep]))


def _tail_level(series: np.ndarray) -> float:
    """Mean of a series' last quarter — its steady-state plateau."""
    tail = max(1, int(round(len(series) * 0.25)))
    return float(np.mean(series[-tail:]))


def _series_recovery(
    series: np.ndarray, reference_level: float, window: int, fraction: float = 0.95
) -> int:
    """Intervals until a 1 s moving average reaches the reference level.

    Local (step-indexed) variant of
    :func:`repro.analysis.stats.convergence_time_s`: epoch telemetry
    starts at a nonzero phase offset, so wall-clock times would need
    de-offsetting anyway — counting intervals sidesteps that. Never
    reaching the level counts as the full series length (censored).
    """
    smoothed = np.convolve(series, np.ones(window) / window, mode="valid")
    hits = np.nonzero(smoothed >= fraction * reference_level)[0]
    if hits.size == 0:
        return len(series)
    return int(hits[0] + window)


def _objective_series(result: RunResult) -> np.ndarray:
    telemetry = result.telemetry
    return 0.5 * telemetry.series("throughput") + 0.5 * telemetry.series("fairness")


def _final_level(result: RunResult) -> float:
    """Mean weighted objective over the run's last quarter."""
    level = _tail_level(_objective_series(result))
    if level <= 0:
        raise ExperimentError("degenerate run: non-positive final objective")
    return level


def _recovery_intervals(result: RunResult, reference_level: float) -> int:
    """Intervals until the weighted objective reaches a reference level.

    The threshold must be shared between the cells being compared —
    the *better* of the two plateaus — so neither variant is penalized
    for converging to a higher level than the other.
    """
    window = max(1, round(1.0 / result.run_config.interval_s))
    return _series_recovery(_objective_series(result), reference_level, window)


@dataclass(frozen=True)
class AdaptationCell:
    """One mix's cold-vs-warm continuation epoch."""

    mix_label: str
    cold: RunResult
    warm: RunResult
    cold_recovery_intervals: int
    warm_recovery_intervals: int

    @property
    def recovery_gain_intervals(self) -> int:
        """Intervals the warm start saves (positive = warm recovers faster)."""
        return self.cold_recovery_intervals - self.warm_recovery_intervals

    @property
    def early_fairness_delta(self) -> float:
        """Warm minus cold fairness over the early window."""
        return _early_mean(self.warm, "fairness") - _early_mean(self.cold, "fairness")

    @property
    def early_throughput_delta(self) -> float:
        return _early_mean(self.warm, "throughput") - _early_mean(self.cold, "throughput")

    @property
    def plateau_delta(self) -> float:
        """Warm minus cold steady-state weighted objective.

        Recovery intervals measure *how fast* a run reaches the shared
        threshold; this measures *where it ends up* — carried state
        often buys a better plateau even when both recover quickly.
        """
        return _final_level(self.warm) - _final_level(self.cold)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mix": self.mix_label,
            "cold_recovery_intervals": self.cold_recovery_intervals,
            "warm_recovery_intervals": self.warm_recovery_intervals,
            "recovery_gain_intervals": self.recovery_gain_intervals,
            "early_fairness_delta": self.early_fairness_delta,
            "early_throughput_delta": self.early_throughput_delta,
            "plateau_delta": self.plateau_delta,
            "cold_fairness": self.cold.fairness,
            "warm_fairness": self.warm.fairness,
            "cold_throughput": self.cold.throughput,
            "warm_throughput": self.warm.throughput,
        }


def adaptation_sweep(
    mixes: Optional[Sequence[JobMix]] = None,
    policy: str = "SATORI",
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    seed: int = 0,
    engine: Optional[ExecutionEngine] = None,
) -> Tuple[AdaptationCell, ...]:
    """Cold vs warm continuation epochs across a mix suite.

    For each mix: epoch 0 runs cold and yields a final snapshot; epoch
    1 (same seed, phase offset advanced by one epoch) runs twice, cold
    and warm. All specs go through the engine, so the sweep caches and
    parallelizes like any other campaign.
    """
    mixes = list(mixes) if mixes is not None else suite_mixes("parsec", mix_size=3)[:4]
    if not mixes:
        raise ExperimentError("adaptation sweep needs at least one mix")
    catalog = catalog or experiment_catalog()
    run_config = run_config or RunConfig(duration_s=8.0, baseline_reset_s=4.0)
    engine = engine or ExecutionEngine()

    def _spec(mix: JobMix, epoch: int, initial_state=None) -> RunSpec:
        config = RunConfig(
            duration_s=run_config.duration_s,
            interval_s=run_config.interval_s,
            baseline_reset_s=run_config.baseline_reset_s,
            noise_sigma=run_config.noise_sigma,
            phase_offset_s=epoch * run_config.duration_s,
            warmup_fraction=run_config.warmup_fraction,
            actuation_retries=run_config.actuation_retries,
        )
        return RunSpec(
            mix=mix,
            policy=policy,
            catalog=catalog,
            run_config=config,
            seed=seed,
            initial_state=initial_state,
        )

    first_epoch = engine.run([_spec(mix, 0) for mix in mixes])
    continuations: List[RunSpec] = []
    for mix, warmup in zip(mixes, first_epoch):
        if warmup.final_state is None:
            raise ExperimentError(
                f"policy {policy!r} produced no snapshot; warm-start needs a stateful policy"
            )
        continuations.append(_spec(mix, 1))
        continuations.append(_spec(mix, 1, initial_state=warmup.final_state))
    results = engine.run(continuations)

    cells = []
    for index, mix in enumerate(mixes):
        cold, warm = results[2 * index], results[2 * index + 1]
        level = max(_final_level(cold), _final_level(warm))
        cells.append(
            AdaptationCell(
                mix_label=mix.label,
                cold=cold,
                warm=warm,
                cold_recovery_intervals=_recovery_intervals(cold, level),
                warm_recovery_intervals=_recovery_intervals(warm, level),
            )
        )
    return tuple(cells)


@dataclass(frozen=True)
class WarmstartClusterComparison:
    """Cold vs warm cluster replays of one trace (paired by design)."""

    cold: ClusterResult
    warm: ClusterResult
    job_speedup_delta: PairedDelta
    warm_started_epochs: int
    smoothing_window: int = 10

    def node_epoch_fairness_delta(self) -> PairedDelta:
        """Warm minus cold fairness over paired simulated node-epochs."""
        cold = {
            (r.epoch, r.node_id): r.fairness
            for r in self.cold.records
            if not r.synthesized
        }
        warm = {
            (r.epoch, r.node_id): r.fairness
            for r in self.warm.records
            if not r.synthesized
        }
        return paired_deltas(cold, warm)

    def _recovery_pairs(self) -> Tuple[Dict[Any, float], Dict[Any, float]]:
        """(cold, warm) intervals-to-recover per warm-started node-epoch."""
        warm_started = {
            (r.epoch, r.node_id): r
            for r in self.warm.records
            if r.warm_started and r.fairness_series
        }
        cold_by_key = {
            (r.epoch, r.node_id): r
            for r in self.cold.records
            if not r.synthesized and r.fairness_series
        }
        cold_rec: Dict[Any, float] = {}
        warm_rec: Dict[Any, float] = {}
        for key, warm_record in warm_started.items():
            cold_record = cold_by_key.get(key)
            if cold_record is None:
                continue
            cold_series = np.asarray(cold_record.fairness_series)
            warm_series = np.asarray(warm_record.fairness_series)
            level = max(_tail_level(cold_series), _tail_level(warm_series))
            cold_rec[key] = float(
                _series_recovery(cold_series, level, self.smoothing_window)
            )
            warm_rec[key] = float(
                _series_recovery(warm_series, level, self.smoothing_window)
            )
        return cold_rec, warm_rec

    def fairness_recovery_delta(self) -> PairedDelta:
        """Intervals-to-recover saved by warm start (cold − warm).

        The acceptance metric: over node-epochs whose warm replay was
        actually warm-started (membership-stable nodes past epoch 0),
        count intervals until each epoch's 1 s moving-average fairness
        reaches 95% of the pair's better plateau, and pair cold vs
        warm. Positive mean = warm-started controllers recover
        fairness in fewer intervals.
        """
        cold_rec, warm_rec = self._recovery_pairs()
        # paired_deltas is b − a; passing (warm, cold) yields cold − warm,
        # i.e. intervals *saved* by the warm start.
        return paired_deltas(warm_rec, cold_rec)

    def fairness_recovery_outcomes(self) -> Dict[str, int]:
        """Per-pair win/tie/loss counts for the recovery comparison.

        The per-pair saving distribution is bimodal (usually a few
        intervals, occasionally a whole epoch when the cold controller
        never reconverges), so a t-interval alone over-weights the
        outliers; the counts are the robust companion statistic.
        """
        cold_rec, warm_rec = self._recovery_pairs()
        wins = ties = losses = 0
        for key in cold_rec.keys() & warm_rec.keys():
            saved = cold_rec[key] - warm_rec[key]
            if saved > 0:
                wins += 1
            elif saved < 0:
                losses += 1
            else:
                ties += 1
        return {"wins": wins, "ties": ties, "losses": losses}

    def to_dict(self) -> Dict[str, Any]:
        fairness = self.node_epoch_fairness_delta()
        try:
            recovery = self.fairness_recovery_delta()
        except ExperimentError:
            # Too few warm-started epochs to pair (tiny traces).
            recovery = None
        return {
            "cold_fairness": self.cold.fairness,
            "warm_fairness": self.warm.fairness,
            "cold_mean_speedup": self.cold.mean_speedup,
            "warm_mean_speedup": self.warm.mean_speedup,
            "warm_started_epochs": self.warm_started_epochs,
            "job_speedup_delta": {
                "mean": self.job_speedup_delta.delta.mean,
                "ci_low": self.job_speedup_delta.delta.ci_low,
                "ci_high": self.job_speedup_delta.delta.ci_high,
                "n": self.job_speedup_delta.n_common,
            },
            "node_epoch_fairness_delta": {
                "mean": fairness.delta.mean,
                "ci_low": fairness.delta.ci_low,
                "ci_high": fairness.delta.ci_high,
                "n": fairness.n_common,
            },
            "fairness_recovery_saved_intervals": None
            if recovery is None
            else {
                "mean": recovery.delta.mean,
                "ci_low": recovery.delta.ci_low,
                "ci_high": recovery.delta.ci_high,
                "n": recovery.n_common,
                **self.fairness_recovery_outcomes(),
            },
        }


def cluster_warmstart(
    trace: Optional[ArrivalTrace] = None,
    n_nodes: int = 2,
    n_epochs: int = 12,
    policy: str = "SATORI",
    catalog: Optional[ResourceCatalog] = None,
    epoch_config: Optional[RunConfig] = None,
    seed: int = 0,
    engine: Optional[ExecutionEngine] = None,
) -> WarmstartClusterComparison:
    """Replay one trace cold and warm and pair the outcomes.

    Round-robin placement and no migration keep job→node routing
    independent of telemetry, so both replays produce identical
    memberships — the per-job and per-node-epoch comparisons are then
    exactly paired (same jobs, same co-runners, same noise). The
    default trace is long (``n_epochs=12``) with sticky residency:
    warm starts only fire on membership-stable epoch boundaries, so
    churny short traces yield too few pairs to measure anything.
    """
    catalog = catalog or experiment_catalog()
    epoch_config = epoch_config or RunConfig(duration_s=4.0, baseline_reset_s=2.0)
    engine = engine or ExecutionEngine()
    if trace is None:
        trace = poisson_trace(
            n_epochs=n_epochs,
            arrival_rate=0.4,
            mean_residency=6.0,
            max_jobs=3 * n_nodes,
            seed=seed,
            initial_jobs=2 * n_nodes,
        )

    def _run(warm: bool) -> ClusterResult:
        return ClusterSimulator(
            trace,
            n_nodes=n_nodes,
            placement="round_robin",
            policy=policy,
            catalog=catalog,
            epoch_config=epoch_config,
            seed=seed,
            engine=engine,
            warm_start=warm,
        ).run()

    cold, warm = _run(False), _run(True)
    return WarmstartClusterComparison(
        cold=cold,
        warm=warm,
        job_speedup_delta=paired_deltas(
            cold.job_mean_speedups(), warm.job_mean_speedups()
        ),
        warm_started_epochs=sum(1 for r in warm.records if r.warm_started),
        smoothing_window=max(1, round(1.0 / epoch_config.interval_s)),
    )


@dataclass(frozen=True)
class WarmstartReport:
    """The full warm-vs-cold experiment: node sweep + cluster replay."""

    adaptation: Tuple[AdaptationCell, ...]
    cluster: WarmstartClusterComparison

    def recovery_gain_summary(self):
        """CI over per-mix recovery gains (intervals saved by warm start)."""
        return confidence_interval(
            [float(cell.recovery_gain_intervals) for cell in self.adaptation]
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "adaptation": [cell.to_dict() for cell in self.adaptation],
            "cluster": self.cluster.to_dict(),
        }


def warmstart_experiment(
    mixes: Optional[Sequence[JobMix]] = None,
    policy: str = "SATORI",
    catalog: Optional[ResourceCatalog] = None,
    run_config: Optional[RunConfig] = None,
    n_nodes: int = 2,
    n_epochs: int = 12,
    seed: int = 0,
    engine: Optional[ExecutionEngine] = None,
) -> WarmstartReport:
    """Run both halves of the warm-vs-cold experiment."""
    engine = engine or ExecutionEngine()
    return WarmstartReport(
        adaptation=adaptation_sweep(
            mixes, policy=policy, catalog=catalog, run_config=run_config,
            seed=seed, engine=engine,
        ),
        cluster=cluster_warmstart(
            n_nodes=n_nodes, n_epochs=n_epochs, policy=policy, catalog=catalog,
            seed=seed, engine=engine,
        ),
    )
