"""Session lifecycle: create / step / snapshot / kill / resume.

:class:`SessionManager` turns the repo's single-run building blocks —
:class:`~repro.system.simulation.CoLocationSimulator`,
:func:`~repro.policies.registry.make_policy`,
:class:`~repro.system.session.ControlSession` — into long-lived,
addressable sessions. Construction is fully deterministic from a
:class:`SessionSpec` (suite, mix index, policy, seed), which is what
makes the snapshot format small: a snapshot is the spec plus the three
dynamic state captures (policy / server / session loop), and resuming
rebuilds the static structure from the spec before rehydrating the
dynamics. Resume is bit-identical: a resumed session's subsequent
telemetry matches a never-killed session record for record.

The manager is thread-safe — the asyncio server steps sessions on
executor threads so one slow SATORI decide does not stall the accept
loop — with one lock per session, so distinct sessions step in
parallel (within GIL limits) while concurrent steps of the *same*
session serialize.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro import serialize
from repro.engine.spec import derive_seed
from repro.errors import ExperimentError
from repro.experiments.runner import experiment_catalog
from repro.metrics.goals import GoalSet
from repro.obs import active_collector
from repro.policies.registry import make_policy, policy_is_qos_aware
from repro.state import PolicyState
from repro.system.session import ControlSession
from repro.system.simulation import DEFAULT_CONTROL_INTERVAL_S, CoLocationSimulator
from repro.workloads.mixes import suite_mixes

#: Snapshot envelope version; bump on incompatible layout changes.
SNAPSHOT_VERSION = 1

#: How many recent per-step decision latencies the manager retains for
#: percentile reporting (a bounded window, not a full history).
LATENCY_WINDOW = 100_000


@dataclass(frozen=True)
class SessionSpec:
    """Deterministic construction recipe for one session.

    Everything needed to rebuild a session's static structure — the
    snapshot/resume protocol ships this alongside the dynamic state,
    and two sessions created from equal specs behave identically.

    Attributes:
        policy: registered policy factory id (``"SATORI"``, ...).
        suite: workload suite name (``"parsec"``, ``"cloudsuite"``,
            ``"ecp"``).
        mix: mix index within the suite.
        units: allocation units per resource (the experiment catalog).
        seed: base seed; the server noise stream uses it directly and
            the policy stream derives from it.
        interval_s: control interval (the paper's 0.1 s).
        noise_sigma: pqos measurement-noise sigma.
        baseline_reset_s: equalization period for held-baseline
            re-measurement; ``None`` never resets.
        policy_kwargs: plain-data kwargs forwarded to the policy
            factory.
        slo_floor: optional min-speedup SLO for the session's qos
            jobs; with ``qos_jobs`` set, every stepped interval is
            scored against it (``serve.slo_*`` metrics, visible on
            the server's ``/metrics``) and qos-aware policies
            (``BoPF``, ``QoSPARTIES``) receive the floor.
        qos_jobs: mix slot indices holding that SLO.
    """

    policy: str = "SATORI"
    suite: str = "parsec"
    mix: int = 0
    units: int = 8
    seed: int = 0
    interval_s: float = DEFAULT_CONTROL_INTERVAL_S
    noise_sigma: float = 0.03
    baseline_reset_s: Optional[float] = 10.0
    policy_kwargs: dict = field(default_factory=dict)
    slo_floor: Optional[float] = None
    qos_jobs: tuple = ()

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ExperimentError(f"interval_s must be positive, got {self.interval_s}")
        if self.baseline_reset_s is not None and self.baseline_reset_s <= 0:
            raise ExperimentError(
                f"baseline_reset_s must be positive or None, got {self.baseline_reset_s}"
            )
        # Snapshots round-trip through JSON, which turns tuples into
        # lists; normalize so resumed specs compare equal to originals.
        object.__setattr__(
            self, "qos_jobs", tuple(int(j) for j in self.qos_jobs)
        )
        if any(j < 0 for j in self.qos_jobs):
            raise ExperimentError(f"qos_jobs must be >= 0, got {self.qos_jobs}")
        if self.slo_floor is not None and not 0.0 < self.slo_floor <= 1.0:
            raise ExperimentError(
                f"slo_floor must be in (0, 1], got {self.slo_floor}"
            )

    @property
    def slo_active(self) -> bool:
        return self.slo_floor is not None and bool(self.qos_jobs)

    def to_dict(self) -> dict:
        return serialize.dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SessionSpec":
        return serialize.dataclass_from_dict(cls, data)


@dataclass(frozen=True)
class SessionInfo:
    """One session's public status row."""

    session_id: str
    policy: str
    suite: str
    mix: int
    mix_label: str
    steps: int
    time_s: float

    def to_dict(self) -> dict:
        return serialize.dataclass_to_dict(self)


class _Managed:
    """One live session plus its bookkeeping (internal)."""

    __slots__ = ("session_id", "spec", "session", "mix_label", "steps",
                 "slo_intervals", "slo_misses", "lock")

    def __init__(self, session_id: str, spec: SessionSpec,
                 session: ControlSession, mix_label: str, steps: int = 0):
        self.session_id = session_id
        self.spec = spec
        self.session = session
        self.mix_label = mix_label
        self.steps = steps
        self.slo_intervals = 0
        self.slo_misses = 0
        self.lock = threading.Lock()


class SessionManager:
    """Owns every live session and its lifecycle transitions."""

    def __init__(self):
        self._sessions: Dict[str, _Managed] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._created = 0
        self._resumed = 0
        self._killed = 0
        self._steps = 0
        self._slo_intervals = 0
        self._slo_misses = 0
        self._latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._started = time.perf_counter()

    # -- construction ------------------------------------------------------

    def _build(self, spec: SessionSpec,
               initial_state: Optional[PolicyState] = None) -> ControlSession:
        """The one deterministic session-construction path.

        Mirrors :func:`~repro.experiments.runner.run_policy`'s wiring
        (same catalog, same goals, seeded server noise, derived policy
        stream) so serve sessions measure the same system the batch
        experiments do. Both :meth:`create` and :meth:`resume` go
        through here — determinism of this path is what makes the
        spec+state snapshot format sufficient.
        """
        mixes = suite_mixes(spec.suite)
        if not 0 <= spec.mix < len(mixes):
            raise ExperimentError(
                f"mix index {spec.mix} out of range [0, {len(mixes)}) for "
                f"suite {spec.suite!r}"
            )
        mix = mixes[spec.mix]
        if any(j >= len(mix) for j in spec.qos_jobs):
            raise ExperimentError(
                f"qos_jobs {spec.qos_jobs} out of range for the "
                f"{len(mix)}-job mix {mix.label!r}"
            )
        catalog = experiment_catalog(spec.units)
        goals = GoalSet()
        simulator = CoLocationSimulator(
            mix,
            catalog=catalog,
            control_interval_s=spec.interval_s,
            noise_sigma=spec.noise_sigma,
            seed=spec.seed,
        )
        policy_kwargs = dict(spec.policy_kwargs)
        if spec.slo_active and policy_is_qos_aware(spec.policy):
            # Hand qos-aware policies the SLO the manager scores, so
            # the guarantee they chase is the one /metrics reports.
            policy_kwargs.setdefault("qos_jobs", spec.qos_jobs)
            policy_kwargs.setdefault("qos_min_speedup", spec.slo_floor)
        policy = make_policy(
            spec.policy,
            mix,
            catalog,
            goals,
            rng=derive_seed(spec.seed, "serve", "policy"),
            initial_state=initial_state,
            **policy_kwargs,
        )
        return ControlSession(
            policy,
            simulator,
            goals=goals,
            baseline_reset_s=(
                math.inf if spec.baseline_reset_s is None else spec.baseline_reset_s
            ),
        )

    def _register(self, spec: SessionSpec, session: ControlSession,
                  steps: int = 0) -> _Managed:
        with self._lock:
            self._next_id += 1
            session_id = f"s{self._next_id}"
            managed = _Managed(
                session_id, spec, session, session.server.mix.label, steps
            )
            self._sessions[session_id] = managed
        return managed

    # -- lifecycle ---------------------------------------------------------

    def create(self, spec: Optional[SessionSpec] = None, **kwargs) -> str:
        """Create a fresh session; returns its id.

        Accepts either a built :class:`SessionSpec` or its fields as
        keyword arguments.
        """
        if spec is None:
            spec = SessionSpec(**kwargs)
        elif kwargs:
            raise ExperimentError("pass a SessionSpec or its fields, not both")
        managed = self._register(spec, self._build(spec))
        self._created += 1
        obs = active_collector()
        obs.metrics.counter("serve.sessions_created").inc()
        obs.metrics.gauge("serve.sessions_live").set(len(self._sessions))
        obs.event("session_created", "serve", session=managed.session_id,
                  policy=spec.policy)
        return managed.session_id

    def step(self, session_id: str, n: int = 1) -> dict:
        """Run ``n`` control intervals; returns a progress summary.

        Each interval's wall-clock decide→actuate→observe latency is
        measured here — this is the "decision latency" the serve
        benchmark reports — and folded into the ``serve.decision_seconds``
        histogram plus the manager's percentile window.
        """
        if n < 1:
            raise ExperimentError(f"n must be >= 1, got {n}")
        managed = self._get(session_id)
        spec = managed.spec
        obs = active_collector()
        histogram = obs.metrics.histogram("serve.decision_seconds")
        with managed.lock:
            for _ in range(n):
                started = time.perf_counter()
                raw = managed.session.step()
                elapsed = time.perf_counter() - started
                histogram.observe(elapsed)
                self._latencies.append(elapsed)
                managed.steps += 1
                self._steps += 1
                if spec.slo_active:
                    self._score_slo(managed, raw, obs)
        obs.metrics.counter("serve.steps").inc(n)
        telemetry = managed.session.telemetry
        summary = {
            "session": session_id,
            "steps": managed.steps,
            "time_s": managed.session.server.time_s,
            "mean_throughput": telemetry.mean_throughput(),
            "mean_fairness": telemetry.mean_fairness(),
        }
        if spec.slo_active and managed.slo_intervals:
            summary["slo_attainment"] = (
                1.0 - managed.slo_misses / managed.slo_intervals
            )
        return summary

    def _score_slo(self, managed: _Managed, raw, obs) -> None:
        """Score one interval against the session's SLO floor.

        An interval misses when the *worst* qos job's speedup (raw IPS
        over isolation IPS) is below the floor — the same
        worst-qos-job view BoPF's guarantee phase reacts to. The
        counters surface on the server's Prometheus ``/metrics`` via
        the ambient collector.
        """
        spec = managed.spec
        speedups = [
            raw.ips[j] / raw.isolation_ips[j]
            for j in spec.qos_jobs
            if raw.isolation_ips[j] > 0
        ]
        if not speedups:
            return
        worst = min(speedups)
        managed.slo_intervals += 1
        self._slo_intervals += 1
        obs.metrics.counter("serve.slo_intervals").inc()
        if worst < spec.slo_floor:
            managed.slo_misses += 1
            self._slo_misses += 1
            obs.metrics.counter("serve.slo_misses").inc()
        obs.metrics.gauge("serve.slo_worst_speedup").set(worst)
        obs.metrics.gauge("serve.slo_attainment").set(
            1.0 - self._slo_misses / self._slo_intervals
        )

    def snapshot(self, session_id: str) -> dict:
        """The session's complete resumable image (JSON-compatible).

        Layout: the construction spec plus three dynamic captures —
        the policy's :class:`~repro.state.PolicyState`, the server's
        :meth:`~repro.system.simulation.CoLocationSimulator.snapshot_state`,
        and the session loop's
        :meth:`~repro.system.session.ControlSession.export_state`.
        """
        managed = self._get(session_id)
        with managed.lock:
            policy_state = managed.session.policy_state()
            return {
                "version": SNAPSHOT_VERSION,
                "spec": managed.spec.to_dict(),
                "steps": managed.steps,
                "policy_state": (
                    None if policy_state is None else policy_state.to_dict()
                ),
                "server": managed.session.server.snapshot_state(),
                "session": managed.session.export_state(),
            }

    def resume(self, snapshot: dict) -> str:
        """Rebuild a session from a :meth:`snapshot` image; returns its id.

        The continuation is bit-identical: stepping the resumed
        session produces the same telemetry records the original
        would have produced had it never been killed.
        """
        version = int(snapshot.get("version", 0))
        if version > SNAPSHOT_VERSION:
            raise ExperimentError(
                f"snapshot version {version} is newer than this code "
                f"understands ({SNAPSHOT_VERSION})"
            )
        spec = SessionSpec.from_dict(snapshot["spec"])
        state = snapshot.get("policy_state")
        initial_state = None if state is None else PolicyState.from_dict(state)
        session = self._build(spec, initial_state=initial_state)
        session.server.restore_state(snapshot["server"])
        session.import_state(snapshot["session"])
        managed = self._register(spec, session, steps=int(snapshot.get("steps", 0)))
        self._resumed += 1
        obs = active_collector()
        obs.metrics.counter("serve.sessions_resumed").inc()
        obs.metrics.gauge("serve.sessions_live").set(len(self._sessions))
        obs.event("session_resumed", "serve", session=managed.session_id)
        return managed.session_id

    def kill(self, session_id: str) -> None:
        """Retire a session (its id is never reused)."""
        with self._lock:
            if session_id not in self._sessions:
                raise ExperimentError(f"unknown session {session_id!r}")
            del self._sessions[session_id]
        self._killed += 1
        obs = active_collector()
        obs.metrics.counter("serve.sessions_killed").inc()
        obs.metrics.gauge("serve.sessions_live").set(len(self._sessions))

    # -- introspection ------------------------------------------------------

    def _get(self, session_id: str) -> _Managed:
        with self._lock:
            managed = self._sessions.get(session_id)
        if managed is None:
            raise ExperimentError(f"unknown session {session_id!r}")
        return managed

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def info(self, session_id: str) -> SessionInfo:
        managed = self._get(session_id)
        return SessionInfo(
            session_id=managed.session_id,
            policy=managed.spec.policy,
            suite=managed.spec.suite,
            mix=managed.spec.mix,
            mix_label=managed.mix_label,
            steps=managed.steps,
            time_s=managed.session.server.time_s,
        )

    def list_sessions(self) -> List[SessionInfo]:
        with self._lock:
            ids = list(self._sessions)
        return [self.info(session_id) for session_id in ids if session_id in self]

    def latency_percentiles(self, *quantiles: float) -> Dict[str, float]:
        """Decision-latency percentiles (seconds) over the recent window."""
        samples = sorted(self._latencies)
        out: Dict[str, float] = {}
        for q in quantiles:
            if not 0 <= q <= 1:
                raise ExperimentError(f"quantile must be in [0, 1], got {q}")
            label = f"p{q * 100:g}"
            if not samples:
                out[label] = float("nan")
            else:
                index = min(len(samples) - 1, int(q * len(samples)))
                out[label] = samples[index]
        return out

    def stats(self) -> dict:
        """Manager-lifetime counters plus latency percentiles."""
        wall = time.perf_counter() - self._started
        latency = self.latency_percentiles(0.5, 0.99)
        return {
            "sessions_live": len(self._sessions),
            "sessions_created": self._created,
            "sessions_resumed": self._resumed,
            "sessions_killed": self._killed,
            "steps_total": self._steps,
            "uptime_s": wall,
            "steps_per_sec": self._steps / wall if wall > 0 else 0.0,
            "decision_latency_p50_ms": latency["p50"] * 1e3,
            "decision_latency_p99_ms": latency["p99"] * 1e3,
            "slo_intervals": self._slo_intervals,
            "slo_misses": self._slo_misses,
            "slo_attainment": (
                1.0 - self._slo_misses / self._slo_intervals
                if self._slo_intervals
                else None
            ),
        }
