"""The long-lived control-plane server.

One asyncio stream server, one port, two dialects — the first line of
a connection decides which:

* lines starting with an HTTP method get a **minimal REST** surface
  (``GET /healthz``, ``GET /metrics`` in Prometheus text format via
  the ``repro.obs`` exporter, ``GET /sessions``, ``POST /sessions``
  to create or — with a ``snapshot`` body — resume, ``POST
  /sessions/{id}/step``, ``GET /sessions/{id}/snapshot``, ``DELETE
  /sessions/{id}``), one request per connection;
* anything else is treated as **newline-delimited JSON** commands
  (``{"op": "create" | "step" | "snapshot" | "resume" | "kill" |
  "list" | "stats" | "ping", ...}``), one response line per request,
  connection held open — the load generator's dialect.

Session work (stepping a simulator through control intervals) is
blocking CPU work, so every manager call runs on the default executor
thread pool; the event loop only parses frames and moves bytes. The
manager is thread-safe with per-session locks, so requests for
different sessions overlap while same-session steps serialize.

Everything here is stdlib ``asyncio`` — no HTTP framework — which is
why the REST dialect is deliberately minimal: enough for a health
probe, a Prometheus scrape, and curl-driven poking; the JSON-lines
dialect is the real API.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Optional, Tuple

from repro.errors import ExperimentError, ReproError
from repro.obs import TraceCollector, use_collector
from repro.obs.export import prometheus_text
from repro.serve.manager import SessionManager, SessionSpec

_HTTP_METHODS = frozenset({"GET", "POST", "PUT", "DELETE", "HEAD", "PATCH", "OPTIONS"})

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}

#: Largest accepted request frame (a snapshot of a long session is the
#: biggest legitimate payload; this bound just stops runaway clients).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ControlPlaneServer:
    """Hosts a :class:`~repro.serve.manager.SessionManager` on a socket.

    Args:
        manager: the session manager to expose; a fresh one by default.
        host: bind address.
        port: bind port; 0 picks a free one (read :attr:`port` after
            :meth:`start`).
        collector: the obs collector installed as ambient for the
            server's lifetime, so session spans/metrics from executor
            threads land somewhere scrapeable; a fresh
            :class:`~repro.obs.TraceCollector` by default.
    """

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        collector: Optional[TraceCollector] = None,
    ):
        self.manager = manager if manager is not None else SessionManager()
        self.collector = collector if collector is not None else TraceCollector()
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._ambient = contextlib.ExitStack()

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port resolved after start)."""
        return self._host, self._port

    @property
    def port(self) -> int:
        return self._port

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and install the ambient collector."""
        if self._server is not None:
            raise ExperimentError("server already started")
        self._ambient.enter_context(use_collector(self.collector))
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._ambient.close()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    def run(self) -> None:
        """Blocking convenience entry point (the CLI's ``serve``)."""
        try:
            asyncio.run(self.serve_forever())
        except KeyboardInterrupt:
            pass

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            line = first.decode("utf-8", "replace").rstrip("\r\n")
            if line.split(" ", 1)[0] in _HTTP_METHODS:
                await self._serve_http(line, reader, writer)
            else:
                await self._serve_jsonl(line, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _call(self, request: dict) -> dict:
        """Run one manager operation off-loop and wrap the outcome."""
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(None, self._dispatch, request)
        except ReproError as error:
            return {"ok": False, "error": str(error)}
        except Exception as error:  # defensive: never kill the connection
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}
        result.setdefault("ok", True)
        return result

    # -- the operation set (runs on executor threads) -----------------------

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"op": "ping", "sessions_live": len(self.manager)}
        if op == "create":
            spec = SessionSpec.from_dict(request.get("spec") or {})
            return {"session": self.manager.create(spec)}
        if op == "step":
            return self.manager.step(
                self._session_id(request), int(request.get("n", 1))
            )
        if op == "snapshot":
            return {"snapshot": self.manager.snapshot(self._session_id(request))}
        if op == "resume":
            snapshot = request.get("snapshot")
            if not isinstance(snapshot, dict):
                raise ExperimentError("resume requires a 'snapshot' object")
            return {"session": self.manager.resume(snapshot)}
        if op == "kill":
            session_id = self._session_id(request)
            self.manager.kill(session_id)
            return {"session": session_id, "killed": True}
        if op == "list":
            return {"sessions": [info.to_dict() for info in self.manager.list_sessions()]}
        if op == "stats":
            return {"stats": self.manager.stats()}
        raise ExperimentError(f"unknown op {op!r}")

    @staticmethod
    def _session_id(request: dict) -> str:
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ExperimentError("request requires a 'session' id")
        return session_id

    # -- JSON-lines dialect --------------------------------------------------

    async def _serve_jsonl(
        self, first_line: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        line: Optional[str] = first_line
        while True:
            if line is None:
                raw = await reader.readline()
                if not raw:
                    return
                if len(raw) > MAX_FRAME_BYTES:
                    return
                line = raw.decode("utf-8", "replace").rstrip("\r\n")
            if line.strip():
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as error:
                    response = {"ok": False, "error": f"bad request: {error}"}
                else:
                    response = await self._call(request)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
            line = None

    # -- minimal REST dialect ------------------------------------------------

    async def _serve_http(
        self, request_line: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        parts = request_line.split(" ")
        if len(parts) < 2:
            await self._http_response(writer, 400, {"error": "malformed request line"})
            return
        method, path = parts[0], parts[1]

        content_length = 0
        while True:
            raw = await reader.readline()
            if not raw or raw in (b"\r\n", b"\n"):
                break
            header = raw.decode("utf-8", "replace")
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > MAX_FRAME_BYTES:
            await self._http_response(writer, 400, {"error": "body too large"})
            return
        body = {}
        if content_length:
            raw_body = await reader.readexactly(content_length)
            try:
                body = json.loads(raw_body.decode("utf-8", "replace"))
            except ValueError:
                await self._http_response(writer, 400, {"error": "body is not JSON"})
                return

        status, payload, text = await self._route_http(method, path.rstrip("/"), body)
        await self._http_response(writer, status, payload, text)

    async def _route_http(self, method: str, path: str, body: dict):
        """Map ``(method, path, body)`` onto the JSON-lines operation set."""
        if method == "GET" and path in ("", "/healthz"):
            return 200, {"ok": True, "sessions_live": len(self.manager)}, None
        if method == "GET" and path == "/metrics":
            return 200, None, prometheus_text(self.collector.metrics)
        if method == "GET" and path == "/stats":
            return self._status(await self._call({"op": "stats"}))
        if method == "GET" and path == "/sessions":
            return self._status(await self._call({"op": "list"}))
        if method == "POST" and path == "/sessions":
            if "snapshot" in body:
                return self._status(
                    await self._call({"op": "resume", "snapshot": body["snapshot"]})
                )
            return self._status(await self._call({"op": "create", "spec": body}))

        segments = path.strip("/").split("/")
        if len(segments) >= 2 and segments[0] == "sessions":
            session_id = segments[1]
            if method == "POST" and segments[2:] == ["step"]:
                request = {"op": "step", "session": session_id, "n": body.get("n", 1)}
                return self._status(await self._call(request))
            if method == "GET" and segments[2:] == ["snapshot"]:
                return self._status(
                    await self._call({"op": "snapshot", "session": session_id})
                )
            if method == "DELETE" and len(segments) == 2:
                return self._status(
                    await self._call({"op": "kill", "session": session_id})
                )
        return 404, {"ok": False, "error": f"no route {method} {path}"}, None

    @staticmethod
    def _status(response: dict):
        if response.get("ok"):
            return 200, response, None
        error = str(response.get("error", ""))
        return (404 if "unknown session" in error else 400), response, None

    @staticmethod
    async def _http_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Optional[dict],
        text: Optional[str] = None,
    ) -> None:
        if text is not None:
            body = text.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_STATUS_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
