"""The live control plane: sessions as a service.

Every other entry point in the repo replays a workload to completion
and exits. This package inverts that: a :class:`SessionManager` owns
many concurrent :class:`~repro.system.session.ControlSession`s with a
full lifecycle — create, step, snapshot, kill, resume (bit-identical,
via the PR 4 ``PolicyState`` protocol plus server/session state
capture) — and :class:`ControlPlaneServer` exposes the manager as a
long-lived asyncio server speaking both newline-delimited JSON and a
minimal REST surface on one port, with a Prometheus ``/metrics``
scrape endpoint reusing the ``repro.obs`` exporters.

:class:`LoadGenerator` is the matching client: it replays a
``workloads.arrivals`` trace at wall-clock speed (arrivals create
sessions, departures kill them, resident sessions step every epoch)
and reports sessions/sec and decision-latency percentiles — the
numbers behind the ``BENCH_serve.json`` CI artifact.
"""

from repro.serve.loadgen import LoadGenerator, LoadReport
from repro.serve.manager import SessionInfo, SessionManager, SessionSpec
from repro.serve.server import ControlPlaneServer

__all__ = [
    "ControlPlaneServer",
    "LoadGenerator",
    "LoadReport",
    "SessionInfo",
    "SessionManager",
    "SessionSpec",
]
