"""Load generator: replay an arrival trace against a live control plane.

The cluster layer replays :class:`~repro.workloads.arrivals.ArrivalTrace`
objects in simulated time; this module replays them in *wall-clock*
time against a running :class:`~repro.serve.server.ControlPlaneServer`
over its JSON-lines dialect. Each trace epoch becomes a wall-clock
tick of ``epoch_s`` seconds: arrivals create sessions, departures kill
them (optionally snapshotting first, to exercise that path under
load), and every resident session steps ``steps_per_epoch`` control
intervals. All of one tick's requests are issued concurrently over a
small connection pool, so the server sees genuinely overlapping
traffic, not a serial script.

The resulting :class:`LoadReport` — sessions/sec, steps/sec, peak
concurrency, and the server's own decision-latency percentiles — is
what the serve benchmark writes to ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro import serialize
from repro.errors import ExperimentError
from repro.serve.manager import SessionSpec
from repro.workloads.arrivals import ArrivalTrace


@dataclass(frozen=True)
class LoadReport:
    """What one load-generation run measured.

    Latency percentiles are the *server's* decision-latency numbers
    (pulled from its ``stats`` op after the replay), not client
    round-trip times — the benchmark cares about the control plane's
    decide cost, not localhost socket overhead.
    """

    epochs: int
    wall_s: float
    sessions_created: int
    sessions_killed: int
    peak_concurrent: int
    steps_total: int
    sessions_per_sec: float
    steps_per_sec: float
    decision_latency_p50_ms: float
    decision_latency_p99_ms: float
    errors: int
    lagging_epochs: int

    def to_dict(self) -> dict:
        return serialize.dataclass_to_dict(self)


class _Pool:
    """A fixed pool of JSON-lines connections, checked out per request."""

    def __init__(self, host: str, port: int, size: int):
        self._host = host
        self._port = port
        self._size = size
        self._idle: Optional[asyncio.Queue] = None

    async def open(self) -> None:
        self._idle = asyncio.Queue()
        for _ in range(self._size):
            stream = await asyncio.open_connection(self._host, self._port)
            self._idle.put_nowait(stream)

    async def close(self) -> None:
        if self._idle is None:
            return
        while not self._idle.empty():
            _, writer = self._idle.get_nowait()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._idle = None

    async def request(self, payload: dict) -> dict:
        """One request/response round trip on a checked-out connection."""
        reader, writer = await self._idle.get()
        try:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            raw = await reader.readline()
            if not raw:
                raise ExperimentError("server closed the connection")
            return json.loads(raw)
        finally:
            self._idle.put_nowait((reader, writer))


class LoadGenerator:
    """Replays an arrival trace as live control-plane traffic.

    Args:
        host, port: where the control plane listens.
        trace: the arrival trace to replay; each job in the trace maps
            to one session.
        base_spec: template session spec; each arriving job gets a
            copy with ``seed = base_spec.seed + job_id`` (distinct
            noise streams) and ``mix = job_id % mix_cycle`` (varied
            workloads).
        epoch_s: wall-clock seconds per trace epoch.
        steps_per_epoch: control intervals each resident session runs
            per epoch.
        connections: size of the client connection pool — the upper
            bound on in-flight requests.
        mix_cycle: how many suite mix indices to cycle through.
        snapshot_on_kill: snapshot each departing session before
            killing it (exercises the snapshot path under load).
    """

    def __init__(
        self,
        host: str,
        port: int,
        trace: ArrivalTrace,
        base_spec: Optional[SessionSpec] = None,
        epoch_s: float = 0.05,
        steps_per_epoch: int = 1,
        connections: int = 16,
        mix_cycle: int = 8,
        snapshot_on_kill: bool = False,
    ):
        if epoch_s <= 0:
            raise ExperimentError(f"epoch_s must be positive, got {epoch_s}")
        if steps_per_epoch < 0:
            raise ExperimentError(f"steps_per_epoch must be >= 0, got {steps_per_epoch}")
        if connections < 1:
            raise ExperimentError(f"connections must be >= 1, got {connections}")
        if mix_cycle < 1:
            raise ExperimentError(f"mix_cycle must be >= 1, got {mix_cycle}")
        self._host = host
        self._port = port
        self._trace = trace
        self._base_spec = base_spec if base_spec is not None else SessionSpec()
        self._epoch_s = epoch_s
        self._steps_per_epoch = steps_per_epoch
        self._connections = connections
        self._mix_cycle = mix_cycle
        self._snapshot_on_kill = snapshot_on_kill

    def _spec_for(self, job_id: int) -> SessionSpec:
        return dataclasses.replace(
            self._base_spec,
            seed=self._base_spec.seed + job_id,
            mix=job_id % self._mix_cycle,
        )

    async def run(self) -> LoadReport:
        """Replay the whole trace; returns the measured report."""
        pool = _Pool(self._host, self._port, self._connections)
        await pool.open()
        live: Dict[int, str] = {}  # job_id -> session_id
        created = killed = steps = errors = lagging = peak = 0

        async def _create(job_id: int) -> None:
            nonlocal created, errors
            spec = self._spec_for(job_id)
            response = await pool.request({"op": "create", "spec": spec.to_dict()})
            if response.get("ok"):
                live[job_id] = response["session"]
                created += 1
            else:
                errors += 1

        async def _kill(job_id: int) -> None:
            nonlocal killed, errors
            session_id = live.pop(job_id, None)
            if session_id is None:
                return
            if self._snapshot_on_kill:
                response = await pool.request(
                    {"op": "snapshot", "session": session_id}
                )
                if not response.get("ok"):
                    errors += 1
            response = await pool.request({"op": "kill", "session": session_id})
            if response.get("ok"):
                killed += 1
            else:
                errors += 1

        async def _step(session_id: str) -> None:
            nonlocal steps, errors
            response = await pool.request(
                {"op": "step", "session": session_id, "n": self._steps_per_epoch}
            )
            if response.get("ok"):
                steps += self._steps_per_epoch
            else:
                errors += 1

        started = time.perf_counter()
        try:
            for epoch in range(self._trace.n_epochs):
                work = [
                    _kill(job.job_id) for job in self._trace.departures_at(epoch)
                ] + [
                    _create(job.job_id) for job in self._trace.arrivals_at(epoch)
                ]
                await asyncio.gather(*work)
                peak = max(peak, len(live))
                if self._steps_per_epoch:
                    await asyncio.gather(
                        *(_step(session_id) for session_id in list(live.values()))
                    )
                deadline = started + (epoch + 1) * self._epoch_s
                remaining = deadline - time.perf_counter()
                if remaining > 0:
                    await asyncio.sleep(remaining)
                else:
                    lagging += 1  # tick overran its wall-clock budget

            stats_response = await pool.request({"op": "stats"})
            stats = stats_response.get("stats", {}) if stats_response.get("ok") else {}
        finally:
            await pool.close()
        wall = time.perf_counter() - started

        return LoadReport(
            epochs=self._trace.n_epochs,
            wall_s=wall,
            sessions_created=created,
            sessions_killed=killed,
            peak_concurrent=peak,
            steps_total=steps,
            sessions_per_sec=created / wall if wall > 0 else 0.0,
            steps_per_sec=steps / wall if wall > 0 else 0.0,
            decision_latency_p50_ms=float(stats.get("decision_latency_p50_ms", float("nan"))),
            decision_latency_p99_ms=float(stats.get("decision_latency_p99_ms", float("nan"))),
            errors=errors,
            lagging_epochs=lagging,
        )

    def drive(self) -> LoadReport:
        """Blocking convenience wrapper around :meth:`run`."""
        return asyncio.run(self.run())
