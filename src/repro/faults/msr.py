"""An MSR file whose writes can be armed to fail.

Injected actuation faults surface at the same layer they would on real
hardware: the register write. While armed, every :meth:`write` raises
:class:`~repro.errors.HardwareError` *without mutating the register*,
so a failed configuration install leaves the previously programmed
partition intact — exactly the situation the simulator's bounded
retry and the controller's watchdog have to handle.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hardware.msr import MsrFile


class FaultyMsrFile(MsrFile):
    """Drop-in :class:`MsrFile` with switchable write-fault injection."""

    def __init__(self) -> None:
        super().__init__()
        self._armed = False
        self._injected_failures = 0

    @property
    def armed(self) -> bool:
        """Whether the next write will fail."""
        return self._armed

    @property
    def injected_failures(self) -> int:
        """Writes failed by injection over this file's lifetime."""
        return self._injected_failures

    def arm(self, active: bool = True) -> None:
        """Enable (or disable) write-fault injection."""
        self._armed = bool(active)

    def write(self, register: int, value: int, sub_index: int = 0) -> None:
        """Write a register, or raise if fault injection is armed.

        Raises:
            HardwareError: when armed (injected fault; the register is
                left unmodified), or for the usual invalid-address /
                out-of-range-value cases.
        """
        if self._armed:
            self._injected_failures += 1
            raise HardwareError(
                f"MSR {register:#x}[{sub_index}]: injected write fault "
                f"(value {value:#x} not committed)"
            )
        super().write(register, value, sub_index)
