"""Fault schedules: the deterministic realization of a fault plan.

:meth:`FaultSchedule.generate` walks the run's control intervals and
draws fault events from three independent RNG streams (actuation,
monitoring, workload), each derived from an explicit seed by SHA-256 —
never from global state or call order. Identical ``(plan, n_jobs,
duration, interval, seed)`` inputs therefore yield bit-identical
schedules in every process, which is what keeps faulted runs
reproducible across ``--workers 1`` and ``--workers N``.

The schedule is a flat tuple of :class:`FaultEvent` windows; the
simulator consults it at each interval start. Draw consumption is
*unconditional* — one draw per interval (actuation) and per
job-interval (monitoring, workload) regardless of whether an event is
emitted — so overlapping windows never shift the stream and the
timeline of late events does not depend on early ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.faults.plan import FaultPlan

#: Event kinds.
ACTUATION = "actuation"  # MSR writes fail (magnitude = failing attempts)
DROP = "drop"            # monitoring sample lost (NaN)
NAN = "nan"              # counter corruption (NaN)
STUCK = "stuck"          # counter repeats its previous reported value
OUTLIER = "outlier"      # counter scaled by magnitude
CRASH = "crash"          # job crashes: zero IPS + in-flight progress lost
HANG = "hang"            # job hangs: zero IPS, progress kept

_KINDS = (ACTUATION, DROP, NAN, STUCK, OUTLIER, CRASH, HANG)

#: Magnitude marking a persistent outage: more failing attempts than
#: any bounded retry budget, so retry alone can never rescue it.
OUTAGE_ATTEMPTS = 10**9


def _stream_seed(seed: int, stream: str) -> int:
    """A stable 63-bit child seed for one named fault stream."""
    digest = hashlib.sha256(f"faults/{int(seed)}/{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**63 - 1)


@dataclass(frozen=True)
class FaultEvent:
    """One fault window: what goes wrong, when, and to whom.

    Attributes:
        kind: one of the module's kind constants.
        start_s / end_s: active wall-time window (half-open).
        job: affected job index; ``-1`` for system-wide (actuation).
        magnitude: kind-specific strength — failing write attempts for
            ``actuation``, the IPS scale factor for ``outlier``.
    """

    kind: str
    start_s: float
    end_s: float
    job: int = -1
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ExperimentError(f"unknown fault kind {self.kind!r}; choices: {_KINDS}")
        if self.end_s <= self.start_s:
            raise ExperimentError(
                f"fault event window [{self.start_s}, {self.end_s}) is empty"
            )

    def active(self, time_s: float) -> bool:
        """Whether the event covers wall time ``time_s``."""
        return self.start_s <= time_s < self.end_s

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(
            kind=str(data["kind"]),
            start_s=float(data["start_s"]),
            end_s=float(data["end_s"]),
            job=int(data.get("job", -1)),
            magnitude=float(data.get("magnitude", 0.0)),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A concrete, immutable fault timeline for one run."""

    events: Tuple[FaultEvent, ...] = ()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    # -- lookups (consulted once per interval by the simulator) ----------

    def actuation_fail_attempts(self, time_s: float) -> int:
        """How many actuation attempts fail at ``time_s`` (0 = none)."""
        attempts = 0
        for event in self.events:
            if event.kind == ACTUATION and event.active(time_s):
                attempts = max(attempts, int(event.magnitude))
        return attempts

    def monitor_events(self, job: int, time_s: float) -> List[FaultEvent]:
        """Monitoring faults active for ``job`` at ``time_s``."""
        return [
            e
            for e in self.events
            if e.job == job and e.active(time_s) and e.kind in (DROP, NAN, STUCK, OUTLIER)
        ]

    def workload_events(self, job: int, time_s: float) -> List[Tuple[int, FaultEvent]]:
        """Active ``(event_index, event)`` crash/hang pairs for ``job``.

        Indices let the simulator trigger once-per-event effects (the
        progress loss at crash start) exactly once.
        """
        return [
            (i, e)
            for i, e in enumerate(self.events)
            if e.job == job and e.active(time_s) and e.kind in (CRASH, HANG)
        ]

    def active_count(self, time_s: float) -> int:
        """Number of fault events covering ``time_s`` (telemetry)."""
        return sum(1 for e in self.events if e.active(time_s))

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        return cls(events=tuple(FaultEvent.from_dict(e) for e in data.get("events", [])))

    # -- generation ------------------------------------------------------

    @classmethod
    def generate(
        cls,
        plan: FaultPlan,
        n_jobs: int,
        duration_s: float,
        interval_s: float,
        seed: int = 0,
    ) -> "FaultSchedule":
        """Realize ``plan`` into a concrete timeline.

        Args:
            plan: fault rates and window.
            n_jobs: co-location degree (monitoring/workload faults are
                drawn per job).
            duration_s: run length; intervals beyond it are not drawn.
            interval_s: control interval (draws happen at interval
                starts).
            seed: base seed; the actuation, monitoring, and workload
                streams derive from it independently.
        """
        if n_jobs < 1:
            raise ExperimentError(f"n_jobs must be >= 1, got {n_jobs}")
        if interval_s <= 0 or duration_s <= 0:
            raise ExperimentError("duration and interval must be positive")

        rng_act = np.random.default_rng(_stream_seed(seed, "actuation"))
        rng_mon = np.random.default_rng(_stream_seed(seed, "monitoring"))
        rng_wrk = np.random.default_rng(_stream_seed(seed, "workload"))

        start, end = plan.window(duration_s)
        n_steps = int(round(duration_s / interval_s))
        events: List[FaultEvent] = []

        for step in range(n_steps):
            t = step * interval_s
            in_window = start <= t < end

            # Actuation: one outage draw + one transient draw per interval.
            outage = rng_act.random() < plan.actuation_outage_rate
            transient = rng_act.random() < plan.actuation_fail_rate
            if in_window and outage:
                events.append(
                    FaultEvent(
                        ACTUATION,
                        t,
                        t + plan.actuation_outage_duration_s,
                        magnitude=OUTAGE_ATTEMPTS,
                    )
                )
            elif in_window and transient:
                events.append(
                    FaultEvent(
                        ACTUATION,
                        t,
                        t + interval_s,
                        magnitude=plan.actuation_fail_attempts,
                    )
                )

            # Monitoring: one selector draw + one magnitude draw per job.
            for job in range(n_jobs):
                r = rng_mon.random()
                u = rng_mon.random()  # magnitude/direction, always consumed
                if not in_window:
                    continue
                edges = np.cumsum(
                    [
                        plan.sample_drop_rate,
                        plan.sample_nan_rate,
                        plan.sample_stuck_rate,
                        plan.sample_outlier_rate,
                    ]
                )
                if r < edges[0]:
                    events.append(FaultEvent(DROP, t, t + interval_s, job=job))
                elif r < edges[1]:
                    events.append(FaultEvent(NAN, t, t + interval_s, job=job))
                elif r < edges[2]:
                    events.append(
                        FaultEvent(STUCK, t, t + plan.sample_stuck_duration_s, job=job)
                    )
                elif r < edges[3]:
                    scale = plan.sample_outlier_scale
                    factor = float(scale ** (0.5 + 0.5 * u))
                    if u > 0.5:  # reuse the draw's upper bits as the sign
                        factor = 1.0 / factor
                    events.append(
                        FaultEvent(OUTLIER, t, t + interval_s, job=job, magnitude=factor)
                    )

            # Workload: one crash draw + one hang draw per job.
            for job in range(n_jobs):
                crash = rng_wrk.random() < plan.crash_rate
                hang = rng_wrk.random() < plan.hang_rate
                if not in_window:
                    continue
                if crash:
                    events.append(
                        FaultEvent(CRASH, t, t + plan.crash_restart_s, job=job)
                    )
                elif hang:
                    events.append(FaultEvent(HANG, t, t + plan.hang_duration_s, job=job))

        return cls(events=tuple(events))
