"""Fault plans: frozen, hashable descriptions of fault *rates*.

A :class:`FaultPlan` is the experiment-level knob: per-interval
probabilities and durations for the three fault families the testbed
injects (actuation, monitoring, workload), plus the wall-time window
the faults are confined to. It deliberately carries no randomness —
the concrete timeline is realized by
:meth:`repro.faults.schedule.FaultSchedule.generate` from a plan plus
an explicit seed — so a plan can ride inside a
:class:`~repro.engine.RunSpec` and participate in content-addressed
digests, deduplication, and the on-disk run cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ExperimentError

#: Fields that are per-interval probabilities (validated to [0, 1)).
_RATE_FIELDS = (
    "actuation_fail_rate",
    "actuation_outage_rate",
    "sample_drop_rate",
    "sample_nan_rate",
    "sample_stuck_rate",
    "sample_outlier_rate",
    "crash_rate",
    "hang_rate",
)

#: Fields that are durations in seconds (validated to > 0).
_DURATION_FIELDS = (
    "actuation_outage_duration_s",
    "sample_stuck_duration_s",
    "crash_restart_s",
    "hang_duration_s",
)


@dataclass(frozen=True)
class FaultPlan:
    """Seedless description of what faults to inject and how often.

    All rates are per control interval (and per job for the
    monitoring/workload families); all faults are confined to the
    ``[start_s, end_s)`` wall-time window (``end_s=None`` means the
    whole run).

    Attributes:
        start_s / end_s: fault window bounds.
        actuation_fail_rate: probability an interval's configuration
            install suffers a *transient* MSR write fault — the first
            ``actuation_fail_attempts`` write attempts fail, so bounded
            retry rescues it.
        actuation_fail_attempts: failed attempts per transient fault.
        actuation_outage_rate: probability an interval *starts* a
            persistent actuation outage (every write fails) lasting
            ``actuation_outage_duration_s`` — retry cannot rescue it;
            the watchdog/fallback path has to.
        sample_drop_rate: probability a job's monitoring sample is
            dropped (reported as NaN, like a missing ``pqos`` line).
        sample_nan_rate: probability a job's IPS counter reads NaN
            (counter corruption).
        sample_stuck_rate: probability a job's counter *sticks* —
            repeats its previous reported value for
            ``sample_stuck_duration_s``.
        sample_outlier_rate: probability of a gross counter glitch; the
            reported IPS is scaled by a factor drawn log-uniformly from
            ``[scale**0.5, scale]`` (randomly inverted), with
            ``scale = sample_outlier_scale``.
        crash_rate: probability a job crashes this interval — its IPS
            drops to zero for ``crash_restart_s`` and its in-flight
            fixed-work progress is lost.
        hang_rate: probability a job hangs (zero IPS, no progress lost)
            for ``hang_duration_s``.
    """

    start_s: float = 0.0
    end_s: Optional[float] = None
    # -- actuation faults --------------------------------------------------
    actuation_fail_rate: float = 0.0
    actuation_fail_attempts: int = 1
    actuation_outage_rate: float = 0.0
    actuation_outage_duration_s: float = 1.0
    # -- monitoring faults -------------------------------------------------
    sample_drop_rate: float = 0.0
    sample_nan_rate: float = 0.0
    sample_stuck_rate: float = 0.0
    sample_stuck_duration_s: float = 0.5
    sample_outlier_rate: float = 0.0
    sample_outlier_scale: float = 8.0
    # -- workload faults ---------------------------------------------------
    crash_rate: float = 0.0
    crash_restart_s: float = 1.0
    hang_rate: float = 0.0
    hang_duration_s: float = 0.5

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ExperimentError(f"fault window start must be >= 0, got {self.start_s}")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ExperimentError(
                f"fault window end {self.end_s} must exceed start {self.start_s}"
            )
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ExperimentError(f"{name} must be in [0, 1), got {value}")
        for name in _DURATION_FIELDS:
            value = getattr(self, name)
            if value <= 0:
                raise ExperimentError(f"{name} must be positive, got {value}")
        if self.actuation_fail_attempts < 1:
            raise ExperimentError(
                f"actuation_fail_attempts must be >= 1, got {self.actuation_fail_attempts}"
            )
        if self.sample_outlier_scale <= 1.0:
            raise ExperimentError(
                f"sample_outlier_scale must exceed 1, got {self.sample_outlier_scale}"
            )

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing (all rates zero)."""
        return all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)

    def window(self, duration_s: float) -> tuple:
        """The concrete ``(start, end)`` fault window for a run length."""
        end = duration_s if self.end_s is None else min(self.end_s, duration_s)
        return (self.start_s, end)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (digest input, lossless)."""
        from repro.serialize import dataclass_to_dict

        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        Strict: unknown keys raise (a typo'd rate silently injecting
        nothing would invalidate a resilience sweep).
        """
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, data, strict=True)
