"""Node-scoped fleet faults: plans and their deterministic schedules.

The PR 2 fault substrate injects *intra-run* faults (MSR writes,
monitoring samples, job crashes) inside one node-epoch. This module
scales the same plan -> schedule discipline up one level, to *fleet
weather*: whole-node failure modes expressed at placement-epoch
granularity.

* :class:`NodeFaultPlan` — a frozen, seedless description of one
  node's failure behaviour: a deterministic crash-at-epoch (with an
  optional rejoin), plus per-epoch rates for transient blackouts,
  straggler slowdowns, and flaky-telemetry episodes.
* :class:`NodeFaultSchedule` — the concrete realization: a tuple of
  :class:`NodeFaultEvent` windows drawn from SHA-256-derived streams,
  one unconditional draw per epoch per fault family, so overlapping
  windows never shift the stream and identical ``(plan, n_epochs,
  seed)`` inputs are bit-identical in every process.

The cluster simulator realizes one schedule per node from
``derive_seed(cluster_seed, "fleet", node_id)`` — a function of *which
node*, never of which jobs landed there — so every placement x policy
x broker arm of a sweep faces identical fleet weather and observed
differences are attributable to the recovery machinery, not to fault
luck.

Horizon discipline: a plan whose deterministic windows (crash epoch,
rejoin, fault window) extend past the trace being realized *raises*
rather than silently truncating — a crash that never happens, or a
rejoin that is never observed, would quietly invalidate a chaos
sweep's recovery metrics. Stochastic blackout/straggler/flaky windows
that a late draw would push past the horizon are clamped to it: the
down window inside the experiment is fully realized, and the part
beyond the last epoch is unobservable by construction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ExperimentError

#: Node-level event kinds.
NODE_DOWN = "down"            # node unavailable: crash or blackout window
NODE_STRAGGLER = "straggler"  # node runs, but `magnitude`x slower
NODE_FLAKY = "flaky"          # node's telemetry is corrupted at `magnitude`

_NODE_KINDS = (NODE_DOWN, NODE_STRAGGLER, NODE_FLAKY)

#: Fields that are per-epoch probabilities (validated to [0, 1)).
_RATE_FIELDS = ("blackout_rate", "straggler_rate", "flaky_rate")

#: Fields that are window lengths in epochs (validated to >= 1).
_EPOCH_FIELDS = ("blackout_epochs", "straggler_epochs", "flaky_epochs")


def _stream_seed(seed: int, stream: str) -> int:
    """A stable 63-bit child seed for one named fleet-fault stream."""
    digest = hashlib.sha256(f"fleet/{int(seed)}/{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**63 - 1)


@dataclass(frozen=True)
class NodeFaultPlan:
    """Seedless description of one node's fleet-level failure behaviour.

    All rates are per placement epoch; all stochastic faults are
    confined to the ``[start_epoch, end_epoch)`` window (``end_epoch=None``
    means the whole trace). The deterministic crash is the chaos
    sweep's primary knob — it fires at exactly ``crash_epoch`` in every
    realization, so paired arms disagree only in how they *react*.

    Attributes:
        crash_epoch: epoch at which the node deterministically goes
            down (``None`` disables the deterministic crash).
        crash_rejoin_epochs: how many epochs the crashed node stays
            down before rejoining; ``None`` means it never comes back.
        blackout_rate: per-epoch probability a transient blackout
            *starts*, taking the node down for ``blackout_epochs``.
        straggler_rate: per-epoch probability a straggler episode
            starts — the node keeps running but ``straggler_slowdown``
            times slower for ``straggler_epochs``.
        flaky_rate: per-epoch probability a flaky-telemetry episode
            starts: the node's monitoring samples are corrupted at
            ``flaky_intensity`` for ``flaky_epochs``.
        start_epoch / end_epoch: window the stochastic rates apply in.
    """

    crash_epoch: Optional[int] = None
    crash_rejoin_epochs: Optional[int] = None
    blackout_rate: float = 0.0
    blackout_epochs: int = 2
    straggler_rate: float = 0.0
    straggler_epochs: int = 1
    straggler_slowdown: float = 2.0
    flaky_rate: float = 0.0
    flaky_epochs: int = 1
    flaky_intensity: float = 0.5
    start_epoch: int = 0
    end_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.crash_epoch is not None and self.crash_epoch < 0:
            raise ExperimentError(f"crash_epoch must be >= 0, got {self.crash_epoch}")
        if self.crash_rejoin_epochs is not None:
            if self.crash_epoch is None:
                raise ExperimentError("crash_rejoin_epochs needs a crash_epoch")
            if self.crash_rejoin_epochs < 1:
                raise ExperimentError(
                    f"crash_rejoin_epochs must be >= 1, got {self.crash_rejoin_epochs}"
                )
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ExperimentError(f"{name} must be in [0, 1), got {value}")
        for name in _EPOCH_FIELDS:
            value = getattr(self, name)
            if value < 1:
                raise ExperimentError(f"{name} must be >= 1, got {value}")
        if self.straggler_slowdown <= 1.0:
            raise ExperimentError(
                f"straggler_slowdown must exceed 1, got {self.straggler_slowdown}"
            )
        if not 0.0 < self.flaky_intensity <= 1.0:
            raise ExperimentError(
                f"flaky_intensity must be in (0, 1], got {self.flaky_intensity}"
            )
        if self.start_epoch < 0:
            raise ExperimentError(
                f"fault window start must be >= 0, got {self.start_epoch}"
            )
        if self.end_epoch is not None and self.end_epoch <= self.start_epoch:
            raise ExperimentError(
                f"fault window end {self.end_epoch} must exceed start {self.start_epoch}"
            )

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing."""
        return self.crash_epoch is None and all(
            getattr(self, name) == 0.0 for name in _RATE_FIELDS
        )

    def validate_horizon(self, n_epochs: int) -> None:
        """Raise if the plan's deterministic windows outlive ``n_epochs``.

        Silent truncation is the failure mode this guards against: a
        crash scheduled past the trace end never fires, and a rejoin
        past it is never observed — either would quietly turn a chaos
        experiment into a fair-weather run.
        """
        if self.crash_epoch is not None and self.crash_epoch >= n_epochs:
            raise ExperimentError(
                f"crash_epoch {self.crash_epoch} outlives the "
                f"{n_epochs}-epoch trace"
            )
        if self.crash_rejoin_epochs is not None:
            rejoin = self.crash_epoch + self.crash_rejoin_epochs
            if rejoin > n_epochs:
                raise ExperimentError(
                    f"crash rejoin at epoch {rejoin} outlives the "
                    f"{n_epochs}-epoch trace"
                )
        if self.start_epoch >= n_epochs and not self.is_empty:
            raise ExperimentError(
                f"fault window starts at epoch {self.start_epoch}, past the "
                f"{n_epochs}-epoch trace"
            )
        if self.end_epoch is not None and self.end_epoch > n_epochs:
            raise ExperimentError(
                f"fault window end {self.end_epoch} outlives the "
                f"{n_epochs}-epoch trace"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (lossless)."""
        from repro.serialize import dataclass_to_dict

        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NodeFaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (strict keys)."""
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, data, strict=True)


@dataclass(frozen=True)
class NodeFaultEvent:
    """One node-level fault window at epoch granularity (half-open).

    Attributes:
        kind: one of :data:`NODE_DOWN` / :data:`NODE_STRAGGLER` /
            :data:`NODE_FLAKY`.
        start_epoch: first epoch the event covers.
        end_epoch: first epoch it no longer covers; ``None`` means the
            event lasts to the end of the trace (a crash with no
            rejoin).
        magnitude: kind-specific strength — the slowdown factor for
            stragglers, the telemetry-corruption intensity for flaky
            windows, unused (0.0) for down windows.
    """

    kind: str
    start_epoch: int
    end_epoch: Optional[int] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _NODE_KINDS:
            raise ExperimentError(
                f"unknown node fault kind {self.kind!r}; choices: {_NODE_KINDS}"
            )
        if self.start_epoch < 0:
            raise ExperimentError(f"start_epoch must be >= 0, got {self.start_epoch}")
        if self.end_epoch is not None and self.end_epoch <= self.start_epoch:
            raise ExperimentError(
                f"node fault window [{self.start_epoch}, {self.end_epoch}) is empty"
            )

    def active(self, epoch: int) -> bool:
        """Whether the event covers placement epoch ``epoch``."""
        if epoch < self.start_epoch:
            return False
        return self.end_epoch is None or epoch < self.end_epoch

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start_epoch": self.start_epoch,
            "end_epoch": self.end_epoch,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NodeFaultEvent":
        end = data.get("end_epoch")
        return cls(
            kind=str(data["kind"]),
            start_epoch=int(data["start_epoch"]),
            end_epoch=None if end is None else int(end),
            magnitude=float(data.get("magnitude", 0.0)),
        )


@dataclass(frozen=True)
class NodeFaultSchedule:
    """A concrete, immutable fleet-weather timeline for one node."""

    events: Tuple[NodeFaultEvent, ...] = ()
    n_epochs: int = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[NodeFaultEvent]:
        return iter(self.events)

    # -- lookups (consulted once per epoch by the simulator) -------------

    def down_at(self, epoch: int) -> bool:
        """Whether any down window covers ``epoch``."""
        return any(
            e.kind == NODE_DOWN and e.active(epoch) for e in self.events
        )

    def down_end(self, epoch: int) -> Optional[int]:
        """When the down window(s) covering ``epoch`` end.

        Returns the latest ``end_epoch`` among active down windows, or
        ``None`` if any of them is permanent. Meaningless (``None``)
        when :meth:`down_at` is false.
        """
        ends: List[int] = []
        for event in self.events:
            if event.kind != NODE_DOWN or not event.active(epoch):
                continue
            if event.end_epoch is None:
                return None
            ends.append(event.end_epoch)
        return max(ends) if ends else None

    def slowdown_at(self, epoch: int) -> float:
        """Active straggler slowdown factor (1.0 when none)."""
        factor = 1.0
        for event in self.events:
            if event.kind == NODE_STRAGGLER and event.active(epoch):
                factor = max(factor, event.magnitude)
        return factor

    def flaky_at(self, epoch: int) -> float:
        """Active telemetry-corruption intensity (0.0 when none)."""
        intensity = 0.0
        for event in self.events:
            if event.kind == NODE_FLAKY and event.active(epoch):
                intensity = max(intensity, event.magnitude)
        return intensity

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_epochs": self.n_epochs,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NodeFaultSchedule":
        return cls(
            events=tuple(NodeFaultEvent.from_dict(e) for e in data.get("events", [])),
            n_epochs=int(data.get("n_epochs", 0)),
        )

    # -- generation ------------------------------------------------------

    @classmethod
    def generate(
        cls, plan: NodeFaultPlan, n_epochs: int, seed: int = 0
    ) -> "NodeFaultSchedule":
        """Realize ``plan`` into a concrete per-epoch timeline.

        Three independent streams (blackout, straggler, flaky) each
        consume exactly one draw per epoch, window or no window, so a
        long blackout never shifts the straggler stream and late events
        do not depend on early ones.

        Raises:
            ExperimentError: if the plan's deterministic windows
                outlive ``n_epochs`` (see
                :meth:`NodeFaultPlan.validate_horizon`) — never
                silently truncated.
        """
        if n_epochs < 1:
            raise ExperimentError(f"n_epochs must be >= 1, got {n_epochs}")
        plan.validate_horizon(n_epochs)

        rng_down = np.random.default_rng(_stream_seed(seed, "blackout"))
        rng_slow = np.random.default_rng(_stream_seed(seed, "straggler"))
        rng_flky = np.random.default_rng(_stream_seed(seed, "flaky"))

        end_window = n_epochs if plan.end_epoch is None else min(plan.end_epoch, n_epochs)
        events: List[NodeFaultEvent] = []
        if plan.crash_epoch is not None:
            rejoin = (
                None
                if plan.crash_rejoin_epochs is None
                else plan.crash_epoch + plan.crash_rejoin_epochs
            )
            events.append(NodeFaultEvent(NODE_DOWN, plan.crash_epoch, rejoin))

        for epoch in range(n_epochs):
            in_window = plan.start_epoch <= epoch < end_window
            blackout = rng_down.random() < plan.blackout_rate
            straggle = rng_slow.random() < plan.straggler_rate
            flaky = rng_flky.random() < plan.flaky_rate
            if not in_window:
                continue
            # Stochastic windows clamp at the horizon: the down epochs
            # inside the trace are fully realized; the remainder is
            # unobservable by construction (see module docstring).
            if blackout:
                events.append(
                    NodeFaultEvent(
                        NODE_DOWN, epoch, min(epoch + plan.blackout_epochs, n_epochs)
                    )
                )
            if straggle:
                events.append(
                    NodeFaultEvent(
                        NODE_STRAGGLER,
                        epoch,
                        min(epoch + plan.straggler_epochs, n_epochs),
                        magnitude=plan.straggler_slowdown,
                    )
                )
            if flaky:
                events.append(
                    NodeFaultEvent(
                        NODE_FLAKY,
                        epoch,
                        min(epoch + plan.flaky_epochs, n_epochs),
                        magnitude=plan.flaky_intensity,
                    )
                )
        return cls(events=tuple(events), n_epochs=n_epochs)
