"""Deterministic, seeded fault injection for the simulated testbed.

SATORI is an online controller: the paper's claim that it "requires no
further initialization" and adapts through phase changes (Sec. III-C)
only matters if the control loop survives a real deployment's failure
modes — failed MSR writes, dropped or garbage ``pqos`` samples, and
jobs that crash mid-interval. This package provides the *substrate*
for exercising those failure modes reproducibly:

* :class:`~repro.faults.plan.FaultPlan` — a frozen, hashable,
  JSON-round-trippable description of fault *rates* (the experiment
  knob; it composes with :class:`~repro.engine.RunSpec` digests);
* :class:`~repro.faults.schedule.FaultSchedule` — the concrete,
  deterministic realization of a plan: a tuple of
  :class:`~repro.faults.schedule.FaultEvent` windows drawn from RNG
  streams derived from an explicit seed, so identical (plan, seed)
  pairs produce bit-identical fault timelines in every process;
* :class:`~repro.faults.msr.FaultyMsrFile` — an
  :class:`~repro.hardware.msr.MsrFile` whose writes can be armed to
  fail, which is where injected actuation faults surface (the CAT/MBA
  actuators raise exactly as they would on a real ``#GP``).

The *hardening* that survives these faults lives with the components
it protects: retry/fallback actuation in
:class:`~repro.system.simulation.CoLocationSimulator`, sample
validation and the watchdog in
:class:`~repro.core.controller.SatoriController`, and per-spec
retry/partial batches in :class:`~repro.engine.ExecutionEngine`. The
experiment that measures the difference is
:mod:`repro.experiments.resilience`.
"""

from repro.faults.msr import FaultyMsrFile
from repro.faults.nodes import (
    NODE_DOWN,
    NODE_FLAKY,
    NODE_STRAGGLER,
    NodeFaultEvent,
    NodeFaultPlan,
    NodeFaultSchedule,
)
from repro.faults.plan import FaultPlan
from repro.faults.schedule import (
    ACTUATION,
    CRASH,
    DROP,
    HANG,
    NAN,
    OUTAGE_ATTEMPTS,
    OUTLIER,
    STUCK,
    FaultEvent,
    FaultSchedule,
)

__all__ = [
    "ACTUATION",
    "CRASH",
    "DROP",
    "FaultEvent",
    "FaultPlan",
    "FaultSchedule",
    "FaultyMsrFile",
    "HANG",
    "NAN",
    "NODE_DOWN",
    "NODE_FLAKY",
    "NODE_STRAGGLER",
    "NodeFaultEvent",
    "NodeFaultPlan",
    "NodeFaultSchedule",
    "OUTAGE_ATTEMPTS",
    "OUTLIER",
    "STUCK",
]
