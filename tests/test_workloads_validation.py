"""Tests for workload-profile validation and monitoring fault injection."""

import numpy as np
import pytest

from repro.hardware.pqos import PqosMonitor
from repro.errors import HardwareError
from repro.workloads.model import Phase, PhaseSchedule, Workload
from repro.workloads.registry import default_registry, get_workload
from repro.workloads.validation import (
    ERROR,
    INFO,
    WARNING,
    assert_valid,
    validate_workload,
)

MB = float(2**20)


def make_workload(phase, n_phases=1):
    segments = tuple((2.0, phase) for _ in range(n_phases))
    return Workload(
        name="w", suite="synthetic", description="", schedule=PhaseSchedule(segments)
    )


class TestValidation:
    def test_registry_workloads_have_no_errors(self, registry, paper_catalog):
        """Every shipped benchmark profile must be plausible."""
        for name in registry.names:
            findings = validate_workload(registry.get(name), paper_catalog)
            assert not [f for f in findings if f.severity == ERROR], name

    def test_absurd_miss_rate_flagged(self):
        phase = Phase(
            ips_per_core=2e9,
            parallel_fraction=0.9,
            working_set_bytes=8 * MB,
            miss_peak=0.5,
            miss_floor=0.001,
        )
        findings = validate_workload(make_workload(phase))
        assert any(f.severity == ERROR and "miss_peak" in f.message for f in findings)

    def test_absurd_core_speed_flagged(self):
        phase = Phase(
            ips_per_core=1e11,
            parallel_fraction=0.9,
            working_set_bytes=8 * MB,
            miss_peak=0.01,
            miss_floor=0.001,
        )
        findings = validate_workload(make_workload(phase))
        assert any("exceeds any real core" in f.message for f in findings)

    def test_memory_never_binds_warned(self):
        phase = Phase(
            ips_per_core=1e8,  # tiny compute demand, huge memory headroom
            parallel_fraction=0.5,
            working_set_bytes=0.1 * MB,
            miss_peak=0.0002,
            miss_floor=0.0001,
            stream_bytes_per_instr=0.0,
        )
        findings = validate_workload(make_workload(phase))
        assert any(f.severity == WARNING and "never binds" in f.message for f in findings)

    def test_huge_working_set_is_info(self):
        phase = Phase(
            ips_per_core=1.5e9,
            parallel_fraction=0.9,
            working_set_bytes=2000 * MB,
            miss_peak=0.02,
            miss_floor=0.01,
            stream_bytes_per_instr=0.5,
        )
        findings = validate_workload(make_workload(phase))
        assert any(f.severity == INFO and "working set" in f.message for f in findings)

    def test_phase_free_workload_noted(self):
        phase = Phase(
            ips_per_core=1.5e9,
            parallel_fraction=0.9,
            working_set_bytes=6 * MB,
            miss_peak=0.01,
            miss_floor=0.002,
            stream_bytes_per_instr=0.5,
        )
        findings = validate_workload(make_workload(phase, n_phases=3))
        assert any("phase-free" in f.message for f in findings)

    def test_findings_sorted_by_severity(self):
        phase = Phase(
            ips_per_core=1e11,
            parallel_fraction=0.9,
            working_set_bytes=2000 * MB,
            miss_peak=0.02,
            miss_floor=0.01,
        )
        findings = validate_workload(make_workload(phase))
        severities = [f.severity for f in findings]
        order = {ERROR: 0, WARNING: 1, INFO: 2}
        assert severities == sorted(severities, key=order.get)

    def test_assert_valid_raises_on_error(self):
        phase = Phase(
            ips_per_core=1e11,
            parallel_fraction=0.9,
            working_set_bytes=8 * MB,
            miss_peak=0.01,
            miss_floor=0.001,
        )
        with pytest.raises(ValueError):
            assert_valid(make_workload(phase))

    def test_assert_valid_passes_good_profile(self):
        assert_valid(get_workload("canneal"))

    def test_finding_str(self):
        phase = Phase(
            ips_per_core=1e11,
            parallel_fraction=0.9,
            working_set_bytes=8 * MB,
            miss_peak=0.01,
            miss_floor=0.001,
        )
        findings = validate_workload(make_workload(phase))
        assert "phase 0" in str(findings[0])


class TestFaultInjection:
    def test_clean_monitor_by_default(self):
        monitor = PqosMonitor(noise_sigma=0.0, rng=0)
        values = [monitor.observe([1e9], 0.1)[0].ips for _ in range(200)]
        assert all(v == 1e9 for v in values)

    def test_outliers_injected_at_rate(self):
        monitor = PqosMonitor(noise_sigma=0.0, outlier_rate=0.2, outlier_scale=5.0, rng=1)
        values = np.array([monitor.observe([1e9], 0.1)[0].ips for _ in range(1000)])
        glitched = np.abs(np.log(values / 1e9)) > 1e-9
        assert 0.1 < glitched.mean() < 0.3

    def test_outlier_magnitude_bounded(self):
        monitor = PqosMonitor(noise_sigma=0.0, outlier_rate=1e-9 + 0.5, outlier_scale=4.0, rng=2)
        values = np.array([monitor.observe([1e9], 0.1)[0].ips for _ in range(500)])
        assert values.min() >= 1e9 / 4.0 * 0.999
        assert values.max() <= 1e9 * 4.0 * 1.001

    def test_invalid_parameters(self):
        with pytest.raises(HardwareError):
            PqosMonitor(outlier_rate=1.5)
        with pytest.raises(HardwareError):
            PqosMonitor(outlier_scale=0.5)

    def test_satori_survives_glitchy_counters(self, catalog6, parsec_mix3):
        """SATORI must degrade gracefully, not collapse, under glitches."""
        from repro.core.controller import SatoriController
        from repro.experiments.comparison import full_space
        from repro.system.simulation import CoLocationSimulator

        def run(outlier_rate):
            sim = CoLocationSimulator(
                parsec_mix3, catalog6, seed=3, outlier_rate=outlier_rate
            )
            controller = SatoriController(full_space(catalog6, 3), rng=3)
            observation = None
            objectives = []
            for _ in range(120):
                config = controller.decide(observation)
                observation = sim.step(config)
                truth = sim.true_ips()
                iso = sim.measure_isolation()
                s = truth / iso
                objectives.append(0.5 * float(np.mean(s)))
            return float(np.mean(objectives[-40:]))

        clean = run(0.0)
        glitchy = run(0.05)
        assert glitchy > clean * 0.8
