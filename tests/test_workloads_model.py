"""Unit and property tests for the roofline workload model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.model import (
    CACHE_LINE_BYTES,
    Phase,
    PhaseSchedule,
    Workload,
    smoothmin,
)

MB = float(2**20)


def make_phase(**overrides):
    params = dict(
        ips_per_core=2e9,
        parallel_fraction=0.9,
        working_set_bytes=8 * MB,
        miss_peak=0.01,
        miss_floor=0.001,
        stream_bytes_per_instr=0.5,
    )
    params.update(overrides)
    return Phase(**params)


class TestSmoothmin:
    def test_below_both_inputs(self):
        assert smoothmin(3.0, 5.0) < 3.0

    def test_approaches_min_when_far_apart(self):
        assert smoothmin(1.0, 100.0) == pytest.approx(1.0, rel=0.01)

    def test_symmetric(self):
        assert smoothmin(2.0, 7.0) == pytest.approx(smoothmin(7.0, 2.0))

    def test_vectorized(self):
        out = smoothmin(np.array([1.0, 2.0]), np.array([2.0, 1.0]))
        assert out.shape == (2,)
        assert out[0] == pytest.approx(out[1])

    def test_monotone_in_each_argument(self):
        assert smoothmin(2.0, 5.0) < smoothmin(3.0, 5.0)
        assert smoothmin(2.0, 5.0) < smoothmin(2.0, 6.0)


class TestPhaseValidation:
    def test_negative_ips_rejected(self):
        with pytest.raises(WorkloadError):
            make_phase(ips_per_core=-1)

    def test_parallel_fraction_range(self):
        with pytest.raises(WorkloadError):
            make_phase(parallel_fraction=1.5)

    def test_miss_ordering_enforced(self):
        with pytest.raises(WorkloadError):
            make_phase(miss_peak=0.001, miss_floor=0.01)

    def test_negative_stream_rejected(self):
        with pytest.raises(WorkloadError):
            make_phase(stream_bytes_per_instr=-0.1)

    def test_latency_sensitivity_range(self):
        with pytest.raises(WorkloadError):
            make_phase(latency_sensitivity=1.5)


class TestPhaseModel:
    def test_amdahl_one_core_is_one(self):
        assert make_phase().amdahl_speedup(1) == pytest.approx(1.0)

    def test_amdahl_monotone_in_cores(self):
        phase = make_phase()
        speedups = [phase.amdahl_speedup(c) for c in range(1, 11)]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))

    def test_amdahl_bounded_by_serial_fraction(self):
        phase = make_phase(parallel_fraction=0.5)
        assert phase.amdahl_speedup(1000) < 2.0 + 1e-6

    def test_fully_parallel_scales_linearly(self):
        phase = make_phase(parallel_fraction=1.0)
        assert phase.amdahl_speedup(8) == pytest.approx(8.0)

    def test_miss_rate_decreasing_in_cache(self):
        phase = make_phase()
        sizes = np.linspace(0, 20 * MB, 30)
        misses = phase.miss_rate(sizes)
        assert np.all(np.diff(misses) <= 1e-12)

    def test_miss_rate_bounds(self):
        phase = make_phase()
        assert phase.miss_rate(0.0) <= phase.miss_peak + 1e-9
        assert phase.miss_rate(1e12) >= phase.miss_floor - 1e-9

    def test_miss_rate_cliff_around_working_set(self):
        """Most of the miss reduction happens near the working-set knee."""
        phase = make_phase()
        ws = phase.working_set_bytes
        drop_at_knee = phase.miss_rate(0.2 * ws) - phase.miss_rate(ws)
        total_drop = phase.miss_peak - phase.miss_floor
        assert drop_at_knee > 0.8 * total_drop

    def test_bytes_per_instruction_includes_stream(self):
        phase = make_phase(stream_bytes_per_instr=1.0)
        assert phase.bytes_per_instruction(1e12) == pytest.approx(
            phase.miss_rate(1e12) * CACHE_LINE_BYTES + 1.0, rel=1e-6
        )

    def test_memory_rate_linear_in_bandwidth(self):
        phase = make_phase()
        r1 = phase.memory_rate(4 * MB, 1e9)
        r2 = phase.memory_rate(4 * MB, 2e9)
        assert r2 == pytest.approx(2 * r1)

    def test_ips_below_both_rooflines(self):
        phase = make_phase()
        ips = phase.ips(4, 4 * MB, 2e9)
        assert ips <= phase.compute_rate(4)
        assert ips <= phase.memory_rate(4 * MB, 2e9)

    def test_ips_monotone_in_every_resource(self):
        phase = make_phase()
        base = phase.ips(2, 2 * MB, 2e9)
        assert phase.ips(4, 2 * MB, 2e9) > base
        assert phase.ips(2, 12 * MB, 2e9) > base
        assert phase.ips(2, 2 * MB, 4e9) > base

    def test_frequency_factor_scales_compute(self):
        phase = make_phase()
        assert phase.compute_rate(4, 0.5) == pytest.approx(0.5 * phase.compute_rate(4))

    def test_scaled_multiplies(self):
        phase = make_phase()
        scaled = phase.scaled(ips_per_core=0.5, miss_peak=2.0)
        assert scaled.ips_per_core == pytest.approx(1e9)
        assert scaled.miss_peak == pytest.approx(0.02)

    def test_scaled_clamps_parallel_fraction(self):
        assert make_phase(parallel_fraction=0.9).scaled(parallel_fraction=2.0).parallel_fraction == 1.0

    def test_scaled_unknown_param_rejected(self):
        with pytest.raises(WorkloadError):
            make_phase().scaled(bogus=2.0)

    @given(
        cores=st.floats(min_value=1, max_value=10),
        cache_mb=st.floats(min_value=0.5, max_value=16),
        bw_gb=st.floats(min_value=0.5, max_value=24),
    )
    @settings(max_examples=50, deadline=None)
    def test_ips_always_positive_finite(self, cores, cache_mb, bw_gb):
        ips = make_phase().ips(cores, cache_mb * MB, bw_gb * 1e9)
        assert np.isfinite(ips) and ips > 0


class TestPhaseSchedule:
    @pytest.fixture
    def schedule(self):
        return PhaseSchedule(
            (
                (2.0, make_phase()),
                (3.0, make_phase(ips_per_core=1e9)),
                (1.0, make_phase(ips_per_core=3e9)),
            )
        )

    def test_period(self, schedule):
        assert schedule.period == pytest.approx(6.0)

    def test_phase_index_at(self, schedule):
        assert schedule.phase_index_at(0.0) == 0
        assert schedule.phase_index_at(2.5) == 1
        assert schedule.phase_index_at(5.5) == 2

    def test_cyclic(self, schedule):
        assert schedule.phase_index_at(6.5) == 0
        assert schedule.phase_index_at(12.0 + 2.5) == 1

    def test_negative_time_rejected(self, schedule):
        with pytest.raises(WorkloadError):
            schedule.phase_at(-1.0)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseSchedule(())

    def test_non_positive_duration_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseSchedule(((0.0, make_phase()),))

    def test_constant(self):
        schedule = PhaseSchedule.constant(make_phase())
        assert schedule.phase_index_at(100.25) == 0


class TestWorkload:
    def test_isolation_ips_uses_full_machine(self, catalog6):
        workload = Workload(
            name="w", suite="synthetic", description="", schedule=PhaseSchedule.constant(make_phase())
        )
        iso = workload.isolation_ips(catalog6, 0.0)
        partial = workload.ips_under(catalog6, 0.0, cores=2, llc_ways=2, bandwidth_units=2)
        assert iso > partial

    def test_with_offset_shifts_phase(self):
        workload = Workload(
            name="w",
            suite="synthetic",
            description="",
            schedule=PhaseSchedule(((2.0, make_phase()), (2.0, make_phase(ips_per_core=1e9)))),
        )
        shifted = workload.with_offset(2.0)
        # Segment indices renumber after rotation; the active *phase*
        # must match the unshifted workload two seconds in.
        assert shifted.phase_at(0.0).ips_per_core == workload.phase_at(2.0).ips_per_core
        assert shifted.schedule.period == pytest.approx(workload.schedule.period)

    def test_with_offset_zero_identity(self):
        workload = Workload(
            name="w", suite="synthetic", description="", schedule=PhaseSchedule.constant(make_phase())
        )
        assert workload.with_offset(0.0) is workload

    def test_with_offset_partial(self):
        workload = Workload(
            name="w",
            suite="synthetic",
            description="",
            schedule=PhaseSchedule(((2.0, make_phase()), (2.0, make_phase(ips_per_core=1e9)))),
        )
        shifted = workload.with_offset(1.0)
        assert shifted.schedule.period == pytest.approx(4.0)
        assert shifted.phase_at(0.5).ips_per_core == workload.phase_at(1.5).ips_per_core

    def test_contention_sensitivity_validated(self):
        with pytest.raises(WorkloadError):
            Workload(
                name="w",
                suite="s",
                description="",
                schedule=PhaseSchedule.constant(make_phase()),
                contention_sensitivity=2.0,
            )
