"""Tests for the latency-critical / QoS subsystem."""

import math

import numpy as np
import pytest

from repro.errors import PolicyError, WorkloadError
from repro.experiments.qos import qos_colocation
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.policies.qos_parties import QosPartiesPolicy
from repro.resources.space import ConfigurationSpace
from repro.system.simulation import CoLocationSimulator
from repro.workloads.latency_critical import (
    LatencyCriticalJob,
    RequestProfile,
    latency_critical_suite,
)
from repro.workloads.mixes import JobMix
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def lc_job():
    return LatencyCriticalJob(
        workload=get_workload("web_search"),
        profile=RequestProfile.constant(2e6, 0.02, 400.0),
    )


class TestRequestProfile:
    def test_constant_load(self):
        profile = RequestProfile.constant(1e6, 0.02, 500.0)
        assert profile.load_at(0.0) == 500.0
        assert profile.load_at(123.0) == 500.0

    def test_load_curve_repeats(self):
        profile = RequestProfile(1e6, 0.02, (100.0, 200.0, 300.0), load_step_s=1.0)
        assert profile.load_at(0.5) == 100.0
        assert profile.load_at(1.5) == 200.0
        assert profile.load_at(3.5) == 100.0  # wrapped back to sample 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RequestProfile(0.0, 0.02, (100.0,))
        with pytest.raises(WorkloadError):
            RequestProfile(1e6, 0.0, (100.0,))
        with pytest.raises(WorkloadError):
            RequestProfile(1e6, 0.02, ())
        with pytest.raises(WorkloadError):
            RequestProfile(1e6, 0.02, (-1.0,))


class TestLatencyModel:
    def test_service_rate(self, lc_job):
        assert lc_job.service_rate(2e9) == pytest.approx(1000.0)

    def test_p99_matches_mm1_formula(self, lc_job):
        mu = lc_job.service_rate(2e9)  # 1000 rps
        lam = 400.0
        expected = -math.log(0.01) / (mu - lam)
        assert lc_job.p99_latency_s(2e9, 0.0) == pytest.approx(expected)

    def test_overload_is_infinite(self, lc_job):
        # 400 rps load; capacity below 400 rps -> unbounded tail.
        assert math.isinf(lc_job.p99_latency_s(0.5e9, 0.0))

    def test_p99_decreasing_in_capacity(self, lc_job):
        latencies = [lc_job.p99_latency_s(ips, 0.0) for ips in (1e9, 2e9, 4e9)]
        assert latencies[0] > latencies[1] > latencies[2]

    def test_meets_qos_threshold(self, lc_job):
        needed = lc_job.required_ips(0.0)
        assert lc_job.meets_qos(needed * 1.01, 0.0)
        assert not lc_job.meets_qos(needed * 0.9, 0.0)

    def test_headroom_semantics(self, lc_job):
        needed = lc_job.required_ips(0.0)
        assert lc_job.headroom(needed, 0.0) == pytest.approx(1.0, rel=0.01)
        assert lc_job.headroom(needed * 2, 0.0) > 1.0
        assert lc_job.headroom(0.5e9, 0.0) == 0.0  # overloaded

    def test_required_ips_inverts_model(self, lc_job):
        needed = lc_job.required_ips(0.0, slack=1.0)
        assert lc_job.p99_latency_s(needed, 0.0) == pytest.approx(
            lc_job.profile.target_p99_s, rel=1e-9
        )


class TestLcSuite:
    def test_three_services(self):
        jobs = latency_critical_suite()
        assert [j.name for j in jobs] == [
            "web_search",
            "media_streaming",
            "in_memory_analytics",
        ]

    def test_loads_feasible_at_equal_share(self):
        """At the default load fraction, QoS is achievable but tight."""
        from repro.resources.types import default_catalog

        catalog = default_catalog()
        for job in latency_critical_suite():
            equal_ips = job.workload.ips_under(
                catalog, 0.0, cores=10 / 3, llc_ways=10 / 3, bandwidth_units=10 / 3
            )
            mu = job.service_rate(equal_ips)
            assert mu > job.profile.load_at(0.0), "load must be below equal-share capacity"


class TestQosPartiesPolicy:
    @pytest.fixture
    def setup(self, catalog6):
        jobs = latency_critical_suite()
        mix = JobMix(tuple(j.workload for j in jobs))
        space = ConfigurationSpace(catalog6, 3)
        return jobs, mix, space

    def test_job_count_checked(self, setup, catalog6):
        jobs, _mix, _space = setup
        with pytest.raises(PolicyError):
            QosPartiesPolicy(ConfigurationSpace(catalog6, 2), jobs)

    def test_decisions_valid(self, setup, catalog6):
        jobs, mix, space = setup
        policy = QosPartiesPolicy(space, jobs)
        sim = CoLocationSimulator(mix, catalog6, seed=0)
        observation = None
        for _ in range(40):
            config = policy.decide(observation)
            assert space.contains(config)
            observation = sim.step(config)

    def test_qos_report_shape(self, setup, catalog6):
        jobs, mix, space = setup
        policy = QosPartiesPolicy(space, jobs)
        sim = CoLocationSimulator(mix, catalog6, seed=0)
        obs = sim.step(policy.decide(None))
        report = policy.qos_report(obs)
        assert len(report) == 3
        assert all(isinstance(v, (bool, np.bool_)) for v in report)


class TestQosExperiment:
    @pytest.fixture(scope="class")
    def comparison(self):
        return qos_colocation(run_config=RunConfig(duration_s=10.0), seed=0)

    def test_all_policies_present(self, comparison):
        assert set(comparison.results) == {"QoS-PARTIES", "SATORI", "Equal Partition"}

    def test_qos_parties_beats_equal_partition(self, comparison):
        """The native QoS controller must beat a naive split on QoS."""
        assert (
            comparison.result("QoS-PARTIES").qos_satisfaction
            > comparison.result("Equal Partition").qos_satisfaction
        )

    def test_qos_parties_strong_on_worst_job(self, comparison):
        assert comparison.result("QoS-PARTIES").worst_job_satisfaction > 0.5

    def test_satori_throughput_oriented(self, comparison):
        """SATORI (QoS-oblivious) extracts at least as much raw IPS."""
        assert (
            comparison.result("SATORI").mean_total_ips
            >= comparison.result("QoS-PARTIES").mean_total_ips * 0.95
        )
