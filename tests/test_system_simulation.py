"""Tests for the co-location simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.hardware.msr import IA32_L3_QOS_MASK_BASE
from repro.resources.allocation import Configuration
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH
from repro.system.simulation import RECONFIGURATION_PENALTY, CoLocationSimulator
from repro.workloads.mixes import mix_from_names


class TestStepping:
    def test_time_advances(self, make_simulator):
        sim = make_simulator()
        sim.step(sim.equal_partition())
        sim.step()
        assert sim.time_s == pytest.approx(0.2)

    def test_observation_shape(self, make_simulator):
        sim = make_simulator()
        obs = sim.step(sim.equal_partition())
        assert obs.n_jobs == 3
        assert len(obs.isolation_ips) == 3
        assert len(obs.memory_bandwidth_bytes_s) == 3

    def test_config_persists_between_steps(self, make_simulator):
        sim = make_simulator()
        config = sim.equal_partition()
        sim.step(config)
        obs = sim.step()  # no new config
        assert obs.config == config

    def test_run_helper(self, make_simulator):
        sim = make_simulator()
        observations = sim.run(sim.equal_partition(), 5)
        assert len(observations) == 5
        assert observations[-1].time_s == pytest.approx(0.5)

    def test_run_rejects_zero_steps(self, make_simulator):
        sim = make_simulator()
        with pytest.raises(ExperimentError):
            sim.run(sim.equal_partition(), 0)

    def test_noise_seeded(self, make_simulator):
        a = make_simulator().step(None)
        b = make_simulator().step(None)
        assert a.ips == b.ips

    def test_measured_ips_near_truth(self, catalog6, parsec_mix3):
        sim = CoLocationSimulator(parsec_mix3, catalog6, noise_sigma=0.02, seed=9)
        config = sim.equal_partition()
        truth = sim.true_ips(config, at_time=0.0)
        obs = sim.step(config)
        assert np.allclose(obs.ips, truth, rtol=0.2)

    def test_zero_noise_exact(self, catalog6, parsec_mix3):
        sim = CoLocationSimulator(parsec_mix3, catalog6, noise_sigma=0.0, seed=9)
        config = sim.equal_partition()
        truth = sim.true_ips(config, at_time=0.0)
        obs = sim.step(config)
        assert np.allclose(obs.ips, truth, rtol=1e-9)


class TestActuation:
    def test_apply_programs_cat_msrs(self, make_simulator):
        sim = make_simulator()
        sim.apply(sim.equal_partition())
        assert sim.msr.read(IA32_L3_QOS_MASK_BASE) != 0

    def test_partial_config_supported(self, make_simulator, catalog6):
        sim = make_simulator()
        obs = sim.step(Configuration({LLC_WAYS: (2, 2, 2)}))
        assert obs.config.partitions(LLC_WAYS)
        assert not obs.config.partitions(CORES)

    def test_wrong_job_count_rejected(self, make_simulator):
        sim = make_simulator()
        with pytest.raises(ConfigurationError):
            sim.apply(Configuration({CORES: (3, 3)}))

    def test_invalid_sum_rejected(self, make_simulator):
        sim = make_simulator()
        with pytest.raises(ConfigurationError):
            sim.apply(Configuration({CORES: (1, 1, 1)}))

    def test_none_clears_partitions(self, make_simulator):
        sim = make_simulator()
        sim.apply(sim.equal_partition())
        sim.apply(None)
        assert sim.current_config is None


class TestReconfigurationDisturbance:
    def test_stable_config_no_penalty(self, catalog6, parsec_mix3):
        sim = CoLocationSimulator(parsec_mix3, catalog6, noise_sigma=0.0, seed=1)
        config = sim.equal_partition()
        first = np.array(sim.step(config).ips)
        second = np.array(sim.step(config).ips)
        truth = sim.true_ips(config, at_time=0.1)
        assert np.allclose(second, truth, rtol=1e-9)

    def test_reconfiguration_costs_ips(self, catalog6, parsec_mix3):
        sim = CoLocationSimulator(parsec_mix3, catalog6, noise_sigma=0.0, seed=1)
        config = sim.equal_partition()
        sim.step(config)
        flipped = Configuration(
            {
                CORES: (4, 1, 1),
                LLC_WAYS: (4, 1, 1),
                MEMORY_BANDWIDTH: (4, 1, 1),
            }
        )
        obs = np.array(sim.step(flipped).ips)
        truth = sim.true_ips(flipped, at_time=0.1)
        assert np.all(obs <= truth + 1e-6)
        assert np.any(obs < truth * 0.99)

    def test_penalty_bounded(self):
        assert 0.0 <= RECONFIGURATION_PENALTY <= 1.0


class TestReapplySameConfig:
    def test_no_reconfiguration_penalty(self, catalog6, parsec_mix3):
        sim = CoLocationSimulator(parsec_mix3, catalog6, noise_sigma=0.0, seed=1)
        config = sim.equal_partition()
        sim.step(config)
        # Explicitly re-installing the identical configuration moves no
        # allocations, so the interval must be penalty-free.
        obs = sim.step(config)
        truth = sim.true_ips(config, at_time=0.1)
        assert np.allclose(obs.ips, truth, rtol=1e-9)

    def test_registers_unchanged(self, make_simulator):
        sim = make_simulator()
        config = sim.equal_partition()
        sim.apply(config)
        before = sim.msr.read(IA32_L3_QOS_MASK_BASE)
        sim.apply(config)
        assert sim.msr.read(IA32_L3_QOS_MASK_BASE) == before
        assert sim.current_config == config


class TestChurnMidRun:
    def test_swap_keeps_installed_config(self, make_simulator):
        from repro.workloads.registry import get_workload

        sim = make_simulator()
        config = sim.equal_partition()
        for _ in range(7):
            sim.step(config)
        sim.replace_workload(1, get_workload("vips"))
        # The co-location degree is unchanged, so the installed
        # partitioning stays valid and in force.
        assert sim.current_config == config
        obs = sim.step()
        assert obs.config == config
        assert all(v > 0 for v in obs.ips)

    def test_swap_at_unaligned_time_starts_phase_zero(self, make_simulator):
        from repro.workloads.registry import get_workload

        sim = make_simulator()
        # 0.7 s is not a multiple of any catalog workload's phase
        # period, so the offset shift must realign the newcomer.
        for _ in range(7):
            sim.step(sim.equal_partition())
        sim.replace_workload(2, get_workload("streamcluster"))
        assert sim.mix[2].phase_index_at(sim.time_s) == 0

    def test_swap_preserves_other_jobs_progress(self, make_simulator):
        from repro.workloads.registry import get_workload

        sim = make_simulator()
        for _ in range(5):
            obs = sim.step(sim.equal_partition())
        completed_before = obs.completed_runs
        sim.replace_workload(0, get_workload("vips"))
        obs = sim.step()
        assert obs.completed_runs[1:] >= completed_before[1:]
        assert obs.completed_runs[0] == 0


class TestFixedWork:
    def test_completions_accumulate(self, catalog6):
        mix = mix_from_names(["amg", "hypre"])
        # Shrink the fixed work so completions happen within a few steps.
        import dataclasses

        small = type(mix)(
            tuple(dataclasses.replace(w, total_instructions=1e8) for w in mix.workloads)
        )
        sim = CoLocationSimulator(small, catalog6, seed=0)
        obs = None
        for _ in range(10):
            obs = sim.step(sim.equal_partition())
        assert all(c >= 1 for c in obs.completed_runs)

    def test_phase_key(self, make_simulator):
        sim = make_simulator()
        key0 = sim.phase_key(at_time=0.0)
        assert len(key0) == 3
        assert key0 == tuple(w.phase_index_at(0.0) for w in sim.mix)


class TestBaselines:
    def test_measure_isolation_true_values(self, make_simulator):
        sim = make_simulator()
        iso = sim.measure_isolation()
        assert np.all(iso > 0)

    def test_noisy_isolation_close(self, make_simulator):
        sim = make_simulator()
        truth = sim.measure_isolation()
        noisy = sim.measure_isolation(noisy=True)
        assert np.allclose(noisy, truth, rtol=0.25)

    def test_phase_offset_changes_alignment(self, catalog6, parsec_mix3):
        a = CoLocationSimulator(parsec_mix3, catalog6, seed=1, phase_offset_s=0.0)
        b = CoLocationSimulator(parsec_mix3, catalog6, seed=1, phase_offset_s=1.7)
        assert not np.allclose(a.measure_isolation(), b.measure_isolation())
