"""Tests for trace-driven workload construction."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.model import Phase, PhaseSchedule, Workload
from repro.workloads.registry import get_workload
from repro.workloads.trace import (
    TraceSample,
    fit_phase,
    synthesize_trace,
    workload_from_trace,
)

MB = float(2**20)


def make_sample(**overrides):
    params = dict(
        duration_s=3.0,
        ips_one_core=2e9,
        ips_all_cores=9e9,
        n_cores=8,
        cache_probe_bytes=(1 * MB, 4 * MB, 13.75 * MB),
        ips_at_cache=(5e9, 7e9, 9e9),
        bandwidth_bytes_s=6e9,
    )
    params.update(overrides)
    return TraceSample(**params)


class TestTraceSampleValidation:
    def test_valid(self):
        make_sample()

    def test_negative_duration(self):
        with pytest.raises(WorkloadError):
            make_sample(duration_s=0)

    def test_all_core_below_one_core(self):
        with pytest.raises(WorkloadError):
            make_sample(ips_all_cores=1e9)

    def test_mismatched_probe_arrays(self):
        with pytest.raises(WorkloadError):
            make_sample(ips_at_cache=(5e9,))

    def test_single_probe_rejected(self):
        with pytest.raises(WorkloadError):
            make_sample(cache_probe_bytes=(1 * MB,), ips_at_cache=(5e9,))


class TestFitPhase:
    def test_amdahl_recovered(self):
        phase = fit_phase(make_sample())
        # speedup 4.5 on 8 cores -> p = (1 - 1/4.5)/(1 - 1/8) = 0.889
        assert phase.parallel_fraction == pytest.approx(0.889, abs=0.01)
        assert phase.ips_per_core == pytest.approx(2e9)

    def test_miss_curve_ordered(self):
        phase = fit_phase(make_sample())
        assert phase.miss_peak >= phase.miss_floor > 0
        assert phase.working_set_bytes > 0

    def test_cache_insensitive_trace(self):
        phase = fit_phase(make_sample(ips_at_cache=(9e9, 9e9, 9e9)))
        assert phase.miss_peak <= phase.miss_floor * 2 + 1e-6


class TestWorkloadFromTrace:
    def test_builds_cyclic_schedule(self):
        workload = workload_from_trace("traced", [make_sample(), make_sample(duration_s=2.0)])
        assert workload.suite == "trace"
        assert workload.schedule.period == pytest.approx(5.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            workload_from_trace("traced", [])


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["swaptions", "canneal", "streamcluster"])
    def test_refit_preserves_core_scaling(self, name):
        """Synthesize a probe trace from a known model and re-fit it;
        the fitted model's core-scaling behaviour must match."""
        original = get_workload(name)
        trace = synthesize_trace(original, n_cores=8)
        refit = workload_from_trace(name + "_refit", trace)
        for t in (0.0,):
            orig_phase = original.phase_at(t)
            refit_phase = refit.phase_at(t)
            assert refit_phase.parallel_fraction == pytest.approx(
                orig_phase.parallel_fraction, abs=0.08
            )
            assert refit_phase.ips_per_core == pytest.approx(
                orig_phase.ips_per_core, rel=0.35
            )

    def test_refit_workload_runs_in_simulator(self, catalog6):
        from repro.system.simulation import CoLocationSimulator
        from repro.workloads.mixes import JobMix

        traced = workload_from_trace(
            "traced", synthesize_trace(get_workload("canneal"))
        )
        mix = JobMix((traced, get_workload("amg"), get_workload("hypre")))
        sim = CoLocationSimulator(mix, catalog6, seed=0)
        obs = sim.step(sim.equal_partition())
        assert all(v > 0 for v in obs.ips)
