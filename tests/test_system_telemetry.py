"""Tests for telemetry recording and aggregation."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.metrics.goals import GoalSet
from repro.system.telemetry import TelemetryLog


@pytest.fixture
def log():
    telemetry = TelemetryLog(GoalSet())
    iso = (2e9, 4e9)
    for i in range(10):
        telemetry.record(
            time_s=0.1 * (i + 1),
            config=None,
            ips=(1e9 + i * 1e7, 2e9),
            isolation_ips=iso,
            weights=(0.5 + 0.01 * i, 0.5 - 0.01 * i),
            extra={"objective": 0.5 + 0.01 * i},
        )
    return telemetry


class TestRecording:
    def test_length(self, log):
        assert len(log) == 10

    def test_records_scored(self, log):
        rec = log[0]
        assert 0 < rec.throughput <= 1
        assert 0 < rec.fairness <= 1

    def test_speedups(self, log):
        assert log[0].speedups == pytest.approx([0.5, 0.5])

    def test_iteration(self, log):
        assert len(list(log)) == 10


class TestAggregation:
    def test_mean_scores(self, log):
        assert log.mean_throughput() == pytest.approx(
            np.mean([r.throughput for r in log]), rel=1e-12
        )
        assert 0 < log.mean_fairness() <= 1

    def test_mean_job_speedups_shape(self, log):
        assert log.mean_job_speedups().shape == (2,)

    def test_worst_job(self, log):
        assert log.worst_job_speedup() == pytest.approx(log.mean_job_speedups().min())

    def test_empty_log_raises(self):
        with pytest.raises(ExperimentError):
            TelemetryLog().mean_throughput()


class TestSeries:
    def test_time_series(self, log):
        t = log.series("time")
        assert t[0] == pytest.approx(0.1)
        assert np.all(np.diff(t) > 0)

    def test_weight_series(self, log):
        w = log.series("weight_throughput")
        assert w[0] == pytest.approx(0.5)
        assert w[-1] == pytest.approx(0.59)

    def test_extra_series(self, log):
        assert log.series("objective")[-1] == pytest.approx(0.59)

    def test_unknown_series_raises(self, log):
        with pytest.raises(ExperimentError):
            log.series("latency")

    def test_throughput_series_increasing(self, log):
        t = log.series("throughput")
        assert t[-1] > t[0]


class TestTail:
    def test_tail_keeps_last_records(self, log):
        tail = log.tail(0.5)
        assert len(tail) == 5
        assert tail[0].time_s == pytest.approx(0.6)

    def test_tail_full(self, log):
        assert len(log.tail(1.0)) == 10

    def test_tail_bad_fraction(self, log):
        with pytest.raises(ExperimentError):
            log.tail(0.0)
        with pytest.raises(ExperimentError):
            log.tail(1.5)
