"""Tests for the extension experiments (power resource, metric sweep)."""

import pytest

from repro.experiments.extensions import (
    metric_sweep,
    power_capped_partitioning,
    power_catalog,
)
from repro.experiments.runner import RunConfig
from repro.resources.space import ConfigurationSpace
from repro.resources.types import POWER


class TestPowerCatalog:
    def test_includes_power(self):
        catalog = power_catalog(units=6, power_units=6)
        assert POWER in catalog
        assert catalog.get(POWER).units == 6

    def test_power_capacity_is_tdp(self):
        catalog = power_catalog(units=6, power_units=6)
        assert catalog.get(POWER).capacity == pytest.approx(85.0)

    def test_four_resource_space(self):
        catalog = power_catalog(units=6)
        space = ConfigurationSpace(catalog, 3)
        assert len(space.resource_names) == 4
        assert space.dimensions == 12


class TestPowerExtension:
    def test_satori_partitions_four_resources(self, parsec_mix3):
        result = power_capped_partitioning(
            parsec_mix3, RunConfig(duration_s=4.0), seed=0, units=6
        )
        final_config = result.satori_four_resource.telemetry[-1].config
        assert final_config.partitions(POWER)
        assert 0 < result.satori_four_resource.throughput <= 1

    def test_satori_not_much_worse_than_equal(self, parsec_mix3):
        """Managing four resources should at least match a naive split."""
        result = power_capped_partitioning(
            parsec_mix3, RunConfig(duration_s=8.0), seed=0, units=6
        )
        combined_satori = (
            result.satori_four_resource.throughput + result.satori_four_resource.fairness
        )
        combined_equal = result.equal_partition.throughput + result.equal_partition.fairness
        assert combined_satori >= combined_equal * 0.9


class TestMetricSweep:
    def test_all_combinations_present(self, parsec_mix3):
        results = metric_sweep(
            parsec_mix3,
            RunConfig(duration_s=3.0),
            seed=0,
            throughput_metrics=("sum_ips", "geometric_mean"),
            fairness_metrics=("jain",),
            include=("SATORI",),
        )
        assert set(results) == {("sum_ips", "jain"), ("geometric_mean", "jain")}
        for scores in results.values():
            t, f = scores["SATORI"]
            assert 0 < t < 200 and 0 < f < 200
