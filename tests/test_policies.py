"""Tests for the baseline partitioning policies."""

import numpy as np
import pytest

from repro.errors import PolicyError
from repro.metrics.goals import GoalSet
from repro.policies.copart import CoPartPolicy
from repro.policies.dcat import DCatPolicy
from repro.policies.parties import PartiesPolicy
from repro.policies.random_search import RandomSearchPolicy
from repro.policies.static import (
    EqualPartitionPolicy,
    FixedConfigurationPolicy,
    UnmanagedPolicy,
)
from repro.resources.space import ConfigurationSpace
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH
from repro.system.simulation import CoLocationSimulator


@pytest.fixture
def space(catalog6):
    return ConfigurationSpace(catalog6, 3)


@pytest.fixture
def llc_space(catalog6):
    return ConfigurationSpace(catalog6.subset([LLC_WAYS]), 3)


@pytest.fixture
def copart_space(catalog6):
    return ConfigurationSpace(catalog6.subset([LLC_WAYS, MEMORY_BANDWIDTH]), 3)


def drive(policy, simulator, n_steps):
    observation = None
    configs = []
    for _ in range(n_steps):
        config = policy.decide(observation)
        configs.append(config)
        observation = simulator.step(config)
    return configs


class TestStaticPolicies:
    def test_equal_partition_constant(self, space, make_simulator):
        policy = EqualPartitionPolicy(space)
        configs = drive(policy, make_simulator(), 5)
        assert all(c == space.equal_partition() for c in configs)

    def test_fixed_configuration(self, space, make_simulator):
        config = space.sample(rng=3)
        policy = FixedConfigurationPolicy(space, config)
        assert drive(policy, make_simulator(), 3) == [config] * 3

    def test_unmanaged_returns_none(self, space, make_simulator):
        policy = UnmanagedPolicy(space)
        assert policy.decide(None) is None
        assert policy.controlled_resources == ()


class TestRandomSearch:
    def test_samples_valid_members(self, space, make_simulator):
        policy = RandomSearchPolicy(space, rng=0)
        for config in drive(policy, make_simulator(), 20):
            assert space.contains(config)

    def test_avoids_repeats(self, space):
        policy = RandomSearchPolicy(space, rng=0)
        configs = [policy.decide(None) for _ in range(50)]
        # Best-effort non-repetition: overwhelmingly unique on a big space.
        assert len(set(configs)) >= 45

    def test_reset_clears_seen(self, space):
        policy = RandomSearchPolicy(space, rng=0)
        policy.decide(None)
        policy.reset()
        assert not policy._seen  # noqa: SLF001 - white-box check


class TestDCat:
    def test_requires_llc_only_space(self, space):
        with pytest.raises(PolicyError):
            DCatPolicy(space)

    def test_controls_single_resource(self, llc_space, make_simulator):
        policy = DCatPolicy(llc_space, rng=0)
        configs = drive(policy, make_simulator(), 30)
        for config in configs:
            assert config.resource_names == (LLC_WAYS,)
            assert sum(config.units(LLC_WAYS)) == llc_space.catalog.get(LLC_WAYS).units

    def test_moves_cache_over_time(self, llc_space, make_simulator):
        policy = DCatPolicy(llc_space, rng=0)
        configs = drive(policy, make_simulator(), 60)
        assert len(set(configs)) > 1

    def test_diagnostics_expose_utilities(self, llc_space, make_simulator):
        policy = DCatPolicy(llc_space, rng=0)
        drive(policy, make_simulator(), 30)
        assert any(k.startswith("utility_job") for k in policy.diagnostics())

    def test_reset(self, llc_space, make_simulator):
        policy = DCatPolicy(llc_space, rng=0)
        drive(policy, make_simulator(), 12)
        policy.reset()
        assert policy.decide(None) == llc_space.equal_partition()


class TestCoPart:
    def test_requires_llc_and_bandwidth(self, space, llc_space):
        with pytest.raises(PolicyError):
            CoPartPolicy(space)
        with pytest.raises(PolicyError):
            CoPartPolicy(llc_space)

    def test_controls_two_resources(self, copart_space, make_simulator):
        policy = CoPartPolicy(copart_space)
        for config in drive(policy, make_simulator(), 30):
            assert set(config.resource_names) == {LLC_WAYS, MEMORY_BANDWIDTH}

    def test_fairer_than_static_equal_partition(self, copart_space, catalog6, parsec_mix3, goals):
        """CoPart's active equalization should beat holding the equal split."""

        def run(policy_factory):
            means = []
            for seed in (5, 6, 7):  # average out noise realizations
                sim = CoLocationSimulator(parsec_mix3, catalog6, seed=seed)
                policy = policy_factory()
                observation = None
                fairness = []
                for _ in range(100):
                    config = policy.decide(observation)
                    observation = sim.step(config)
                    scores = goals.scores(observation.ips, observation.isolation_ips)
                    fairness.append(scores.fairness)
                means.append(np.mean(fairness[-40:]))
            return float(np.mean(means))

        copart = run(lambda: CoPartPolicy(copart_space, goals))
        static = run(lambda: EqualPartitionPolicy(copart_space, goals))
        assert copart > static - 0.01

    def test_moves_one_unit_at_a_time(self, copart_space, make_simulator):
        policy = CoPartPolicy(copart_space)
        configs = drive(policy, make_simulator(), 30)
        for prev, nxt in zip(configs, configs[1:]):
            diff = np.abs(prev.as_vector() - nxt.as_vector()).sum()
            assert diff in (0.0, 2.0)


class TestParties:
    def test_full_resource_control(self, space, make_simulator):
        policy = PartiesPolicy(space)
        for config in drive(policy, make_simulator(), 30):
            assert set(config.resource_names) == {CORES, LLC_WAYS, MEMORY_BANDWIDTH}

    def test_moves_one_dimension_at_a_time(self, space, make_simulator):
        policy = PartiesPolicy(space)
        configs = drive(policy, make_simulator(), 40)
        for prev, nxt in zip(configs, configs[1:]):
            changed = [
                name
                for name in space.resource_names
                if prev.units(name) != nxt.units(name)
            ]
            assert len(changed) <= 1

    def test_holds_between_decision_points(self, space, make_simulator):
        policy = PartiesPolicy(space, decision_every=5)
        configs = drive(policy, make_simulator(), 20)
        # Configuration may only change at multiples of decision_every.
        for i, (prev, nxt) in enumerate(zip(configs, configs[1:])):
            if (i + 1) % 5 != 0:
                assert prev == nxt

    def test_improves_over_start(self, space, catalog6, parsec_mix3, goals):
        sim = CoLocationSimulator(parsec_mix3, catalog6, seed=7)
        policy = PartiesPolicy(space, goals)
        observation = None
        objectives = []
        for _ in range(150):
            config = policy.decide(observation)
            observation = sim.step(config)
            scores = goals.scores(observation.ips, observation.isolation_ips)
            objectives.append(scores.weighted(0.5, 0.5))
        assert np.mean(objectives[-30:]) > np.mean(objectives[:30]) * 0.98

    def test_diagnostics(self, space, make_simulator):
        policy = PartiesPolicy(space)
        drive(policy, make_simulator(), 25)
        diag = policy.diagnostics()
        assert "moves_accepted" in diag and "moves_rejected" in diag
