"""Resilience experiment driver tests.

The driver's contract: a paired fault-intensity sweep over hardened
SATORI, hardening-disabled SATORI, and static partitioning, each
scored on retention against its own clean run, with outright crashes
recorded as failed cells and recovery time read off the telemetry
fault trail.
"""

from __future__ import annotations

import pytest

from repro.core.controller import SatoriController
from repro.errors import ExperimentError
from repro.experiments.resilience import (
    DEFAULT_INTENSITIES,
    RESILIENCE_VARIANTS,
    moderate_fault_plan,
    recovery_time_s,
    resilience_specs,
    resilience_sweep,
)
from repro.experiments.runner import RunConfig, experiment_catalog, run_policy
from repro.faults.plan import FaultPlan
from repro.policies.static import EqualPartitionPolicy
from repro.resources.space import ConfigurationSpace
from repro.workloads.mixes import mix_from_names

FAST = RunConfig(duration_s=6.0, interval_s=0.1, baseline_reset_s=3.0)


@pytest.fixture(scope="module")
def mix():
    return mix_from_names(["canneal", "fluidanimate", "streamcluster"])


@pytest.fixture(scope="module")
def catalog():
    return experiment_catalog(units=6)


@pytest.fixture(scope="module")
def sweep(mix, catalog):
    # seed=1 pins a timeline where full-intensity faults kill the
    # unhardened controller outright while hardened SATORI rides them
    # out — the contrast this suite exists to document.
    return resilience_sweep(mix, catalog, FAST, intensities=(0.0, 1.0), seed=1)


class TestModerateFaultPlan:
    def test_zero_intensity_is_clean(self):
        assert moderate_fault_plan(0.0, 20.0) is None

    @pytest.mark.parametrize("intensity", [-0.1, 1.5])
    def test_out_of_range_rejected(self, intensity):
        with pytest.raises(ExperimentError):
            moderate_fault_plan(intensity, 20.0)

    def test_rates_scale_with_intensity(self):
        mild = moderate_fault_plan(0.25, 20.0)
        rough = moderate_fault_plan(1.0, 20.0)
        assert rough.actuation_fail_rate == pytest.approx(4 * mild.actuation_fail_rate)
        assert rough.crash_rate == pytest.approx(4 * mild.crash_rate)

    def test_faults_confined_to_middle_third(self):
        plan = moderate_fault_plan(1.0, 30.0)
        assert plan.window(30.0) == (10.0, 20.0)


class TestResilienceSpecs:
    def test_clean_reference_forced_into_grid(self, mix, catalog):
        cells = resilience_specs(mix, catalog, FAST, intensities=(0.5,), seed=0)
        levels = sorted({level for _, level, _ in cells})
        assert levels == [0.0, 0.5]
        assert len(cells) == len(RESILIENCE_VARIANTS) * 2

    def test_variants_paired_on_environment(self, mix, catalog):
        cells = resilience_specs(mix, catalog, FAST, intensities=(0.0, 0.5), seed=0)
        by_level = {}
        for _, level, spec in cells:
            by_level.setdefault(level, []).append(spec)
        for level, specs in by_level.items():
            # Distinct runs, identical fault environment.
            assert len({s.digest for s in specs}) == len(RESILIENCE_VARIANTS)
            assert len({s.environment_digest for s in specs}) == 1

    def test_default_intensities_used(self, mix, catalog):
        cells = resilience_specs(mix, catalog, FAST, seed=0)
        assert sorted({level for _, level, _ in cells}) == sorted(DEFAULT_INTENSITIES)


class TestResilienceSweep:
    def test_every_cell_reported(self, sweep):
        assert sweep.intensities == (0.0, 1.0)
        assert len(sweep.outcomes) == len(RESILIENCE_VARIANTS) * 2
        for variant, _, _ in RESILIENCE_VARIANTS:
            assert len(sweep.variant(variant)) == 2

    def test_clean_cells_have_unit_retention_and_no_recovery(self, sweep):
        for variant, _, _ in RESILIENCE_VARIANTS:
            cell = sweep.cell(variant, 0.0)
            assert not cell.failed
            assert cell.throughput_retention == pytest.approx(1.0)
            assert cell.fairness_retention == pytest.approx(1.0)
            assert cell.recovery_time_s is None

    def test_hardened_survives_and_degrades_gracefully(self, sweep):
        cell = sweep.cell("hardened", 1.0)
        assert not cell.failed
        assert 0.0 < cell.throughput_retention <= 1.05
        assert cell.recovery_time_s is not None

    def test_static_never_confused_by_faults(self, sweep):
        cell = sweep.cell("static", 1.0)
        assert not cell.failed
        assert cell.throughput_retention > 0.0

    def test_hardening_outperforms_its_absence_under_faults(self, sweep):
        hardened = sweep.cell("hardened", 1.0)
        unhardened = sweep.cell("unhardened", 1.0)
        # The unhardened controller either dies outright or retains
        # measurably less throughput on this (deterministic) timeline.
        if unhardened.failed:
            assert "speedup" in unhardened.error or "Error" in unhardened.error
        else:
            assert hardened.throughput_retention > unhardened.throughput_retention

    def test_unknown_variant_rejected(self, sweep):
        with pytest.raises(ExperimentError):
            sweep.variant("imaginary")
        with pytest.raises(ExperimentError):
            sweep.cell("hardened", 0.123)


class TestRecoveryTime:
    def test_clean_run_has_no_recovery_time(self, mix, catalog):
        space = ConfigurationSpace(catalog, len(mix))
        result = run_policy(EqualPartitionPolicy(space), mix, catalog, FAST, seed=0)
        assert recovery_time_s(result) is None

    def test_faulted_run_reports_recovery(self, mix, catalog):
        space = ConfigurationSpace(catalog, len(mix))
        plan = moderate_fault_plan(1.0, FAST.duration_s)
        result = run_policy(
            EqualPartitionPolicy(space), mix, catalog, FAST, seed=0, faults=plan, fault_seed=0
        )
        recovery = recovery_time_s(result)
        assert recovery is not None and recovery >= 0.0


class TestCrashContrast:
    """The headline robustness claim, reproduced at unit-test scale."""

    PLAN = FaultPlan(crash_rate=0.9, hang_rate=0.9, crash_restart_s=1.0, hang_duration_s=0.5)
    SHORT = RunConfig(duration_s=3.0, interval_s=0.1, baseline_reset_s=2.0)

    def test_unhardened_satori_dies_where_hardened_survives(self, mix, catalog):
        space = ConfigurationSpace(catalog, len(mix))
        hardened = SatoriController(space, rng=0)
        result = run_policy(
            hardened, mix, catalog, self.SHORT, seed=0, faults=self.PLAN, fault_seed=0
        )
        assert hardened.rejected_samples > 0
        assert result.telemetry.records

        naive = SatoriController(space, rng=0, hardening=False)
        with pytest.raises(ExperimentError, match="speedup"):
            run_policy(naive, mix, catalog, self.SHORT, seed=0, faults=self.PLAN, fault_seed=0)
