"""Tests for the BoPF policy and the controller tilt machinery it rides.

BoPF's contract has two halves. With no qos jobs (or at tilt level 0)
it *is* plain SATORI, decision for decision. With qos jobs violating
their floor it escalates a bounded baseline tilt — patience before the
first level, a fixed cadence between levels, hysteresis on the way
down, and a futility cooldown when full tilt buys nothing.
"""

from __future__ import annotations

import json

import pytest

from repro.core.controller import SatoriController
from repro.errors import PolicyError
from repro.policies.bopf import BoPFPolicy
from repro.policies.registry import make_policy, policy_is_qos_aware
from repro.resources.space import ConfigurationSpace
from repro.state import PolicyState
from repro.system.simulation import CoLocationSimulator, Observation


@pytest.fixture
def space(catalog6):
    return ConfigurationSpace(catalog6, 3)


def feed(policy, speedups, n_steps, observation=None, iso=1e9):
    """Drive ``decide`` with synthetic observations at fixed speedups.

    The configuration echoed back is whatever the policy just asked
    for, so the loop is a valid Algorithm-1 conversation regardless of
    what the inner optimizer proposes. Returns the last observation so
    successive calls continue one session instead of restarting it
    (``decide(None)`` is a session restart and resets the EMA).
    """
    t = 0.0 if observation is None else observation.time_s
    for _ in range(n_steps):
        config = policy.decide(observation)
        t += 0.1
        observation = Observation(
            time_s=t,
            interval_s=0.1,
            ips=tuple(s * iso for s in speedups),
            isolation_ips=(iso,) * len(speedups),
            config=config,
            completed_runs=(0,) * len(speedups),
        )
    return observation


def drive(policy, simulator, n_steps, observation=None):
    configs = []
    for _ in range(n_steps):
        config = policy.decide(observation)
        configs.append(config)
        observation = simulator.step(config)
    return configs, observation


def tilt_level(policy):
    return policy.diagnostics()["bopf_tilt_level"]


class TestConstruction:
    def test_registry_builds_bopf_and_flags_it_qos_aware(self, catalog6, parsec_mix3):
        policy = make_policy(
            "BoPF", parsec_mix3, catalog6, rng=0,
            qos_jobs=(0,), qos_min_speedup=0.6,
        )
        assert isinstance(policy, BoPFPolicy)
        assert policy_is_qos_aware("BoPF")
        assert policy_is_qos_aware("QoSPARTIES")
        assert not policy_is_qos_aware("SATORI")

    def test_validation(self, space):
        with pytest.raises(PolicyError, match="boost_budget"):
            BoPFPolicy(space, qos_jobs=(0,), boost_budget=-1)
        with pytest.raises(PolicyError, match="boost_step"):
            BoPFPolicy(space, qos_jobs=(0,), boost_step=0.0)
        with pytest.raises(PolicyError, match="min_speedup"):
            BoPFPolicy(space, qos_jobs=(0,), min_speedup=1.5)
        with pytest.raises(PolicyError, match="out of range"):
            BoPFPolicy(space, qos_jobs=(3,))


class TestSatoriEquivalence:
    def test_no_qos_jobs_matches_plain_satori(self, space, catalog6, parsec_mix3):
        """The fairness-phase guarantee: an empty qos set means the
        wrapper adds nothing — same rng, same decisions, bit for bit."""
        bopf = BoPFPolicy(space, qos_jobs=(), rng=0)
        satori = SatoriController(space, rng=0)
        sim_a = CoLocationSimulator(parsec_mix3, catalog=catalog6, seed=5)
        sim_b = CoLocationSimulator(parsec_mix3, catalog=catalog6, seed=5)
        ours, _ = drive(bopf, sim_a, 30)
        theirs, _ = drive(satori, sim_b, 30)
        assert ours == theirs
        assert tilt_level(bopf) == 0


class TestGuaranteePhase:
    def make(self, space, **kwargs):
        defaults = dict(
            qos_jobs=(0,), min_speedup=0.6, boost_budget=3,
            boost_step=0.2, rng=0,
        )
        defaults.update(kwargs)
        return BoPFPolicy(space, **defaults)

    def test_no_escalation_while_probing(self, space):
        policy = self.make(space)
        probe_steps = len(policy._inner.initial_configurations)
        feed(policy, (0.1, 0.9, 0.9), probe_steps)
        assert tilt_level(policy) == 0

    def test_violation_escalates_to_full_tilt_then_backs_off(self, space):
        # A qos job pinned far below its floor: the tilt must climb to
        # the budget, and — when full tilt provably buys nothing (the
        # speedup never moves) — release into a cooldown rather than
        # chase an infeasible guarantee forever.
        policy = self.make(space)
        observation = None
        seen_full = seen_backoff = False
        for _ in range(60):
            observation = feed(policy, (0.2, 0.9, 0.9), 1, observation)
            level = tilt_level(policy)
            seen_full = seen_full or level == 3
            if seen_full and level == 0:
                seen_backoff = policy.diagnostics()["bopf_cooldown"] > 0
                break
        assert seen_full, "tilt never reached the full boost budget"
        assert seen_backoff, "full tilt with zero progress never released"
        assert policy.diagnostics()["bopf_boosts_total"] >= 3

    def test_recovery_decays_tilt_and_clears_cooldown(self, space):
        policy = self.make(space)
        # Violate until at least one level is engaged...
        observation = None
        for _ in range(60):
            observation = feed(policy, (0.2, 0.9, 0.9), 1, observation)
            if tilt_level(policy) >= 1:
                break
        assert tilt_level(policy) >= 1
        # ...then clear the floor with hysteresis headroom
        # (0.9 > 0.6 * 1.15): the tilt decays back to plain SATORI.
        feed(policy, (0.9, 0.9, 0.9), 30, observation)
        assert tilt_level(policy) == 0
        assert policy.diagnostics()["bopf_cooldown"] == 0

    def test_meeting_the_floor_never_tilts(self, space):
        policy = self.make(space)
        feed(policy, (0.8, 0.9, 0.9), 40)
        assert tilt_level(policy) == 0
        assert policy.diagnostics()["bopf_boosts_total"] == 0


class TestSnapshotRestore:
    def test_mid_tilt_resume_is_bit_identical(self, space):
        """Snapshot while the guarantee phase is engaged; the restored
        policy must continue with the same tilt, cooldown bookkeeping,
        and decisions as the uninterrupted one."""
        reference = BoPFPolicy(
            space, qos_jobs=(0,), min_speedup=0.6, rng=3
        )
        observation = None
        for _ in range(60):
            observation = feed(reference, (0.2, 0.9, 0.9), 1, observation)
            if tilt_level(reference) >= 1:
                break
        assert tilt_level(reference) >= 1

        state = PolicyState.from_dict(
            json.loads(json.dumps(reference.snapshot().to_dict()))
        )
        restored = BoPFPolicy(
            space, qos_jobs=(0,), min_speedup=0.6, rng=999
        )
        restored.restore(state)
        assert tilt_level(restored) == tilt_level(reference)

        feed(reference, (0.2, 0.9, 0.9), 10, observation)
        feed(restored, (0.2, 0.9, 0.9), 10, observation)
        assert restored.diagnostics() == reference.diagnostics()
        assert restored.snapshot() == reference.snapshot()

    def test_cooldown_survives_the_round_trip(self, space):
        policy = BoPFPolicy(space, qos_jobs=(0,), min_speedup=0.6, rng=0)
        observation = None
        for _ in range(60):
            observation = feed(policy, (0.2, 0.9, 0.9), 1, observation)
            if policy.diagnostics()["bopf_cooldown"] > 0:
                break
        assert policy.diagnostics()["bopf_cooldown"] > 0
        clone = BoPFPolicy(space, qos_jobs=(0,), min_speedup=0.6, rng=1)
        clone.restore(PolicyState.from_dict(
            json.loads(json.dumps(policy.snapshot().to_dict()))
        ))
        assert clone.diagnostics()["bopf_cooldown"] == (
            policy.diagnostics()["bopf_cooldown"]
        )

    def test_kind_mismatch_rejected(self, space):
        policy = BoPFPolicy(space, qos_jobs=(0,), rng=0)
        with pytest.raises(PolicyError):
            policy.restore(PolicyState(policy="SATORI", payload={}))


class TestBaselineTilt:
    """``SatoriController.set_baseline_tilt`` — the scoring context BoPF
    escalates; tested directly at the controller seam."""

    def test_validates_shape_and_sign(self, space):
        controller = SatoriController(space, rng=0)
        with pytest.raises(PolicyError, match="entries"):
            controller.set_baseline_tilt((1.2, 1.0))
        with pytest.raises(PolicyError, match="positive"):
            controller.set_baseline_tilt((1.2, -1.0, 1.0))

    def test_all_ones_is_a_clear(self, space):
        controller = SatoriController(space, rng=0)
        assert controller.set_baseline_tilt((1.0, 1.0, 1.0)) == 0
        assert controller.set_baseline_tilt(None) == 0

    def test_tilt_rescoring_changes_the_record_book(
        self, space, catalog6, parsec_mix3
    ):
        controller = SatoriController(space, rng=0)
        sim = CoLocationSimulator(parsec_mix3, catalog=catalog6, seed=7)
        drive(controller, sim, 20)
        before = [s.scores for s in controller.records.samples]
        changed = controller.set_baseline_tilt((1.4, 1.0, 1.0))
        after = [s.scores for s in controller.records.samples]
        assert changed > 0
        assert before != after
        # Clearing the tilt rescoring back restores the original book.
        controller.set_baseline_tilt(None)
        assert [s.scores for s in controller.records.samples] == before

    def test_unchanged_tilt_is_a_no_op(self, space, catalog6, parsec_mix3):
        controller = SatoriController(space, rng=0)
        drive(controller, CoLocationSimulator(
            parsec_mix3, catalog=catalog6, seed=7), 15)
        assert controller.set_baseline_tilt((1.4, 1.0, 1.0)) > 0
        assert controller.set_baseline_tilt((1.4, 1.0, 1.0)) == 0

    def test_tilt_round_trips_through_snapshot(self, space):
        controller = SatoriController(space, rng=0)
        controller.set_baseline_tilt((1.4, 1.0, 1.0))
        restored = SatoriController(space, rng=1)
        restored.restore(PolicyState.from_dict(
            json.loads(json.dumps(controller.snapshot().to_dict()))
        ))
        assert restored._baseline_tilt == (1.4, 1.0, 1.0)
