"""Tests for the figure registry and its CLI command."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import FigureScale, figure_names, run_figure

#: Small scale so every driver finishes quickly in tests.
# 5-job PARSEC mixes need >= 5 units per resource; degree-7
# scalability needs >= 7, so tests use 8 with very short runs.
SCALE = FigureScale(units=8, duration_s=3.0, n_mixes=1, seed=0)


class TestRegistry:
    def test_names_sorted_and_nonempty(self):
        names = figure_names()
        assert names and list(names) == sorted(names)

    def test_unknown_figure_rejected(self):
        with pytest.raises(ExperimentError, match="unknown figure"):
            run_figure("fig99")

    @pytest.mark.parametrize("name", ["fig1", "fig2", "fig3"])
    def test_characterization_figures(self, name):
        out = run_figure(name, SCALE)
        assert name.replace("fig", "Fig. ") in out

    def test_fig7_table(self):
        out = run_figure("fig7", SCALE)
        assert "SATORI" in out and "PARTIES" in out

    def test_suite_variants(self):
        assert "cloudsuite" in run_figure("fig12", SCALE)
        assert "ecp" in run_figure("fig13", SCALE)

    def test_fig14_weights(self):
        out = run_figure("fig14", SCALE)
        assert "W_T" in out and "dynamic-vs-static" in out

    def test_overhead(self):
        out = run_figure("overhead", SCALE)
        assert "ms/interval" in out and "idle" in out

    def test_scalability(self):
        out = run_figure("scalability", SCALE)
        assert "gap by degree" in out

    def test_ablation(self):
        out = run_figure("ablation", SCALE)
        assert "dCAT" in out and "CoPart" in out


class TestFigureCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["figure", "--list"]) == 0
        assert "fig7" in capsys.readouterr().out

    def test_run_one(self, capsys):
        from repro.cli import main

        assert (
            main(["figure", "fig2", "--units", "8", "--duration", "2", "--mixes", "1"]) == 0
        )
        assert "Fig. 2" in capsys.readouterr().out

    def test_missing_name_errors(self, capsys):
        from repro.cli import main

        assert main(["figure"]) == 2
