"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in (
            "workloads",
            "quickstart",
            "compare",
            "weights",
            "sensitivity",
            "scalability",
            "overhead",
        ):
            args = parser.parse_args([command] if command == "workloads" else [command, "--duration", "2"])
            assert args.command == command


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "canneal" in out and "xsbench" in out

    def test_quickstart_small(self, capsys):
        assert main(["quickstart", "--duration", "2", "--units", "4", "--suite", "ecp"]) == 0
        out = capsys.readouterr().out
        assert "SATORI" in out and "Balanced Oracle" in out

    def test_compare_single_mix(self, capsys):
        assert (
            main(["compare", "--duration", "2", "--units", "4", "--suite", "ecp", "--mix", "1"])
            == 0
        )
        out = capsys.readouterr().out
        assert "PARTIES" in out

    def test_weights(self, capsys):
        assert main(["weights", "--duration", "3", "--units", "4", "--suite", "ecp"]) == 0
        out = capsys.readouterr().out
        assert "W_T" in out

    def test_overhead(self, capsys):
        assert main(["overhead", "--duration", "2", "--units", "4", "--suite", "ecp"]) == 0
        out = capsys.readouterr().out
        assert "decision time" in out
