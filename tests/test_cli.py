"""Tests for the command-line interface.

Every subcommand gets two smoke tests: ``--help`` must parse, and a
tiny-budget invocation must run to completion (exit code 0). This is
the cheap guard against a driver refactor breaking the CLI wiring.
"""

import pytest

from repro.cli import build_parser, main

#: Every registered subcommand.
COMMANDS = (
    "workloads",
    "quickstart",
    "compare",
    "weights",
    "sensitivity",
    "scalability",
    "overhead",
    "obs",
    "resilience",
    "cluster",
    "broker",
    "warmstart",
    "chaos",
    "qos",
    "serve",
    "loadgen",
    "report",
    "figure",
)

#: Server/client commands: no experiment to run, so no common options.
SERVE_COMMANDS = ("serve", "loadgen")

#: Tiny-budget invocation per subcommand (fast enough for tier-1).
TINY_INVOCATIONS = {
    "workloads": ["workloads"],
    "quickstart": ["quickstart", "--duration", "2", "--units", "4", "--suite", "ecp"],
    "compare": ["compare", "--duration", "2", "--units", "4", "--suite", "ecp", "--mix", "1"],
    "weights": ["weights", "--duration", "3", "--units", "4", "--suite", "ecp"],
    "sensitivity": ["sensitivity", "--duration", "2", "--units", "4", "--suite", "ecp"],
    "scalability": ["scalability", "--duration", "2", "--units", "4", "--degrees", "3"],
    "overhead": ["overhead", "--duration", "2", "--units", "4", "--suite", "ecp"],
    "obs": ["obs", "--duration", "2", "--units", "4", "--suite", "ecp"],
    "resilience": ["resilience", "--duration", "3", "--units", "4", "--suite", "ecp",
                   "--intensities", "0.5"],
    "cluster": ["cluster", "--nodes", "2", "--epochs", "2", "--duration", "1",
                "--units", "4", "--suite", "ecp",
                "--policies", "EqualPartition", "--placements", "round_robin"],
    "broker": ["broker", "--nodes", "2", "--epochs", "2", "--duration", "1",
               "--units", "4", "--suite", "ecp", "--policy", "EqualPartition",
               "--brokers", "static", "harvest"],
    "warmstart": ["warmstart", "--duration", "3", "--units", "4", "--suite", "ecp",
                  "--mixes", "2", "--nodes", "2", "--epochs", "4"],
    "chaos": ["chaos", "--nodes", "2", "--epochs", "4", "--duration", "1",
              "--units", "4", "--suite", "ecp", "--policy", "EqualPartition",
              "--crash-node", "0", "--crash-epoch", "1", "--outage", "2"],
    "qos": ["qos", "--nodes", "2", "--epochs", "2", "--duration", "1",
            "--units", "4", "--shapes", "flash_crowd",
            "--policies", "SATORI", "BoPF", "--trace-seeds", "0"],
    "serve": ["serve", "--port", "0", "--exit-after", "0.2"],
    "loadgen": ["loadgen", "--self-host", "--suite", "ecp", "--units", "4",
                "--policy", "EqualPartition", "--epochs", "3",
                "--epoch-s", "0.02", "--connections", "4"],
    "report": ["report", "--duration", "2", "--units", "4", "--suite", "ecp", "--mixes", "1"],
    "figure": ["figure", "--list"],
}


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_command_is_covered(self):
        # Keep COMMANDS/TINY_INVOCATIONS in sync with the parser: a new
        # subcommand must add its tiny invocation here.
        parser = build_parser()
        registered = set(parser._subparsers._group_actions[0].choices)
        assert registered == set(COMMANDS) == set(TINY_INVOCATIONS)

    @pytest.mark.parametrize("command", COMMANDS)
    def test_help_parses(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--help"])
        assert excinfo.value.code == 0
        assert "usage" in capsys.readouterr().out

    def test_known_commands_accept_common_options(self):
        parser = build_parser()
        for command in COMMANDS:
            if command in ("workloads", "figure") + SERVE_COMMANDS:
                continue
            args = parser.parse_args([command, "--duration", "2"])
            assert args.command == command

    def test_every_command_accepts_trace_dir(self):
        # --trace-dir is a common option: every experiment subcommand
        # except workloads must parse it (the PR 5 carry-over audit).
        # serve/loadgen are excluded: the server exports through
        # /metrics, not a one-shot trace dump.
        parser = build_parser()
        for command in COMMANDS:
            if command == "workloads" or command in SERVE_COMMANDS:
                continue
            args = parser.parse_args([command, "--trace-dir", "/tmp/t"])
            assert args.trace_dir == "/tmp/t"


class TestTinyInvocations:
    @pytest.mark.parametrize("command", COMMANDS)
    def test_runs_clean(self, command, capsys):
        assert main(TINY_INVOCATIONS[command]) == 0
        capsys.readouterr()  # drain

    def test_workloads_output(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "canneal" in out and "xsbench" in out

    def test_quickstart_output(self, capsys):
        assert main(TINY_INVOCATIONS["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "SATORI" in out and "Balanced Oracle" in out

    def test_compare_output(self, capsys):
        assert main(TINY_INVOCATIONS["compare"]) == 0
        assert "PARTIES" in capsys.readouterr().out

    def test_weights_output(self, capsys):
        assert main(TINY_INVOCATIONS["weights"]) == 0
        assert "W_T" in capsys.readouterr().out

    def test_overhead_output(self, capsys):
        assert main(TINY_INVOCATIONS["overhead"]) == 0
        assert "decision time" in capsys.readouterr().out

    def test_obs_output(self, capsys):
        assert main(TINY_INVOCATIONS["obs"]) == 0
        out = capsys.readouterr().out
        assert "decision-latency budget" in out
        assert "gp_fit" in out and "acquisition" in out and "actuation" in out
        assert "span coverage" in out

    def test_obs_json_round_trips_through_serialize(self, capsys):
        import json

        from repro.experiments.obs import ObsReport

        assert main(TINY_INVOCATIONS["obs"] + ["--json"]) == 0
        report = ObsReport.from_dict(json.loads(capsys.readouterr().out))
        assert report.budget.n_intervals > 0
        assert report.budget.span_coverage >= 0.9
        assert ObsReport.from_dict(report.to_dict()) == report

    def test_obs_trace_artifacts(self, capsys, tmp_path):
        import json

        from repro.obs.export import read_jsonl

        trace_dir = tmp_path / "trace"
        json_path = tmp_path / "report.json"
        assert main(TINY_INVOCATIONS["obs"]
                    + ["--trace-dir", str(trace_dir), "--json", str(json_path)]) == 0
        capsys.readouterr()  # drain
        events = read_jsonl(trace_dir / "trace.jsonl")
        assert any(e.name == "gp_fit" for e in events)
        chrome = json.loads((trace_dir / "trace.chrome.json").read_text())
        assert chrome["traceEvents"][0]["ph"] == "M"
        assert any(entry.get("ph") == "X" for entry in chrome["traceEvents"])
        assert "gp_chol" in (trace_dir / "metrics.prom").read_text()
        assert json.loads(json_path.read_text())["mix_label"]

    def test_cluster_output(self, capsys):
        assert main(TINY_INVOCATIONS["cluster"]) == 0
        out = capsys.readouterr().out
        assert "cluster-wide" in out
        assert "per-node [round_robin / EqualPartition]" in out
        assert "fairness" in out

    def test_warmstart_output(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "warmstart.json"
        assert main(TINY_INVOCATIONS["warmstart"] + ["--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "recovery gain" in out
        assert "warm-started node-epochs" in out
        report = json.loads(out_path.read_text())
        assert len(report["adaptation"]) == 2
        assert "job_speedup_delta" in report["cluster"]

    def test_cluster_warm_start_flag(self, capsys):
        assert main(TINY_INVOCATIONS["cluster"] + ["--warm-start"]) == 0
        capsys.readouterr()  # drain

    def test_chaos_output_and_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "chaos.json"
        assert main(
            TINY_INVOCATIONS["chaos"]
            + ["--json", str(out_path), "--assert-recovery"]
        ) == 0
        out = capsys.readouterr().out
        assert "chaos sweep" in out
        assert "no_recovery" in out
        assert "chaos assertions passed" in out
        report = json.loads(out_path.read_text())
        assert set(report["arms"]) == {"recovery", "no_recovery"}
        assert report["arms"]["recovery"]["jobs_lost"] == 0
        assert report["arms"]["recovery"]["pool_conserved"] is True

    def test_common_trace_dir_exports_artifacts(self, capsys, tmp_path):
        # A command *without* its own collector still exports trace
        # artifacts through the shared --trace-dir path in main().
        trace_dir = tmp_path / "trace"
        assert main(
            TINY_INVOCATIONS["quickstart"] + ["--trace-dir", str(trace_dir)]
        ) == 0
        capsys.readouterr()  # drain
        assert (trace_dir / "trace.jsonl").exists()
        assert (trace_dir / "trace.chrome.json").exists()
        assert (trace_dir / "metrics.prom").exists()

    def test_cluster_rejects_unknown_placement(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError, match="unknown placement"):
            main(["cluster", "--nodes", "2", "--epochs", "1", "--duration", "1",
                  "--units", "4", "--policies", "EqualPartition",
                  "--placements", "nope"])
