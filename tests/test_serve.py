"""Serve-layer tests: session lifecycle, control-plane server, CLI.

The load-bearing guarantee is **bit-identical resume**: a session
snapshotted at interval k and resumed in a fresh manager must produce,
from interval k+1 on, exactly the telemetry records the original
session produces when simply left running — the snapshot captures the
policy state, both server RNG streams, and the session loop's held
baseline with nothing approximated. Everything else here is surface:
the JSON-lines and REST dialects, the manager's bookkeeping, and the
``python -m repro serve`` / ``loadgen`` entry points.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import subprocess
import sys
import time

import pytest

from repro.errors import ExperimentError
from repro.serve import (
    ControlPlaneServer,
    LoadGenerator,
    SessionManager,
    SessionSpec,
)
from repro.workloads.arrivals import poisson_trace

#: Small, fast session recipe used throughout: 4-unit catalog, the
#: compact ECP suite, stateful SATORI controller (exercises policy
#: state in snapshots).
SPEC = SessionSpec(policy="SATORI", suite="ecp", mix=0, units=4, seed=7)


# -- SessionSpec ---------------------------------------------------------


class TestSessionSpec:
    def test_round_trips_through_json(self):
        spec = SessionSpec(policy="EqualPartition", suite="ecp", mix=2,
                           units=4, seed=11, baseline_reset_s=None,
                           policy_kwargs={"x": 1})
        decoded = SessionSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert decoded == spec

    def test_rejects_bad_interval(self):
        with pytest.raises(ExperimentError, match="interval_s"):
            SessionSpec(interval_s=0.0)

    def test_rejects_bad_baseline_reset(self):
        with pytest.raises(ExperimentError, match="baseline_reset_s"):
            SessionSpec(baseline_reset_s=-1.0)


# -- SessionManager lifecycle --------------------------------------------


class TestSessionLifecycle:
    def test_create_step_kill(self):
        manager = SessionManager()
        sid = manager.create(SPEC)
        assert sid in manager
        summary = manager.step(sid, 3)
        assert summary["steps"] == 3
        assert summary["time_s"] == pytest.approx(3 * SPEC.interval_s)
        manager.kill(sid)
        assert sid not in manager
        with pytest.raises(ExperimentError, match="unknown session"):
            manager.step(sid)

    def test_resume_is_bit_identical(self):
        """The tentpole guarantee: snapshot/resume loses nothing.

        Run a control session 10 intervals, snapshot, force the
        snapshot through a JSON round trip (what the wire does), then
        step original and resumed sessions 15 more intervals each —
        every telemetry record must match exactly, field for field.
        """
        manager = SessionManager()
        sid = manager.create(SPEC)
        manager.step(sid, 10)
        snapshot = json.loads(json.dumps(manager.snapshot(sid)))

        manager.step(sid, 15)
        original = manager._get(sid).session.telemetry.records

        fresh = SessionManager()
        rid = fresh.resume(snapshot)
        fresh.step(rid, 15)
        resumed = fresh._get(rid).session.telemetry.records

        assert len(original) == len(resumed) == 25
        for a, b in zip(original, resumed):
            assert a == b

    def test_resume_continues_step_count(self):
        manager = SessionManager()
        sid = manager.create(SPEC)
        manager.step(sid, 4)
        rid = manager.resume(manager.snapshot(sid))
        assert manager.info(rid).steps == 4
        assert manager.info(rid).time_s == pytest.approx(4 * SPEC.interval_s)

    def test_resume_rejects_newer_snapshot_version(self):
        manager = SessionManager()
        snapshot = manager.snapshot(manager.create(SPEC))
        snapshot["version"] = 999
        with pytest.raises(ExperimentError, match="newer"):
            manager.resume(snapshot)

    def test_create_rejects_bad_mix_index(self):
        with pytest.raises(ExperimentError, match="mix index"):
            SessionManager().create(SessionSpec(suite="ecp", mix=10_000, units=4))

    def test_session_ids_never_reused(self):
        manager = SessionManager()
        first = manager.create(SPEC)
        manager.kill(first)
        second = manager.create(SPEC)
        assert second != first

    def test_stats_counts_lifecycle(self):
        manager = SessionManager()
        sid = manager.create(SPEC)
        manager.step(sid, 2)
        manager.resume(manager.snapshot(sid))
        manager.kill(sid)
        stats = manager.stats()
        assert stats["sessions_created"] == 1
        assert stats["sessions_resumed"] == 1
        assert stats["sessions_killed"] == 1
        assert stats["sessions_live"] == 1
        assert stats["steps_total"] == 2
        assert stats["decision_latency_p99_ms"] > 0.0

    def test_list_sessions(self):
        manager = SessionManager()
        ids = {manager.create(SPEC) for _ in range(3)}
        listed = manager.list_sessions()
        assert {info.session_id for info in listed} == ids
        assert all(info.policy == "SATORI" for info in listed)


# -- per-session SLO scoring ----------------------------------------------


class TestSessionSLO:
    """Live sessions can carry a speedup-floor SLO: every stepped
    interval is scored, the metrics surface on ``/metrics``, and the
    spec (hence the scoring) survives snapshot/resume."""

    SLO_SPEC = SessionSpec(
        policy="BoPF", suite="parsec", mix=0, units=8, seed=7,
        slo_floor=0.6, qos_jobs=(0,),
    )

    def test_spec_validation_and_round_trip(self):
        decoded = SessionSpec.from_dict(
            json.loads(json.dumps(self.SLO_SPEC.to_dict()))
        )
        assert decoded == self.SLO_SPEC
        assert decoded.slo_active
        assert not SessionSpec(slo_floor=0.6).slo_active  # no qos jobs
        assert not SessionSpec(qos_jobs=(0,)).slo_active  # no floor
        with pytest.raises(ExperimentError, match="slo_floor"):
            SessionSpec(slo_floor=1.5)
        with pytest.raises(ExperimentError, match="qos_jobs"):
            SessionSpec(qos_jobs=(-1,))

    def test_qos_slot_beyond_mix_rejected(self):
        with pytest.raises(ExperimentError, match="qos_jobs"):
            SessionManager().create(
                SessionSpec(policy="BoPF", suite="parsec", mix=0, units=8,
                            slo_floor=0.6, qos_jobs=(99,))
            )

    def test_stepping_scores_intervals_and_emits_metrics(self):
        from repro.obs import TraceCollector, use_collector
        from repro.obs.export import prometheus_text

        collector = TraceCollector()
        with use_collector(collector):
            manager = SessionManager()
            sid = manager.create(self.SLO_SPEC)
            summary = manager.step(sid, 20)
        assert 0.0 <= summary["slo_attainment"] <= 1.0
        stats = manager.stats()
        assert stats["slo_intervals"] == 20
        assert stats["slo_misses"] <= 20
        assert stats["slo_attainment"] == pytest.approx(
            1.0 - stats["slo_misses"] / 20
        )
        text = prometheus_text(collector.metrics)
        assert "serve_slo_intervals" in text
        assert "serve_slo_worst_speedup" in text
        assert "serve_slo_attainment" in text

    def test_sessions_without_slo_do_not_score(self):
        manager = SessionManager()
        summary = manager.step(manager.create(SPEC), 3)
        assert "slo_attainment" not in summary
        assert manager.stats()["slo_attainment"] is None

    def test_slo_spec_survives_resume_bit_identically(self):
        manager = SessionManager()
        sid = manager.create(self.SLO_SPEC)
        manager.step(sid, 10)
        snapshot = json.loads(json.dumps(manager.snapshot(sid)))

        manager.step(sid, 10)
        original = manager._get(sid)

        fresh = SessionManager()
        rid = fresh.resume(snapshot)
        resumed = fresh._get(rid)
        assert resumed.spec == self.SLO_SPEC
        fresh.step(rid, 10)
        # Same per-interval telemetry => same SLO verdicts.
        assert resumed.session.telemetry.records[-1] == (
            original.session.telemetry.records[-1]
        )


# -- control-plane server -------------------------------------------------


async def _jsonl_client(host, port):
    return await asyncio.open_connection(host, port)


async def _request(reader, writer, payload):
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


async def _http(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read(1 << 22)
    writer.close()
    await writer.wait_closed()
    header, _, content = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    return status, content


class TestControlPlaneServer:
    @pytest.mark.asyncio
    async def test_jsonl_full_lifecycle(self):
        server = ControlPlaneServer()
        await server.start()
        try:
            reader, writer = await _jsonl_client(*server.address)
            ping = await _request(reader, writer, {"op": "ping"})
            assert ping["ok"] and ping["sessions_live"] == 0

            created = await _request(
                reader, writer, {"op": "create", "spec": SPEC.to_dict()}
            )
            sid = created["session"]
            stepped = await _request(
                reader, writer, {"op": "step", "session": sid, "n": 3}
            )
            assert stepped["ok"] and stepped["steps"] == 3

            snapshot = await _request(reader, writer, {"op": "snapshot", "session": sid})
            resumed = await _request(
                reader, writer, {"op": "resume", "snapshot": snapshot["snapshot"]}
            )
            assert resumed["ok"] and resumed["session"] != sid

            listing = await _request(reader, writer, {"op": "list"})
            assert len(listing["sessions"]) == 2

            killed = await _request(reader, writer, {"op": "kill", "session": sid})
            assert killed["ok"] and killed["killed"]

            stats = await _request(reader, writer, {"op": "stats"})
            assert stats["stats"]["sessions_live"] == 1
            writer.close()
            await writer.wait_closed()
        finally:
            await server.stop()

    @pytest.mark.asyncio
    async def test_jsonl_errors_keep_connection_alive(self):
        server = ControlPlaneServer()
        await server.start()
        try:
            reader, writer = await _jsonl_client(*server.address)
            bad_json = await _request(reader, writer, "not an object")
            assert not bad_json["ok"]
            unknown_op = await _request(reader, writer, {"op": "nope"})
            assert not unknown_op["ok"] and "unknown op" in unknown_op["error"]
            missing = await _request(reader, writer, {"op": "step", "session": "s9"})
            assert not missing["ok"] and "unknown session" in missing["error"]
            # The connection survived three errors:
            assert (await _request(reader, writer, {"op": "ping"}))["ok"]
            writer.close()
            await writer.wait_closed()
        finally:
            await server.stop()

    @pytest.mark.asyncio
    async def test_rest_surface(self):
        server = ControlPlaneServer()
        await server.start()
        host, port = server.address
        try:
            status, body = await _http(host, port, "GET", "/healthz")
            assert status == 200 and json.loads(body)["ok"]

            status, body = await _http(host, port, "POST", "/sessions", SPEC.to_dict())
            assert status == 200
            sid = json.loads(body)["session"]

            status, body = await _http(
                host, port, "POST", f"/sessions/{sid}/step", {"n": 2}
            )
            assert status == 200 and json.loads(body)["steps"] == 2

            status, body = await _http(host, port, "GET", f"/sessions/{sid}/snapshot")
            assert status == 200
            snapshot = json.loads(body)["snapshot"]

            status, body = await _http(
                host, port, "POST", "/sessions", {"snapshot": snapshot}
            )
            assert status == 200 and json.loads(body)["session"] != sid

            status, body = await _http(host, port, "GET", "/sessions")
            assert status == 200 and len(json.loads(body)["sessions"]) == 2

            status, body = await _http(host, port, "GET", "/metrics")
            assert status == 200
            text = body.decode()
            assert "serve_decision_seconds" in text
            assert "serve_sessions_created" in text

            status, _ = await _http(host, port, "DELETE", f"/sessions/{sid}")
            assert status == 200
            status, _ = await _http(host, port, "DELETE", f"/sessions/{sid}")
            assert status == 404
            status, _ = await _http(host, port, "GET", "/nope")
            assert status == 404
        finally:
            await server.stop()

    @pytest.mark.asyncio
    async def test_loadgen_against_live_server(self):
        server = ControlPlaneServer()
        await server.start()
        host, port = server.address
        try:
            trace = poisson_trace(
                n_epochs=4, arrival_rate=1.5, mean_residency=3.0,
                suites=("ecp",), seed=2, initial_jobs=2,
            )
            generator = LoadGenerator(
                host, port, trace,
                base_spec=SessionSpec(policy="EqualPartition", suite="ecp", units=4),
                epoch_s=0.02, steps_per_epoch=1, connections=4, mix_cycle=4,
            )
            report = await generator.run()
            assert report.errors == 0
            assert report.sessions_created >= 2
            assert report.steps_total > 0
            assert report.decision_latency_p99_ms > 0.0
        finally:
            await server.stop()


# -- CLI smoke ------------------------------------------------------------


class TestServeCli:
    def test_serve_and_loadgen_end_to_end(self, tmp_path):
        """``python -m repro serve`` hosts sessions; ``loadgen`` drives it."""
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=root,
        )
        try:
            line = server.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", line)
            assert match, f"no listen line in {line!r}"
            host, port = match.group(1), match.group(2)

            report_path = tmp_path / "load.json"
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "loadgen",
                    "--host", host, "--port", port,
                    "--suite", "ecp", "--units", "4",
                    "--policy", "EqualPartition",
                    "--epochs", "4", "--epoch-s", "0.02",
                    "--json", str(report_path),
                ],
                capture_output=True, text=True, env=env, cwd=root, timeout=120,
            )
            assert result.returncode == 0, result.stdout + result.stderr
            report = json.loads(report_path.read_text())
            assert report["errors"] == 0
            assert report["sessions_created"] > 0
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()
