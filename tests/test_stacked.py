"""Stacked-Cholesky primitives: bit-identity with the scalar GP path.

:mod:`repro.core.stacked` promises that batching B same-shape kernel
factorizations into one gufunc call never changes a result bit — the
stacked factors equal per-matrix ``np.linalg.cholesky`` calls exactly,
:class:`StackedGP` posteriors equal a loop of
:class:`~repro.core.gp.GaussianProcess` fits exactly, and the BO
length-scale grid search picks the identical winner. These tests pin
each of those pairings.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gp import _JITTER, _LENGTHSCALE_GRID, GaussianProcess, _cho_solve
from repro.core.kernels import Matern52, RBF
from repro.core.stacked import StackedGP, stacked_cholesky
from repro.errors import ModelError
from repro.obs import TraceCollector, use_collector

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def spd_stack(rng, b, n):
    """A stack of b random symmetric positive-definite (n, n) matrices."""
    a = rng.standard_normal((b, n, n))
    stack = a @ np.swapaxes(a, 1, 2)
    stack[:, np.arange(n), np.arange(n)] += n
    return stack


class TestStackedCholesky:
    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_matches_per_matrix_factorization(self, seed):
        rng = np.random.default_rng(seed)
        b = int(rng.integers(1, 8))
        n = int(rng.integers(1, 12))
        stack = spd_stack(rng, b, n)
        chols, ok = stacked_cholesky(stack)
        assert ok.all()
        for i in range(b):
            assert np.array_equal(chols[i], np.linalg.cholesky(stack[i]))

    def test_failed_entries_masked_not_fatal(self):
        rng = np.random.default_rng(0)
        stack = spd_stack(rng, 3, 4)
        stack[1] = -np.eye(4)  # not positive definite
        chols, ok = stacked_cholesky(stack)
        assert list(ok) == [True, False, True]
        assert np.array_equal(chols[1], np.zeros((4, 4)))
        for i in (0, 2):
            assert np.array_equal(chols[i], np.linalg.cholesky(stack[i]))

    def test_rejects_non_stack_shapes(self):
        with pytest.raises(ModelError):
            stacked_cholesky(np.eye(3))
        with pytest.raises(ModelError):
            stacked_cholesky(np.zeros((2, 3, 4)))

    def test_observes_batch_size(self):
        collector = TraceCollector()
        with use_collector(collector):
            stacked_cholesky(spd_stack(np.random.default_rng(1), 5, 3))
        hist = collector.metrics.histogram("gp.stacked_cholesky_batch")
        assert hist.count == 1
        assert hist.sum == 5.0


def random_tasks(rng, n_tasks, n, d):
    """Same-shape per-task training sets with distinct scales."""
    xs = [rng.uniform(0.0, 1.0, size=(n, d)) for _ in range(n_tasks)]
    ys = [rng.uniform(0.0, 10.0 * (t + 1), size=n) for t in range(n_tasks)]
    return xs, ys


class TestStackedGPPairing:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_posterior_matches_gp_loop(self, seed):
        """StackedGP row t == a GaussianProcess fit on task t, exactly."""
        rng = np.random.default_rng(seed)
        n_tasks = int(rng.integers(1, 6))
        n = int(rng.integers(2, 10))
        d = int(rng.integers(1, 4))
        xs, ys = random_tasks(rng, n_tasks, n, d)
        query = rng.uniform(0.0, 1.0, size=(7, d))

        stacked = StackedGP().fit(xs, ys)
        mean, std = stacked.predict(query)
        assert mean.shape == std.shape == (n_tasks, 7)
        for t in range(n_tasks):
            gp = GaussianProcess().fit(xs[t], ys[t])
            mean_t, std_t = gp.predict(query)
            assert np.array_equal(mean[t], mean_t)
            assert np.array_equal(std[t], std_t)

    def test_kernel_choice_respected(self):
        rng = np.random.default_rng(3)
        xs, ys = random_tasks(rng, 2, 6, 2)
        query = rng.uniform(0.0, 1.0, size=(4, 2))
        kernel = RBF(lengthscale=0.7)
        mean, _ = StackedGP(kernel=kernel).fit(xs, ys).predict(query)
        gp_mean, _ = GaussianProcess(kernel=kernel).fit(xs[0], ys[0]).predict(query)
        assert np.array_equal(mean[0], gp_mean)

    def test_shape_validation(self):
        rng = np.random.default_rng(4)
        xs, ys = random_tasks(rng, 2, 5, 2)
        with pytest.raises(ModelError):
            StackedGP().fit([], [])
        with pytest.raises(ModelError):
            StackedGP().fit([xs[0], xs[1][:3]], ys)
        with pytest.raises(ModelError):
            StackedGP().fit(xs, [ys[0], ys[1][:3]])
        with pytest.raises(ModelError):
            StackedGP(noise=-1.0)

    def test_indefinite_task_reported_by_index(self, monkeypatch):
        """A non-PD task fails loudly, naming the offending task."""
        import repro.core.stacked as stacked_module

        def failing(stack):
            return np.zeros_like(stack), np.array([False, True])

        monkeypatch.setattr(stacked_module, "stacked_cholesky", failing)
        rng = np.random.default_rng(5)
        xs, ys = random_tasks(rng, 2, 4, 2)
        with pytest.raises(ModelError, match=r"tasks \[0\]"):
            StackedGP(kernel=Matern52()).fit(xs, ys)


class TestLengthscaleGridPairing:
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_stacked_grid_search_matches_manual_loop(self, seed):
        """The stacked _best_kernel equals a literal per-kernel search."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 12))
        x = rng.uniform(0.0, 1.0, size=(n, 2))
        y = rng.uniform(0.0, 5.0, size=n)

        gp = GaussianProcess()
        z = (y - np.mean(y)) / max(np.std(y), 1e-12)
        best_kernel, best_chol = gp._best_kernel(x, z)

        manual_best = None
        manual_evidence = -np.inf
        manual_chol = None
        for ls in _LENGTHSCALE_GRID:
            kernel = gp.kernel.with_params(lengthscale=ls)
            k = kernel(x, x)
            k[np.diag_indices_from(k)] += gp.noise + _JITTER
            try:
                chol = np.linalg.cholesky(k)
            except np.linalg.LinAlgError:
                continue
            alpha = _cho_solve(chol, z)
            evidence = (
                -0.5 * z @ alpha
                - np.sum(np.log(np.diag(chol)))
                - 0.5 * n * np.log(2.0 * np.pi)
            )
            if evidence > manual_evidence:
                manual_evidence = evidence
                manual_best = kernel
                manual_chol = chol
        assert best_kernel.lengthscale == manual_best.lengthscale
        assert np.array_equal(best_chol, manual_chol)

    def test_fit_with_optimization_unchanged_end_to_end(self):
        """fit(optimize_lengthscale=True) predictions match a manual fit
        with the manually-selected winning kernel."""
        rng = np.random.default_rng(9)
        x = rng.uniform(0.0, 1.0, size=(8, 2))
        y = rng.uniform(0.0, 5.0, size=8)
        query = rng.uniform(0.0, 1.0, size=(5, 2))

        gp = GaussianProcess().fit(x, y, optimize_lengthscale=True)
        mean, std = gp.predict(query)
        manual = GaussianProcess(kernel=gp.kernel).fit(x, y)
        manual_mean, manual_std = manual.predict(query)
        assert np.array_equal(mean, manual_mean)
        assert np.array_equal(std, manual_std)
