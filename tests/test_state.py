"""Tests for the policy snapshot/restore protocol and warm-start layers.

The protocol's load-bearing guarantee (DESIGN.md "Policy state and
warm-start"): restoring a snapshot and continuing must be
*bit-identical* to never tearing the controller down. Everything else —
the spec digest separation, the cache behaviour, the cluster membership
rule — exists so that guarantee survives the trip through the engine.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, MigrationConfig
from repro.engine import ExecutionEngine, RunCache, RunSpec, execute_run
from repro.errors import ClusterError, PolicyError
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.policies.random_search import RandomSearchPolicy
from repro.policies.registry import make_policy
from repro.resources.space import ConfigurationSpace
from repro.state import PolicyState
from repro.workloads.arrivals import ArrivalTrace, JobArrival, poisson_trace
from repro.workloads.mixes import suite_mixes
from repro.workloads.registry import default_registry

from repro.core.controller import SatoriController
from repro.system.simulation import CoLocationSimulator

FAST = RunConfig(duration_s=2.0, interval_s=0.1, baseline_reset_s=1.0)


@pytest.fixture(scope="module")
def catalog():
    return experiment_catalog(units=6)


@pytest.fixture(scope="module")
def mix(catalog):
    return suite_mixes("parsec", mix_size=3)[0]


@pytest.fixture
def space(catalog, mix):
    return ConfigurationSpace(catalog, len(mix))


def json_round(state: PolicyState) -> PolicyState:
    """Force a snapshot through an actual JSON encode/decode cycle."""
    return PolicyState.from_dict(json.loads(json.dumps(state.to_dict())))


def drive(policy, simulator, n_steps, observation=None):
    """Run the control loop manually, recording every decision."""
    configs = []
    for _ in range(n_steps):
        config = policy.decide(observation)
        configs.append(config)
        observation = simulator.step(config)
    return configs, observation


# -- bit-identical resume ------------------------------------------------


class TestBitIdenticalResume:
    """ISSUE acceptance: snapshot at step k, restore, continue — every
    subsequent decision, diagnostic, and the final snapshot must equal
    an uninterrupted run's."""

    @pytest.mark.parametrize("split", [5, 25])
    def test_satori_continue_equals_restore(self, catalog, mix, space, split):
        total = split + 35

        reference = SatoriController(space, rng=42)
        sim_a = CoLocationSimulator(mix, catalog=catalog, seed=7)
        sim_b = CoLocationSimulator(mix, catalog=catalog, seed=7)

        configs_a, obs_a = drive(reference, sim_a, split)
        snapshot = json_round(reference.snapshot())

        # Deliberately different seed: every construction-time RNG draw
        # must come from the snapshot, not the constructor.
        restored = SatoriController(space, rng=999)
        restored.restore(snapshot)

        # Bring the fresh simulator to the snapshot point by replaying
        # the recorded decisions (the environment is not snapshotted).
        obs_b = None
        for config in configs_a:
            obs_b = sim_b.step(config)

        more_a, _ = drive(reference, sim_a, total - split, obs_a)
        more_b, _ = drive(restored, sim_b, total - split, obs_b)
        assert more_b == more_a
        assert restored.diagnostics() == reference.diagnostics()
        assert restored.snapshot() == reference.snapshot()

    def test_random_search_continue_equals_restore(self, space):
        reference = RandomSearchPolicy(space, rng=3)
        for _ in range(10):
            reference.decide(None)
        snapshot = json_round(reference.snapshot())

        restored = RandomSearchPolicy(space, rng=555)
        restored.restore(snapshot)

        continued = [reference.decide(None) for _ in range(20)]
        replayed = [restored.decide(None) for _ in range(20)]
        assert replayed == continued
        assert restored.snapshot() == reference.snapshot()

    def test_snapshot_is_json_stable(self, catalog, mix, space):
        controller = SatoriController(space, rng=0)
        drive(controller, CoLocationSimulator(mix, catalog=catalog, seed=1), 15)
        state = controller.snapshot()
        assert json_round(state) == state


# -- protocol semantics --------------------------------------------------


class TestProtocol:
    def test_restore_none_is_a_no_op(self, space):
        controller = SatoriController(space, rng=0)
        controller.restore(None)
        assert controller.decide(None) == space.equal_partition()

    def test_warm_session_start_does_not_redrain_initial_set(self, catalog, mix, space):
        reference = SatoriController(space, rng=0)
        drive(reference, CoLocationSimulator(mix, catalog=catalog, seed=1), 40)
        state = reference.snapshot()
        payload = state.payload_dict()
        assert payload["initial_cursor"] == len(payload["initial_set"])

        restored = SatoriController(space, rng=77)
        restored.restore(state)
        first = restored.decide(None)
        after = restored.snapshot().payload_dict()
        # The probe cursor stayed drained: a warm controller resumes
        # from learned ground instead of reopening the initial set.
        assert after["initial_cursor"] == len(after["initial_set"])
        if payload["idle"] and payload["idle_config"] is not None:
            assert first.to_dict() == payload["idle_config"]
            # ... and the idle latch survives: the idle-exit tolerance
            # decides whether the new epoch warrants re-exploration.
            assert after["idle"]
        else:
            values = reference.records.objective_values(reference.weights.pair)
            best = reference.records.samples[int(np.nanargmax(values))].config
            assert first == best

    def test_stateless_policy_snapshot_is_none(self, catalog, mix):
        policy = make_policy("EqualPartition", mix, catalog)
        assert policy.snapshot() is None
        policy.restore(None)  # no-op

    def test_stateless_policy_rejects_actual_state(self, catalog, mix):
        policy = make_policy("EqualPartition", mix, catalog)
        with pytest.raises(PolicyError, match="stateless"):
            policy.restore(PolicyState(policy="SATORI", payload={}))

    def test_kind_mismatch_rejected(self, space):
        controller = SatoriController(space, rng=0)
        with pytest.raises(PolicyError, match="SATORI"):
            controller.restore(PolicyState(policy="Random", payload={}))

    def test_mode_mismatch_rejected(self, catalog, mix, space):
        donor = SatoriController(space, rng=0, mode="throughput")
        drive(donor, CoLocationSimulator(mix, catalog=catalog, seed=1), 5)
        receiver = SatoriController(space, rng=0, mode="fairness")
        with pytest.raises(PolicyError, match="mode"):
            receiver.restore(donor.snapshot())

    def test_future_version_rejected(self, space):
        controller = SatoriController(space, rng=0)
        state = PolicyState(policy="SATORI", payload={}, version=99)
        with pytest.raises(PolicyError, match="newer"):
            controller.restore(state)

    def test_make_policy_restores_initial_state(self, catalog, mix, space):
        donor = SatoriController(space, rng=42)
        drive(donor, CoLocationSimulator(mix, catalog=catalog, seed=7), 10)
        state = donor.snapshot()
        warm = make_policy("SATORI", mix, catalog, rng=0, initial_state=state)
        assert warm.snapshot() == state


# -- spec and cache separation -------------------------------------------


def _spec(mix, catalog, **overrides):
    fields = dict(mix=mix, policy="SATORI", catalog=catalog, run_config=FAST, seed=3)
    fields.update(overrides)
    return RunSpec(**fields)


class TestSpecIdentity:
    @pytest.fixture(scope="class")
    def snapshot(self, catalog, mix):
        result = execute_run(_spec(mix, catalog))
        assert result.final_state is not None
        return result.final_state

    def test_warm_and_cold_digests_differ(self, catalog, mix, snapshot):
        cold = _spec(mix, catalog)
        warm = _spec(mix, catalog, initial_state=snapshot)
        assert warm.digest != cold.digest
        # ... but the simulated environment is the same, so the paired
        # noise stream (derived from the cold digest) matches — and for
        # a cold spec the cold digest IS the digest, preserving every
        # pre-warm-start noise stream.
        assert warm.environment_digest == cold.environment_digest
        assert warm.cold_digest == cold.digest
        assert cold.cold_digest == cold.digest

    def test_cold_spec_dict_omits_initial_state(self, catalog, mix, snapshot):
        # Backward compatibility: cold specs must keep their pre-warm-start
        # digests, so the key only appears when a snapshot is present.
        assert "initial_state" not in _spec(mix, catalog).to_dict()
        assert "initial_state" in _spec(mix, catalog, initial_state=snapshot).to_dict()

    def test_mapping_coerces_to_policy_state(self, catalog, mix, snapshot):
        via_dict = _spec(mix, catalog, initial_state=snapshot.to_dict())
        via_state = _spec(mix, catalog, initial_state=snapshot)
        assert via_dict == via_state
        assert via_dict.digest == via_state.digest

    def test_warm_spec_is_hashable_and_json_round_trips(self, catalog, mix, snapshot):
        warm = _spec(mix, catalog, initial_state=snapshot)
        hash(warm)
        data = json.loads(json.dumps(warm.to_dict()))
        assert data["initial_state"]["policy"] == "SATORI"

    def test_cache_never_serves_cold_for_warm(self, catalog, mix, snapshot, tmp_path):
        cache = RunCache(tmp_path)
        cold = _spec(mix, catalog)
        cache.put(cold, execute_run(cold))
        assert cache.get(cold) is not None
        assert cache.get(_spec(mix, catalog, initial_state=snapshot)) is None

    def test_warm_run_carries_state_forward(self, catalog, mix, snapshot):
        warm = execute_run(_spec(mix, catalog, initial_state=snapshot))
        assert warm.final_state is not None
        assert warm.final_state.policy == "SATORI"
        assert warm.final_state != snapshot  # it kept learning

    def test_stateless_policy_yields_no_final_state(self, catalog, mix):
        result = execute_run(_spec(mix, catalog, policy="EqualPartition"))
        assert result.final_state is None


# -- cluster warm start --------------------------------------------------


def quiet_trace(n_epochs=3, n_jobs=4):
    """No arrivals, no departures: every epoch keeps the same jobs."""
    return poisson_trace(
        n_epochs=n_epochs,
        arrival_rate=0.0,
        mean_residency=10_000.0,
        suites=("ecp",),
        seed=5,
        initial_jobs=n_jobs,
    )


class TestClusterWarmStart:
    def run_cluster(self, **kwargs):
        defaults = dict(
            trace=quiet_trace(),
            n_nodes=2,
            placement="round_robin",
            policy="SATORI",
            catalog=experiment_catalog(4),
            epoch_config=RunConfig(duration_s=1.0, baseline_reset_s=0.5),
            seed=1,
        )
        defaults.update(kwargs)
        return ClusterSimulator(**defaults).run()

    def test_stable_membership_warm_starts_after_first_epoch(self):
        result = self.run_cluster(warm_start=True)
        for record in result.records:
            if record.synthesized:
                continue
            assert record.warm_started == (record.epoch > 0)

    def test_cold_runs_never_warm_start(self):
        result = self.run_cluster(warm_start=False)
        assert not any(r.warm_started for r in result.records)

    def test_membership_change_forces_cold_start(self):
        registry = default_registry()
        # Node 0 (round robin) gets jobs 0 and 2; job 2 departs at epoch
        # 1, so node 0 must restart cold while node 1 (jobs 1, 3) warms.
        names = ["amg", "hypre", "minife", "swfft"]
        jobs = tuple(
            JobArrival(i, registry.get(name), 0,
                       departure_epoch=1 if i == 2 else None)
            for i, name in enumerate(names)
        )
        trace = ArrivalTrace(n_epochs=2, jobs=jobs)
        result = self.run_cluster(trace=trace, warm_start=True)
        by_coord = {(r.epoch, r.node_id): r for r in result.records}
        assert not by_coord[(1, 0)].warm_started
        simulated = not by_coord[(1, 1)].synthesized
        assert by_coord[(1, 1)].warm_started == simulated

    def test_warm_start_changes_later_epochs_only(self):
        cold = self.run_cluster(warm_start=False)
        warm = self.run_cluster(warm_start=True)
        cold_first = [r for r in cold.records if r.epoch == 0]
        warm_first = [r for r in warm.records if r.epoch == 0]
        assert cold_first == warm_first  # epoch 0 is cold either way


class TestMigrationPenalty:
    def migrating_cluster(self, penalty):
        registry = default_registry()
        jobs = (
            JobArrival(0, registry.get("canneal"), 0),
            JobArrival(1, registry.get("vips"), 0),
            JobArrival(2, registry.get("streamcluster"), 0),
        )
        trace = ArrivalTrace(n_epochs=3, jobs=jobs)
        return ClusterSimulator(
            trace,
            n_nodes=2,
            placement="round_robin",
            policy="EqualPartition",
            catalog=experiment_catalog(4),
            epoch_config=RunConfig(duration_s=1.0, baseline_reset_s=0.5),
            seed=1,
            migration=MigrationConfig(
                fairness_threshold=1.0, patience=1,
                warmup_penalty_intervals=penalty,
            ),
        ).run()

    def test_negative_penalty_rejected(self):
        with pytest.raises(ClusterError):
            MigrationConfig(warmup_penalty_intervals=-1)

    def test_default_penalty_is_free_migration(self):
        assert MigrationConfig().warmup_penalty_intervals == 0

    def test_penalty_costs_migrated_jobs(self):
        free = self.migrating_cluster(penalty=0)
        taxed = self.migrating_cluster(penalty=5)
        assert free.migrations == taxed.migrations >= 1
        assert taxed.mean_speedup < free.mean_speedup
