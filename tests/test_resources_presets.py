"""Tests for server presets and the reproduction report."""

import pytest

from repro.errors import ExperimentError, SpaceError
from repro.resources.presets import preset_catalog, preset_names
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH


class TestPresets:
    def test_names_nonempty_sorted(self):
        names = preset_names()
        assert names
        assert list(names) == sorted(names)

    @pytest.mark.parametrize("name", preset_names())
    def test_every_preset_builds_valid_catalog(self, name):
        catalog = preset_catalog(name)
        assert {CORES, LLC_WAYS, MEMORY_BANDWIDTH} <= set(catalog.names)
        for resource in catalog:
            assert resource.units >= 2
            assert resource.capacity > 0

    def test_paper_testbed_preset(self):
        catalog = preset_catalog("skylake-sp-10")
        assert catalog.get(CORES).units == 10
        assert catalog.get(LLC_WAYS).capacity == pytest.approx(13.75 * 2**20)

    def test_unknown_preset(self):
        with pytest.raises(SpaceError, match="unknown server preset"):
            preset_catalog("epyc-9999")

    def test_presets_usable_in_simulation(self, parsec_mix3):
        from repro.system.simulation import CoLocationSimulator

        sim = CoLocationSimulator(parsec_mix3, preset_catalog("milan-ccx-8"), seed=0)
        obs = sim.step(sim.equal_partition())
        assert all(v > 0 for v in obs.ips)


class TestReport:
    def test_generate_small_report(self):
        from repro.experiments.report import ReportConfig, generate_report

        report = generate_report(
            ReportConfig(suite="ecp", n_mixes=1, duration_s=4.0, units=4)
        )
        assert "# SATORI reproduction report" in report
        assert "Policy comparison" in report
        assert "SATORI" in report
        assert "Controller overhead" in report

    def test_sections_configurable(self):
        from repro.experiments.report import ReportConfig, generate_report

        report = generate_report(
            ReportConfig(
                suite="ecp", n_mixes=1, duration_s=3.0, units=4, sections=("overhead",)
            )
        )
        assert "Controller overhead" in report
        assert "Policy comparison" not in report

    def test_unknown_section_rejected(self):
        from repro.experiments.report import ReportConfig

        with pytest.raises(ExperimentError):
            ReportConfig(sections=("bogus",))

    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert (
            main(
                [
                    "report",
                    "--suite",
                    "ecp",
                    "--mixes",
                    "1",
                    "--duration",
                    "3",
                    "--units",
                    "4",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert out.read_text().startswith("# SATORI reproduction report")
