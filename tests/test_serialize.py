"""Round-trip property tests for the shared serialization helpers.

Every value type that rides through the engine's worker pipe or the
on-disk run cache must survive ``to_dict`` → ``json`` → ``from_dict``
losslessly; these tests pin that with hypothesis-generated instances
rather than a handful of hand-picked examples.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.budget import BudgetTransfer, ResourceBudget
from repro.errors import ExperimentError
from repro.experiments.runner import RunConfig, RunResult, run_policy
from repro.faults.plan import FaultPlan
from repro.policies.registry import make_policy
from repro.resources.allocation import Configuration
from repro.serialize import (
    MAP_MARKER,
    FieldCodec,
    dataclass_from_dict,
    dataclass_to_dict,
    freeze_data,
    mapping_to_dict,
    object_codec,
    optional,
    thaw_data,
)
from repro.state import (
    BOState,
    GoalRecordsState,
    GPState,
    PolicyState,
    WeightSchedulerState,
)

# -- strategies ------------------------------------------------------------

run_configs = st.builds(
    RunConfig,
    duration_s=st.floats(min_value=1.0, max_value=60.0, allow_nan=False),
    interval_s=st.sampled_from([0.05, 0.1, 0.2]),
    baseline_reset_s=st.floats(min_value=0.5, max_value=30.0, allow_nan=False),
    noise_sigma=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
    phase_offset_s=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    warmup_fraction=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    actuation_retries=st.integers(min_value=0, max_value=5),
)

rates = st.floats(min_value=0.0, max_value=0.99, allow_nan=False)
durations = st.floats(min_value=0.05, max_value=10.0, allow_nan=False)

fault_plans = st.builds(
    FaultPlan,
    start_s=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    end_s=st.one_of(st.none(), st.floats(min_value=6.0, max_value=60.0, allow_nan=False)),
    actuation_fail_rate=rates,
    actuation_fail_attempts=st.integers(min_value=1, max_value=4),
    actuation_outage_rate=rates,
    actuation_outage_duration_s=durations,
    sample_drop_rate=rates,
    sample_nan_rate=rates,
    sample_stuck_rate=rates,
    sample_stuck_duration_s=durations,
    sample_outlier_rate=rates,
    sample_outlier_scale=st.floats(min_value=1.5, max_value=32.0, allow_nan=False),
    crash_rate=rates,
    crash_restart_s=durations,
    hang_rate=rates,
    hang_duration_s=durations,
)


@st.composite
def configurations(draw):
    n_jobs = draw(st.integers(min_value=1, max_value=5))
    n_resources = draw(st.integers(min_value=1, max_value=3))
    names = [f"resource{i}" for i in range(n_resources)]
    units = st.lists(
        st.integers(min_value=0, max_value=8), min_size=n_jobs, max_size=n_jobs
    )
    return Configuration({name: draw(units) for name in names})


safe_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
names = st.text(alphabet="abcdefghij", min_size=1, max_size=8)

#: Arbitrary JSON-native data (string keys only — freeze_data stringifies
#: mapping keys, so non-string keys would not round-trip by design).
json_payloads = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(-1000, 1000), safe_floats, names),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(names, children, max_size=3),
    ),
    max_leaves=12,
)

rng_states = st.fixed_dictionaries(
    {
        "bit_generator": st.just("PCG64"),
        "state": st.fixed_dictionaries(
            {
                "state": st.integers(min_value=0, max_value=2**128),
                "inc": st.integers(min_value=0, max_value=2**128),
            }
        ),
        "has_uint32": st.integers(min_value=0, max_value=1),
        "uinteger": st.integers(min_value=0, max_value=2**32 - 1),
    }
)


@st.composite
def gp_states(draw):
    n = draw(st.integers(min_value=0, max_value=4))
    d = draw(st.integers(min_value=1, max_value=3))

    def matrix(rows, cols):
        return tuple(
            tuple(draw(safe_floats) for _ in range(cols)) for _ in range(rows)
        )

    return GPState(
        kernel=draw(st.sampled_from(["matern52", "rbf"])),
        lengthscale=draw(st.floats(min_value=0.01, max_value=10.0)),
        variance=draw(st.floats(min_value=0.01, max_value=10.0)),
        noise=draw(st.floats(min_value=1e-6, max_value=1.0)),
        y_mean=draw(safe_floats),
        y_std=draw(st.floats(min_value=1e-3, max_value=10.0)),
        fits_since_search=draw(st.none() | st.integers(min_value=0, max_value=50)),
        x=matrix(n, d) if n else None,
        chol=matrix(n, n) if n else None,
        alpha=tuple(draw(safe_floats) for _ in range(n)) if n else None,
    )


probe_configs = st.lists(
    st.dictionaries(
        names,
        st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=4),
        min_size=1,
        max_size=2,
    ),
    max_size=3,
)

bo_states = st.builds(
    BOState,
    gp=gp_states(),
    rng=rng_states,
    iteration=st.integers(min_value=0, max_value=500),
    probes=probe_configs,
    last_probe_means=st.none() | st.lists(safe_floats, max_size=3).map(tuple),
)

goal_records_states = st.builds(
    GoalRecordsState,
    goal_names=st.lists(names, min_size=1, max_size=3, unique=True).map(tuple),
    max_samples=st.integers(min_value=1, max_value=100),
    samples=st.lists(
        st.fixed_dictionaries(
            {
                "config": st.dictionaries(
                    names,
                    st.lists(st.integers(min_value=0, max_value=8), max_size=3),
                    max_size=2,
                ),
                "encoded": st.lists(safe_floats, max_size=3),
                "scores": st.lists(safe_floats, max_size=3),
            }
        ),
        max_size=3,
    ),
)

weight_scheduler_states = st.builds(
    WeightSchedulerState,
    step_in_te=st.integers(min_value=0, max_value=200),
    sum_w_t=safe_floats,
    sum_w_f=safe_floats,
    w_tp=st.floats(min_value=0.0, max_value=1.0),
    w_fp=st.floats(min_value=0.0, max_value=1.0),
    period_scores=st.lists(
        st.tuples(safe_floats, safe_floats), max_size=4
    ).map(tuple),
)

policy_states = st.builds(
    PolicyState,
    policy=names,
    payload=st.dictionaries(names, json_payloads, max_size=4),
)

resource_budgets = st.dictionaries(
    names, st.integers(min_value=1, max_value=64), min_size=1, max_size=4
).map(ResourceBudget)

budget_transfers = st.builds(
    BudgetTransfer,
    epoch=st.integers(min_value=0, max_value=1000),
    resource=names,
    units=st.integers(min_value=1, max_value=64),
    source=st.integers(min_value=0, max_value=15),
    target=st.integers(min_value=16, max_value=31),
)


def json_round(data):
    """Force the dict through an actual JSON encode/decode cycle."""
    return json.loads(json.dumps(data))


# -- round trips -----------------------------------------------------------


class TestRoundTrips:
    @given(run_configs)
    @settings(max_examples=50, deadline=None)
    def test_run_config(self, config):
        assert RunConfig.from_dict(json_round(config.to_dict())) == config

    @given(fault_plans)
    @settings(max_examples=50, deadline=None)
    def test_fault_plan(self, plan):
        assert FaultPlan.from_dict(json_round(plan.to_dict())) == plan

    @given(configurations())
    @settings(max_examples=50, deadline=None)
    def test_configuration(self, config):
        assert Configuration.from_dict(json_round(config.to_dict())) == config

    @given(resource_budgets)
    @settings(max_examples=50, deadline=None)
    def test_resource_budget(self, budget):
        assert ResourceBudget.from_dict(json_round(budget.to_dict())) == budget

    @given(budget_transfers)
    @settings(max_examples=50, deadline=None)
    def test_budget_transfer(self, transfer):
        assert BudgetTransfer.from_dict(json_round(transfer.to_dict())) == transfer

    def test_run_result(self, catalog6, parsec_mix3, goals):
        policy = make_policy("EqualPartition", parsec_mix3, catalog6, goals=goals)
        result = run_policy(
            policy,
            parsec_mix3,
            catalog=catalog6,
            run_config=RunConfig(duration_s=1.0),
            goals=goals,
            seed=7,
        )
        rebuilt = RunResult.from_dict(json_round(result.to_dict()))
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.policy_name == result.policy_name
        assert rebuilt.throughput == pytest.approx(result.throughput)
        assert rebuilt.fairness == pytest.approx(result.fairness)


# -- policy-state round trips ----------------------------------------------


class TestPolicyStateRoundTrips:
    """Every snapshot dataclass must survive JSON losslessly.

    These types carry controller state across process boundaries (the
    engine worker pipe), into the on-disk run cache, and back into live
    controllers — a lossy field would silently break bit-identical
    warm starts.
    """

    @given(gp_states())
    @settings(max_examples=50, deadline=None)
    def test_gp_state(self, state):
        assert GPState.from_dict(json_round(state.to_dict())) == state

    @given(bo_states)
    @settings(max_examples=50, deadline=None)
    def test_bo_state(self, state):
        assert BOState.from_dict(json_round(state.to_dict())) == state

    @given(goal_records_states)
    @settings(max_examples=50, deadline=None)
    def test_goal_records_state(self, state):
        assert GoalRecordsState.from_dict(json_round(state.to_dict())) == state

    @given(weight_scheduler_states)
    @settings(max_examples=50, deadline=None)
    def test_weight_scheduler_state(self, state):
        assert WeightSchedulerState.from_dict(json_round(state.to_dict())) == state

    @given(policy_states)
    @settings(max_examples=50, deadline=None)
    def test_policy_state(self, state):
        rebuilt = PolicyState.from_dict(json_round(state.to_dict()))
        assert rebuilt == state
        assert rebuilt.payload_dict() == state.payload_dict()

    def test_version_gate_rejects_future_snapshots(self):
        state = PolicyState(policy="SATORI", payload={}, version=99)
        with pytest.raises(Exception, match="newer than this code"):
            PolicyState.from_dict(state.to_dict())


# -- freeze / thaw ---------------------------------------------------------


class TestFreezeThaw:
    @given(json_payloads)
    @settings(max_examples=100, deadline=None)
    def test_thaw_inverts_freeze(self, data):
        assert thaw_data(freeze_data(data)) == data

    @given(json_payloads)
    @settings(max_examples=100, deadline=None)
    def test_freeze_is_idempotent(self, data):
        frozen = freeze_data(data)
        assert freeze_data(frozen) == frozen

    @given(json_payloads)
    @settings(max_examples=100, deadline=None)
    def test_frozen_data_is_hashable(self, data):
        hash(freeze_data(data))

    def test_reserved_marker_rejected_in_sequences(self):
        with pytest.raises(ExperimentError, match="reserved"):
            freeze_data([MAP_MARKER, 1, 2])

    def test_non_json_values_rejected(self):
        with pytest.raises(ExperimentError, match="JSON-compatible"):
            freeze_data(object())

    def test_mapping_keys_sorted_canonically(self):
        assert freeze_data({"b": 1, "a": 2}) == freeze_data({"a": 2, "b": 1})


# -- mode semantics --------------------------------------------------------


class TestModes:
    def test_fault_plan_rejects_unknown_fields(self):
        with pytest.raises(ExperimentError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"crash_rate": 0.1, "meltdown_rate": 0.5})

    def test_run_config_ignores_unknown_fields(self):
        config = RunConfig.from_dict({"duration_s": 3.0, "future_knob": 1})
        assert config.duration_s == 3.0

    def test_lenient_missing_fields_use_defaults(self):
        assert RunConfig.from_dict({}) == RunConfig()

    def test_strict_accepts_exact_fields(self):
        plan = FaultPlan(crash_rate=0.2)
        assert FaultPlan.from_dict(plan.to_dict()) == plan


# -- helper primitives -----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _Point:
    x: int = 0
    y: int = 0

    def to_dict(self):
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data):
        return dataclass_from_dict(cls, data)


@dataclasses.dataclass(frozen=True)
class _Nested:
    label: str
    point: _Point
    maybe: _Point = None


class TestHelpers:
    def test_object_codec_round_trip(self):
        codecs = {"point": object_codec(_Point), "maybe": optional(object_codec(_Point))}
        nested = _Nested(label="a", point=_Point(1, 2), maybe=None)
        data = json_round(dataclass_to_dict(nested, codecs=codecs))
        assert dataclass_from_dict(_Nested, data, codecs=codecs) == nested

    def test_optional_codec_encodes_value(self):
        codecs = {"point": object_codec(_Point), "maybe": optional(object_codec(_Point))}
        nested = _Nested(label="b", point=_Point(0, 0), maybe=_Point(3, 4))
        data = dataclass_to_dict(nested, codecs=codecs)
        assert data["maybe"] == {"x": 3, "y": 4}
        assert dataclass_from_dict(_Nested, data, codecs=codecs) == nested

    def test_strict_error_names_class_and_fields(self):
        with pytest.raises(ExperimentError, match=r"unknown _Point fields \['z'\]"):
            dataclass_from_dict(_Point, {"x": 1, "z": 9}, strict=True)

    def test_mapping_to_dict_listifies(self):
        out = mapping_to_dict({"cores": (1, 2), "llc": (3, 4)})
        assert out == {"cores": [1, 2], "llc": [3, 4]}
        assert all(isinstance(v, list) for v in out.values())

    def test_field_codec_applies_both_directions(self):
        codec = FieldCodec(encode=str, decode=int)
        assert codec.encode(5) == "5"
        assert codec.decode("5") == 5
