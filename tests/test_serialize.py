"""Round-trip property tests for the shared serialization helpers.

Every value type that rides through the engine's worker pipe or the
on-disk run cache must survive ``to_dict`` → ``json`` → ``from_dict``
losslessly; these tests pin that with hypothesis-generated instances
rather than a handful of hand-picked examples.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.experiments.runner import RunConfig, RunResult, run_policy
from repro.faults.plan import FaultPlan
from repro.policies.registry import make_policy
from repro.resources.allocation import Configuration
from repro.serialize import (
    FieldCodec,
    dataclass_from_dict,
    dataclass_to_dict,
    mapping_to_dict,
    object_codec,
    optional,
)

# -- strategies ------------------------------------------------------------

run_configs = st.builds(
    RunConfig,
    duration_s=st.floats(min_value=1.0, max_value=60.0, allow_nan=False),
    interval_s=st.sampled_from([0.05, 0.1, 0.2]),
    baseline_reset_s=st.floats(min_value=0.5, max_value=30.0, allow_nan=False),
    noise_sigma=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
    phase_offset_s=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    warmup_fraction=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    actuation_retries=st.integers(min_value=0, max_value=5),
)

rates = st.floats(min_value=0.0, max_value=0.99, allow_nan=False)
durations = st.floats(min_value=0.05, max_value=10.0, allow_nan=False)

fault_plans = st.builds(
    FaultPlan,
    start_s=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    end_s=st.one_of(st.none(), st.floats(min_value=6.0, max_value=60.0, allow_nan=False)),
    actuation_fail_rate=rates,
    actuation_fail_attempts=st.integers(min_value=1, max_value=4),
    actuation_outage_rate=rates,
    actuation_outage_duration_s=durations,
    sample_drop_rate=rates,
    sample_nan_rate=rates,
    sample_stuck_rate=rates,
    sample_stuck_duration_s=durations,
    sample_outlier_rate=rates,
    sample_outlier_scale=st.floats(min_value=1.5, max_value=32.0, allow_nan=False),
    crash_rate=rates,
    crash_restart_s=durations,
    hang_rate=rates,
    hang_duration_s=durations,
)


@st.composite
def configurations(draw):
    n_jobs = draw(st.integers(min_value=1, max_value=5))
    n_resources = draw(st.integers(min_value=1, max_value=3))
    names = [f"resource{i}" for i in range(n_resources)]
    units = st.lists(
        st.integers(min_value=0, max_value=8), min_size=n_jobs, max_size=n_jobs
    )
    return Configuration({name: draw(units) for name in names})


def json_round(data):
    """Force the dict through an actual JSON encode/decode cycle."""
    return json.loads(json.dumps(data))


# -- round trips -----------------------------------------------------------


class TestRoundTrips:
    @given(run_configs)
    @settings(max_examples=50, deadline=None)
    def test_run_config(self, config):
        assert RunConfig.from_dict(json_round(config.to_dict())) == config

    @given(fault_plans)
    @settings(max_examples=50, deadline=None)
    def test_fault_plan(self, plan):
        assert FaultPlan.from_dict(json_round(plan.to_dict())) == plan

    @given(configurations())
    @settings(max_examples=50, deadline=None)
    def test_configuration(self, config):
        assert Configuration.from_dict(json_round(config.to_dict())) == config

    def test_run_result(self, catalog6, parsec_mix3, goals):
        policy = make_policy("EqualPartition", parsec_mix3, catalog6, goals=goals)
        result = run_policy(
            policy,
            parsec_mix3,
            catalog=catalog6,
            run_config=RunConfig(duration_s=1.0),
            goals=goals,
            seed=7,
        )
        rebuilt = RunResult.from_dict(json_round(result.to_dict()))
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.policy_name == result.policy_name
        assert rebuilt.throughput == pytest.approx(result.throughput)
        assert rebuilt.fairness == pytest.approx(result.fairness)


# -- mode semantics --------------------------------------------------------


class TestModes:
    def test_fault_plan_rejects_unknown_fields(self):
        with pytest.raises(ExperimentError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"crash_rate": 0.1, "meltdown_rate": 0.5})

    def test_run_config_ignores_unknown_fields(self):
        config = RunConfig.from_dict({"duration_s": 3.0, "future_knob": 1})
        assert config.duration_s == 3.0

    def test_lenient_missing_fields_use_defaults(self):
        assert RunConfig.from_dict({}) == RunConfig()

    def test_strict_accepts_exact_fields(self):
        plan = FaultPlan(crash_rate=0.2)
        assert FaultPlan.from_dict(plan.to_dict()) == plan


# -- helper primitives -----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _Point:
    x: int = 0
    y: int = 0

    def to_dict(self):
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data):
        return dataclass_from_dict(cls, data)


@dataclasses.dataclass(frozen=True)
class _Nested:
    label: str
    point: _Point
    maybe: _Point = None


class TestHelpers:
    def test_object_codec_round_trip(self):
        codecs = {"point": object_codec(_Point), "maybe": optional(object_codec(_Point))}
        nested = _Nested(label="a", point=_Point(1, 2), maybe=None)
        data = json_round(dataclass_to_dict(nested, codecs=codecs))
        assert dataclass_from_dict(_Nested, data, codecs=codecs) == nested

    def test_optional_codec_encodes_value(self):
        codecs = {"point": object_codec(_Point), "maybe": optional(object_codec(_Point))}
        nested = _Nested(label="b", point=_Point(0, 0), maybe=_Point(3, 4))
        data = dataclass_to_dict(nested, codecs=codecs)
        assert data["maybe"] == {"x": 3, "y": 4}
        assert dataclass_from_dict(_Nested, data, codecs=codecs) == nested

    def test_strict_error_names_class_and_fields(self):
        with pytest.raises(ExperimentError, match=r"unknown _Point fields \['z'\]"):
            dataclass_from_dict(_Point, {"x": 1, "z": 9}, strict=True)

    def test_mapping_to_dict_listifies(self):
        out = mapping_to_dict({"cores": (1, 2), "llc": (3, 4)})
        assert out == {"cores": [1, 2], "llc": [3, 4]}
        assert all(isinstance(v, list) for v in out.values())

    def test_field_codec_applies_both_directions(self):
        codec = FieldCodec(encode=str, decode=int)
        assert codec.encode(5) == "5"
        assert codec.decode("5") == 5
