"""Tests for the dynamic weight scheduler (Eqs. 3-6) and static weights."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weights import (
    WEIGHT_LOWER_BOUND,
    WEIGHT_UPPER_BOUND,
    DynamicWeightScheduler,
    StaticWeights,
)
from repro.errors import PolicyError


def make_scheduler(**kwargs):
    defaults = dict(interval_s=0.1, prioritization_period_s=1.0, equalization_period_s=10.0)
    defaults.update(kwargs)
    return DynamicWeightScheduler(**defaults)


class TestStaticWeights:
    def test_fixed_pair(self):
        scheduler = StaticWeights(0.5, 0.5)
        state = scheduler.update(0.3, 0.9)
        assert state.pair == (0.5, 0.5)

    def test_normalizes(self):
        scheduler = StaticWeights(2.0, 2.0)
        assert scheduler.update(0, 0).pair == (0.5, 0.5)

    def test_single_goal_variants(self):
        assert StaticWeights(1.0, 0.0).update(0, 0).pair == (1.0, 0.0)
        assert StaticWeights(0.0, 1.0).update(0, 0).pair == (0.0, 1.0)

    def test_negative_rejected(self):
        with pytest.raises(PolicyError):
            StaticWeights(-1.0, 2.0)

    def test_all_zero_rejected(self):
        with pytest.raises(PolicyError):
            StaticWeights(0.0, 0.0)


class TestDynamicScheduler:
    def test_periods_quantized_to_interval(self):
        scheduler = make_scheduler()
        assert scheduler.prioritization_period_s == pytest.approx(1.0)
        assert scheduler.equalization_period_s == pytest.approx(10.0)

    def test_weights_sum_to_one(self):
        scheduler = make_scheduler()
        rng = np.random.default_rng(0)
        for _ in range(250):
            state = scheduler.update(rng.uniform(0.2, 0.5), rng.uniform(0.6, 1.0))
            assert state.w_throughput + state.w_fairness == pytest.approx(1.0)

    def test_weights_bounded(self):
        scheduler = make_scheduler()
        rng = np.random.default_rng(1)
        for _ in range(500):
            state = scheduler.update(rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9))
            assert WEIGHT_LOWER_BOUND - 1e-9 <= state.w_throughput <= WEIGHT_UPPER_BOUND + 1e-9
            assert WEIGHT_LOWER_BOUND - 1e-9 <= state.w_fairness <= WEIGHT_UPPER_BOUND + 1e-9

    def test_long_term_average_near_half(self):
        """The equalization mechanism keeps the average weight ~0.5."""
        scheduler = make_scheduler()
        rng = np.random.default_rng(2)
        weights = [scheduler.update(rng.uniform(0.2, 0.6), rng.uniform(0.5, 1.0)).w_throughput
                   for _ in range(1000)]
        assert np.mean(weights) == pytest.approx(0.5, abs=0.05)

    def test_period_reset_flag_fires_each_equalization_period(self):
        scheduler = make_scheduler(equalization_period_s=1.0)
        resets = [scheduler.update(0.4, 0.8).period_reset for _ in range(30)]
        assert sum(resets) == 3
        assert resets[9] and resets[19] and resets[29]

    def test_prioritization_favors_weaker_goal(self):
        """If fairness improved a lot last period, throughput gets weight."""
        scheduler = make_scheduler(equalization_period_s=100.0)
        # First prioritization period: fairness improves, throughput flat.
        for i in range(10):
            scheduler.update(0.4, 0.5 + 0.03 * i)
        state = scheduler.update(0.4, 0.8)
        assert state.w_throughput > 0.5

    def test_favor_stronger_inverts(self):
        weaker = make_scheduler(equalization_period_s=100.0, favor_weaker_goal=True)
        stronger = make_scheduler(equalization_period_s=100.0, favor_weaker_goal=False)
        for i in range(10):
            weaker.update(0.4, 0.5 + 0.03 * i)
            stronger.update(0.4, 0.5 + 0.03 * i)
        assert weaker.update(0.4, 0.8).w_throughput > 0.5
        assert stronger.update(0.4, 0.8).w_throughput < 0.5

    def test_no_improvement_gives_equal_priorities(self):
        scheduler = make_scheduler(equalization_period_s=100.0)
        for _ in range(15):
            state = scheduler.update(0.4, 0.8)
        assert state.prioritization_throughput + state.prioritization_fairness == pytest.approx(
            (1 - state.equalization_fraction) * 1.0
        )

    def test_equalization_fraction_grows(self):
        scheduler = make_scheduler()
        fractions = [scheduler.update(0.4, 0.8).equalization_fraction for _ in range(100)]
        assert fractions[0] < fractions[50] < fractions[99]
        assert fractions[99] == pytest.approx(1.0)

    def test_reset_clears_state(self):
        scheduler = make_scheduler()
        for _ in range(37):
            scheduler.update(0.3, 0.9)
        scheduler.reset()
        state = scheduler.update(0.3, 0.9)
        assert state.equalization_fraction == pytest.approx(0.01)

    def test_invalid_periods_rejected(self):
        with pytest.raises(PolicyError):
            make_scheduler(prioritization_period_s=0.01)
        with pytest.raises(PolicyError):
            make_scheduler(equalization_period_s=0.5)
        with pytest.raises(PolicyError):
            DynamicWeightScheduler(interval_s=0.0)

    @given(
        t_seq=st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=30, max_size=60),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_hold_for_arbitrary_scores(self, t_seq):
        scheduler = make_scheduler(equalization_period_s=2.0)
        for i, t in enumerate(t_seq):
            state = scheduler.update(t, 1.0 - 0.5 * t)
            assert state.w_throughput + state.w_fairness == pytest.approx(1.0)
            assert WEIGHT_LOWER_BOUND - 1e-9 <= state.w_throughput <= WEIGHT_UPPER_BOUND + 1e-9
