"""Shared fixtures: small-scale servers, mixes, and spaces for fast tests.

Also home of the ``asyncio`` marker's runner: the serve-layer tests are
coroutines, and the container deliberately has no ``pytest-asyncio`` —
the hook below runs marked coroutine tests through ``asyncio.run`` so
the dependency surface stays numpy/scipy/pytest only.
"""

from __future__ import annotations

import asyncio
import inspect

import pytest


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    """Run ``@pytest.mark.asyncio`` coroutine tests via ``asyncio.run``."""
    if pyfuncitem.get_closest_marker("asyncio") is None:
        return None
    func = pyfuncitem.obj
    if not inspect.iscoroutinefunction(func):
        return None
    kwargs = {
        name: pyfuncitem.funcargs[name]
        for name in pyfuncitem._fixtureinfo.argnames
    }
    asyncio.run(func(**kwargs))
    return True

from repro.experiments.runner import experiment_catalog
from repro.metrics.goals import GoalSet
from repro.resources.space import ConfigurationSpace
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH, default_catalog
from repro.system.simulation import CoLocationSimulator
from repro.workloads.mixes import JobMix, mix_from_names, suite_mixes
from repro.workloads.registry import default_registry
from repro.workloads.synthetic import random_workloads


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def catalog6():
    """A 6-unit-per-resource experiment catalog (small but non-trivial)."""
    return experiment_catalog(units=6)


@pytest.fixture(scope="session")
def catalog4():
    """The smallest useful catalog (4 units per resource)."""
    return experiment_catalog(units=4)


@pytest.fixture(scope="session")
def paper_catalog():
    """Paper-scale catalog: 10 units per resource."""
    return default_catalog()


@pytest.fixture(scope="session")
def parsec_mix3(registry):
    """A three-job PARSEC mix with distinct resource characters."""
    return mix_from_names(["canneal", "fluidanimate", "streamcluster"], registry)


@pytest.fixture(scope="session")
def parsec_mix5(registry):
    return suite_mixes("parsec", registry=registry)[0]


@pytest.fixture(scope="session")
def synthetic_pair():
    return JobMix(tuple(random_workloads(2, rng=11)))


@pytest.fixture
def space6x3(catalog6):
    return ConfigurationSpace(catalog6, 3)


@pytest.fixture
def goals():
    return GoalSet()


@pytest.fixture
def make_simulator(catalog6, parsec_mix3):
    """Factory for small simulators with deterministic noise."""

    def factory(mix=None, catalog=None, **kwargs):
        kwargs.setdefault("seed", 123)
        return CoLocationSimulator(mix or parsec_mix3, catalog=catalog or catalog6, **kwargs)

    return factory
