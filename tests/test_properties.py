"""Cross-cutting property-based tests (hypothesis) on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import experiment_catalog
from repro.metrics.goals import GoalSet
from repro.policies.oracle import OracleSearch
from repro.resources.allocation import Configuration
from repro.resources.space import ConfigurationSpace
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH
from repro.rng import make_rng
from repro.system.contention import evaluate_system, isolation_ips
from repro.workloads.mixes import JobMix
from repro.workloads.synthetic import random_workloads

CATALOG = experiment_catalog(units=6)
SPACE = ConfigurationSpace(CATALOG, 3)


def random_mix(seed: int) -> JobMix:
    return JobMix(tuple(random_workloads(3, rng=seed)))


class TestSystemInvariants:
    @given(seed=st.integers(min_value=0, max_value=500), t=st.floats(min_value=0, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_ips_positive_and_bounded_by_isolation(self, seed, t):
        """Any valid configuration yields positive IPS <= isolation IPS."""
        mix = random_mix(seed)
        config = SPACE.sample(make_rng(seed))
        state = evaluate_system(mix, CATALOG, config, t)
        iso = isolation_ips(mix, CATALOG, t)
        assert np.all(state.ips > 0)
        assert np.all(state.ips <= iso * (1 + 1e-9))

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_own_allocation(self, seed):
        """Giving a job strictly more of every resource never hurts it."""
        mix = random_mix(seed)
        rng = make_rng(seed)
        config = SPACE.sample(rng)
        donor_candidates = [
            j
            for j in range(3)
            if all(config.units(r)[j] > 1 for r in SPACE.resource_names)
        ]
        if not donor_candidates:
            return
        donor = donor_candidates[0]
        receiver = (donor + 1) % 3
        richer = config
        for resource in SPACE.resource_names:
            richer = richer.move_unit(resource, donor, receiver)
        before = evaluate_system(mix, CATALOG, config, 0.0).ips[receiver]
        after = evaluate_system(mix, CATALOG, richer, 0.0).ips[receiver]
        assert after >= before * (1 - 1e-9)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_goal_scores_well_formed(self, seed):
        mix = random_mix(seed)
        config = SPACE.sample(make_rng(seed))
        state = evaluate_system(mix, CATALOG, config, 0.0)
        iso = isolation_ips(mix, CATALOG, 0.0)
        scores = GoalSet().scores(state.ips, iso)
        assert 0 < scores.throughput <= 1 + 1e-9
        assert 0 < scores.fairness <= 1 + 1e-9


class TestOracleInvariants:
    @pytest.fixture(scope="class")
    def search(self):
        mix = random_mix(99)
        return OracleSearch(mix, CATALOG)

    @given(
        w=st.floats(min_value=0.0, max_value=1.0),
        t=st.floats(min_value=0.0, max_value=12.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_oracle_dominates_random_config(self, search, w, t):
        """The oracle's objective beats any sampled configuration's."""
        config = search.space.sample(make_rng(int(w * 1000) + int(t * 10)))
        t_score, f_score = search.evaluate(config, t)
        best = search.best(t, w, 1.0 - w)
        assert best.objective >= w * t_score + (1.0 - w) * f_score - 1e-9

    @given(w=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=15, deadline=None)
    def test_objective_consistency(self, search, w):
        # The oracle caches results per weight rounded to 6 decimals;
        # query on that grid so cache hits carry the exact weights.
        w = round(w, 6)
        best = search.best(0.0, w, 1.0 - w)
        assert best.objective == pytest.approx(
            w * best.throughput + (1.0 - w) * best.fairness, rel=1e-6, abs=1e-9
        )

    def test_throughput_weight_monotonicity(self, search):
        """More throughput weight never decreases achieved throughput."""
        weights = (0.0, 0.25, 0.5, 0.75, 1.0)
        throughputs = [search.best(0.0, w, 1.0 - w).throughput for w in weights]
        for earlier, later in zip(throughputs, throughputs[1:]):
            assert later >= earlier - 1e-9

    def test_fairness_weight_monotonicity(self, search):
        weights = (0.0, 0.25, 0.5, 0.75, 1.0)
        fairness = [search.best(0.0, 1.0 - w, w).fairness for w in weights]
        for earlier, later in zip(fairness, fairness[1:]):
            assert later >= earlier - 1e-9


class TestConfigurationProperties:
    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_move_unit_preserves_totals(self, seed):
        rng = make_rng(seed)
        config = SPACE.sample(rng)
        resource = SPACE.resource_names[int(rng.integers(0, 3))]
        units = config.units(resource)
        donors = [j for j in range(3) if units[j] > 1]
        if not donors:
            return
        donor = donors[0]
        receiver = (donor + 1) % 3
        moved = config.move_unit(resource, donor, receiver)
        assert sum(moved.units(resource)) == sum(units)
        moved.validate(CATALOG)

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_encode_is_injective_on_samples(self, seed):
        rng = make_rng(seed)
        a = SPACE.sample(rng)
        b = SPACE.sample(rng)
        ea, eb = SPACE.encode(a), SPACE.encode(b)
        if a == b:
            assert np.allclose(ea, eb)
        else:
            assert not np.allclose(ea, eb)
