"""Tests for the per-figure experiment drivers (small scales)."""

import numpy as np
import pytest

from repro.experiments.ablation import bo_design_ablation, resource_subset_ablation
from repro.experiments.characterization import (
    conflicting_goal_gap,
    optimal_configuration_drift,
    rebalancing_opportunity,
)
from repro.experiments.internals import (
    dynamic_vs_static,
    objective_trace,
    performance_variation,
    weak_goal_priority,
    weight_trace,
)
from repro.experiments.overhead import controller_overhead
from repro.experiments.proximity import distance_to_oracle
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import RunConfig
from repro.experiments.scalability import colocation_scalability
from repro.experiments.sensitivity import period_sensitivity
from repro.resources.types import LLC_WAYS, MEMORY_BANDWIDTH

RC = RunConfig(duration_s=4.0)


class TestCharacterization:
    def test_drift_shapes(self, catalog6, parsec_mix3):
        drift = optimal_configuration_drift(parsec_mix3, catalog6, duration_s=6.0, step_s=1.0)
        assert drift.times.shape == (6,)
        for series in drift.shares.values():
            assert series.shape == (6, 3)
            assert np.allclose(series.sum(axis=1), 100.0)

    def test_drift_detects_change(self, catalog6, parsec_mix3):
        """Observation 1: the optimum changes over the run."""
        drift = optimal_configuration_drift(parsec_mix3, catalog6, duration_s=10.0, step_s=0.5)
        assert drift.n_distinct_configs() > 1
        assert drift.max_share_change_percent() > 0

    def test_goal_gap_conflict(self, catalog6, parsec_mix3):
        """Observation 2: cross ratios are strictly below 1."""
        gap = conflicting_goal_gap(parsec_mix3, catalog6)
        assert gap.cross_fairness_ratio < 1.0
        assert gap.cross_throughput_ratio < 1.0
        assert 0 < gap.config_distance <= gap.max_distance

    def test_naive_compromises_below_balanced(self, catalog6, parsec_mix3):
        gap = conflicting_goal_gap(parsec_mix3, catalog6)
        balanced_value = 0.5 * sum(gap.balanced_opt)
        assert 0.5 * sum(gap.average_config) <= balanced_value + 1e-9
        assert 0.5 * sum(gap.alternating) <= balanced_value + 1e-9

    def test_rebalancing_opportunity_exists(self, catalog6, parsec_mix3):
        """Observation 3: opposite-sign fairness deltas are findable."""
        example = rebalancing_opportunity(parsec_mix3, catalog6, n_samples=40)
        assert example is not None
        assert example.demonstrates_opportunity


class TestInternals:
    def test_weight_trace_invariants(self, catalog6, parsec_mix3):
        trace, _ = weight_trace(parsec_mix3, catalog6, RC, seed=1)
        valid = ~np.isnan(trace.w_throughput)
        assert np.all(trace.w_throughput[valid] + trace.w_fairness[valid] == pytest.approx(1.0))
        mean_t, mean_f = trace.mean_weights()
        assert abs(mean_t - 0.5) < 0.15

    def test_weights_deviate_from_equal(self, catalog6, parsec_mix3):
        trace, _ = weight_trace(parsec_mix3, catalog6, RunConfig(duration_s=6.0), seed=1)
        assert trace.max_deviation_from_equal() > 0.0

    def test_dynamic_vs_static_returns_both(self, catalog6, parsec_mix3):
        comparison = dynamic_vs_static(parsec_mix3, catalog6, RC, seed=1)
        assert comparison.dynamic.policy_name == "SATORI"
        assert "static" in comparison.other.policy_name

    def test_objective_trace_shapes(self, catalog6, parsec_mix3):
        traces = objective_trace(parsec_mix3, catalog6, RC, seed=1)
        assert traces.dynamic_objective.shape == traces.static_objective.shape
        (dyn_lo, dyn_hi), (sta_lo, sta_hi) = traces.proxy_change_ranges()
        assert dyn_lo >= 0 and sta_lo >= 0

    def test_performance_variation_fields(self, catalog6, parsec_mix3):
        variation = performance_variation(parsec_mix3, catalog6, RC, seed=1)
        assert variation.dynamic_throughput_std >= 0
        assert variation.static_fairness_std >= 0
        assert all(0 < m <= 1 for m in variation.dynamic_means)

    def test_weak_goal_priority_runs_both(self, catalog6, parsec_mix3):
        comparison = weak_goal_priority(parsec_mix3, catalog6, RC, seed=1)
        assert comparison.other_label == "favor stronger goal"
        assert np.isfinite(comparison.throughput_gain_percent)


class TestProximity:
    def test_distances_nonnegative(self, catalog6, parsec_mix3):
        result = distance_to_oracle(
            parsec_mix3, catalog6, RC, seed=0, include=("Random", "SATORI")
        )
        assert set(result.mean_distance) == {"Random", "SATORI"}
        assert all(d >= 0 for d in result.mean_distance.values())

    def test_relative_to_reference(self, catalog6, parsec_mix3):
        result = distance_to_oracle(
            parsec_mix3, catalog6, RC, seed=0, include=("Random", "SATORI")
        )
        rel = result.relative_to("SATORI")
        assert rel["SATORI"] == pytest.approx(1.0)

    def test_series_lengths(self, catalog6, parsec_mix3):
        result = distance_to_oracle(parsec_mix3, catalog6, RC, seed=0, include=("SATORI",))
        assert result.distance_series["SATORI"].shape == result.times.shape


class TestSensitivity:
    def test_sweep_points(self, catalog6, parsec_mix3):
        result = period_sensitivity(
            parsec_mix3,
            catalog6,
            RunConfig(duration_s=3.0),
            seed=0,
            prioritization_sweep=(0.5, 2.0),
            equalization_sweep=(3.0, 10.0),
        )
        assert len(result.prioritization) == 2
        assert len(result.equalization) == 2
        assert result.prioritization_spread() >= 0


class TestScalability:
    def test_degrees_covered(self, catalog4):
        result = colocation_scalability(
            degrees=(2, 3),
            mixes_per_degree=1,
            catalog=catalog4,
            run_config=RunConfig(duration_s=3.0),
            seed=0,
        )
        assert [p.degree for p in result.points] == [2, 3]
        assert len(result.gaps()) == 2

    def test_too_large_degree_rejected(self, catalog6):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            colocation_scalability(degrees=(9,), catalog=catalog6)


class TestOverhead:
    def test_overhead_fields(self, catalog6, parsec_mix3):
        result = controller_overhead(parsec_mix3, catalog6, RunConfig(duration_s=3.0), seed=0)
        assert result.mean_decision_time_ms > 0
        assert result.control_interval_ms == pytest.approx(100.0)
        assert 0 <= result.idle_fraction <= 1
        assert 0 < result.decision_fraction_of_interval < 1


class TestAblation:
    def test_llc_subset_vs_dcat(self, catalog6, parsec_mix3):
        result = resource_subset_ablation(
            parsec_mix3, [LLC_WAYS], catalog6, RunConfig(duration_s=3.0), seed=0
        )
        assert result.baseline_name == "dCAT"
        assert result.resources == (LLC_WAYS,)

    def test_llc_bw_subset_vs_copart(self, catalog6, parsec_mix3):
        result = resource_subset_ablation(
            parsec_mix3, [LLC_WAYS, MEMORY_BANDWIDTH], catalog6, RunConfig(duration_s=3.0), seed=0
        )
        assert result.baseline_name == "CoPart"

    def test_unknown_subset_rejected(self, catalog6, parsec_mix3):
        with pytest.raises(ValueError):
            resource_subset_ablation(parsec_mix3, ["cores"], catalog6)

    def test_bo_design_variants(self, catalog4, parsec_mix3):
        result = bo_design_ablation(parsec_mix3, catalog4, RunConfig(duration_s=2.0), seed=0)
        assert "EI + Matern52 (paper)" in result.scores
        assert len(result.scores) == 4


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "T", "F"], [["SATORI", 92.0, 91.5]], title="Fig")
        lines = table.splitlines()
        assert lines[0] == "Fig"
        assert "SATORI" in lines[3]
        assert "92.0" in lines[3]

    def test_format_series_subsamples(self):
        out = format_series("x", list(range(100)), limit=5)
        assert out.startswith("x:")

    def test_format_table_precision(self):
        table = format_table(["v"], [[1.23456]], precision=3)
        assert "1.235" in table


class TestWarmstart:
    @pytest.fixture(scope="class")
    def report(self, catalog4):
        from repro.experiments.warmstart import warmstart_experiment
        from repro.workloads.mixes import suite_mixes

        return warmstart_experiment(
            mixes=suite_mixes("ecp", mix_size=3)[:2],
            catalog=catalog4,
            run_config=RunConfig(duration_s=3.0, baseline_reset_s=1.5),
            n_nodes=2,
            n_epochs=5,
            seed=0,
        )

    def test_adaptation_cells_are_paired(self, report):
        assert len(report.adaptation) == 2
        for cell in report.adaptation:
            # Same environment, same length — only the carried state differs.
            assert len(cell.cold.telemetry) == len(cell.warm.telemetry)
            assert cell.cold.policy_name == cell.warm.policy_name
            assert cell.warm.final_state is not None
            intervals = len(cell.cold.telemetry) + 1
            assert 0 < cell.cold_recovery_intervals <= intervals
            assert 0 < cell.warm_recovery_intervals <= intervals

    def test_cluster_replays_are_exactly_paired(self, report):
        cluster = report.cluster
        cold_members = {(r.epoch, r.node_id): r.job_ids for r in cluster.cold.records}
        warm_members = {(r.epoch, r.node_id): r.job_ids for r in cluster.warm.records}
        assert cold_members == warm_members
        assert cluster.warm_started_epochs > 0
        assert cluster.job_speedup_delta.n_only_a == 0
        assert cluster.job_speedup_delta.n_only_b == 0

    def test_fairness_series_recorded_for_simulated_epochs(self, report):
        for record in report.cluster.cold.records + report.cluster.warm.records:
            if record.synthesized:
                assert record.fairness_series == ()
            else:
                assert len(record.fairness_series) > 0

    def test_recovery_outcomes_cover_warm_started_epochs(self, report):
        cluster = report.cluster
        outcomes = cluster.fairness_recovery_outcomes()
        assert set(outcomes) == {"wins", "ties", "losses"}
        assert all(count >= 0 for count in outcomes.values())
        assert sum(outcomes.values()) <= cluster.warm_started_epochs

    def test_report_serializes(self, report):
        import json

        data = json.loads(json.dumps(report.to_dict()))
        assert {"adaptation", "cluster"} <= set(data)
        gain = report.recovery_gain_summary()
        assert gain.n == len(report.adaptation)

    def test_stateless_policy_rejected(self, catalog4):
        from repro.errors import ExperimentError
        from repro.experiments.warmstart import adaptation_sweep
        from repro.workloads.mixes import suite_mixes

        with pytest.raises(ExperimentError, match="no snapshot"):
            adaptation_sweep(
                mixes=suite_mixes("ecp", mix_size=3)[:1],
                policy="EqualPartition",
                catalog=catalog4,
                run_config=RunConfig(duration_s=2.0, baseline_reset_s=1.0),
            )
