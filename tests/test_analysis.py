"""Tests for the analysis module (export + replication statistics)."""

import csv
import io
import json

import numpy as np
import pytest

from repro.analysis.export import (
    run_summary,
    run_summary_json,
    telemetry_rows,
    telemetry_to_csv,
)
from repro.analysis.stats import (
    confidence_interval,
    convergence_time_s,
    paired_deltas,
    replicate_policy,
)
from repro.core.controller import SatoriController
from repro.errors import ExperimentError
from repro.experiments.comparison import full_space
from repro.experiments.runner import RunConfig, run_policy
from repro.policies.static import EqualPartitionPolicy


@pytest.fixture(scope="module")
def small_run(request):
    catalog6 = request.getfixturevalue("catalog6")
    mix = request.getfixturevalue("parsec_mix3")
    policy = SatoriController(full_space(catalog6, 3), rng=0)
    return run_policy(policy, mix, catalog6, RunConfig(duration_s=4.0), seed=0)


class TestExport:
    def test_rows_per_interval(self, small_run):
        rows = telemetry_rows(small_run.telemetry)
        assert len(rows) == len(small_run.telemetry)
        assert {"time_s", "throughput", "fairness"} <= set(rows[0])

    def test_rows_include_per_job_columns(self, small_run):
        rows = telemetry_rows(small_run.telemetry)
        assert "ips_job0" in rows[0] and "speedup_job2" in rows[0]

    def test_rows_include_diagnostics(self, small_run):
        rows = telemetry_rows(small_run.telemetry)
        assert any("weight_throughput" in row for row in rows)

    def test_csv_parses_back(self, small_run):
        text = telemetry_to_csv(small_run.telemetry)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(small_run.telemetry)
        assert float(parsed[0]["time_s"]) == pytest.approx(0.1)

    def test_csv_empty_log(self):
        from repro.system.telemetry import TelemetryLog

        assert telemetry_to_csv(TelemetryLog()) == ""

    def test_summary_fields(self, small_run):
        summary = run_summary(small_run)
        assert summary["policy"] == "SATORI"
        assert summary["intervals"] == 40
        assert len(summary["mean_job_speedups"]) == 3

    def test_summary_json_roundtrip(self, small_run):
        parsed = json.loads(run_summary_json(small_run))
        assert parsed["mix"] == small_run.mix_label


class TestConfidenceInterval:
    def test_symmetric_about_mean(self):
        score = confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert score.mean == pytest.approx(2.5)
        assert score.ci_low < 2.5 < score.ci_high
        assert score.ci_high - score.mean == pytest.approx(score.mean - score.ci_low)

    def test_tighter_with_more_samples(self):
        rng = np.random.default_rng(0)
        small = confidence_interval(rng.normal(0, 1, size=5))
        large = confidence_interval(rng.normal(0, 1, size=100))
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_requires_two_values(self):
        with pytest.raises(ExperimentError):
            confidence_interval([1.0])

    def test_str(self):
        assert "n=3" in str(confidence_interval([1.0, 2.0, 3.0]))


class TestReplication:
    def test_replicate_policy(self, catalog6, parsec_mix3):
        replicated = replicate_policy(
            lambda: EqualPartitionPolicy(full_space(catalog6, 3)),
            parsec_mix3,
            catalog6,
            RunConfig(duration_s=2.0),
            seeds=(0, 1, 2),
        )
        assert replicated.throughput.n == 3
        assert 0 < replicated.throughput.mean <= 1
        assert len(replicated.results) == 3

    def test_needs_two_seeds(self, catalog6, parsec_mix3):
        with pytest.raises(ExperimentError):
            replicate_policy(
                lambda: EqualPartitionPolicy(full_space(catalog6, 3)),
                parsec_mix3,
                catalog6,
                seeds=(0,),
            )


class TestConvergence:
    def test_convergence_within_run(self, small_run):
        t = convergence_time_s(small_run)
        assert 0 < t <= small_run.run_config.duration_s

    def test_static_policy_converges_immediately(self, catalog6, parsec_mix3):
        policy = EqualPartitionPolicy(full_space(catalog6, 3))
        result = run_policy(policy, parsec_mix3, catalog6, RunConfig(duration_s=4.0), seed=0)
        assert convergence_time_s(result) <= 2.0


class TestPairedDeltas:
    def test_constant_shift_recovered_exactly(self):
        a = {job: 1.0 + 0.1 * job for job in range(6)}
        b = {job: value + 0.25 for job, value in a.items()}
        delta = paired_deltas(a, b)
        assert delta.delta.mean == pytest.approx(0.25)
        assert delta.delta.std == pytest.approx(0.0)
        assert delta.n_common == 6
        assert delta.n_only_a == delta.n_only_b == 0

    def test_direction_is_b_minus_a(self):
        a = {0: 1.0, 1: 1.0, 2: 1.0}
        b = {0: 0.5, 1: 0.5, 2: 0.5}
        assert paired_deltas(a, b).delta.mean == pytest.approx(-0.5)

    def test_unpaired_keys_counted_not_silently_dropped(self):
        a = {0: 1.0, 1: 2.0, 2: 3.0, 9: 4.0}
        b = {0: 1.5, 1: 2.5, 2: 3.5, 7: 0.0, 8: 0.0}
        delta = paired_deltas(a, b)
        assert delta.n_common == 3
        assert delta.n_only_a == 1
        assert delta.n_only_b == 2

    def test_no_common_keys_rejected(self):
        with pytest.raises(ExperimentError, match="common keys"):
            paired_deltas({0: 1.0, 1: 2.0}, {5: 2.0, 6: 3.0})

    def test_single_common_key_zero_width_interval(self):
        # A one-job trace still yields a well-formed report row.
        delta = paired_deltas({0: 1.0, 1: 2.0}, {1: 2.4, 5: 3.0})
        assert delta.n_common == 1
        assert delta.delta.n == 1
        assert delta.delta.mean == pytest.approx(0.4)
        assert delta.delta.std == 0.0
        assert delta.delta.ci_low == delta.delta.ci_high == delta.delta.mean

    def test_zero_variance_deltas_collapse_interval(self):
        a = {job: float(job) for job in range(4)}
        b = {job: value + 1.0 for job, value in a.items()}
        delta = paired_deltas(a, b)
        assert delta.delta.std == 0.0
        assert delta.delta.ci_low == pytest.approx(1.0)
        assert delta.delta.ci_high == pytest.approx(1.0)
        assert np.isfinite(delta.delta.ci_low) and np.isfinite(delta.delta.ci_high)

    def test_ci_shrinks_relative_to_unpaired_noise(self):
        # Huge per-key variance, tiny per-key delta: the paired CI must
        # still pin the shift tightly — the whole point of pairing.
        rng = np.random.default_rng(0)
        a = {job: float(v) for job, v in enumerate(rng.normal(10.0, 5.0, size=30))}
        b = {job: value + 0.1 for job, value in a.items()}
        delta = paired_deltas(a, b)
        assert delta.delta.ci_low == pytest.approx(0.1, abs=1e-9)
        assert delta.delta.ci_high == pytest.approx(0.1, abs=1e-9)
