"""Tests for foundation helpers: RNG, error hierarchy, variants driver."""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ExperimentError,
    HardwareError,
    ModelError,
    PolicyError,
    ReproError,
    SpaceError,
    WorkloadError,
)
from repro.rng import make_rng, spawn_rng


class TestRng:
    def test_make_rng_from_int_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_make_rng_passes_through_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_make_rng_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_spawn_rng_independent_streams(self):
        parent = make_rng(1)
        a = spawn_rng(parent)
        b = spawn_rng(parent)
        assert a.random() != b.random()

    def test_spawn_rng_with_key_deterministic(self):
        a = spawn_rng(make_rng(1), key=7)
        b = spawn_rng(make_rng(99), key=7)
        assert a.random() == b.random()

    def test_spawning_does_not_entangle(self):
        """Drawing from a child must not perturb the parent's stream."""
        parent1 = make_rng(5)
        child1 = spawn_rng(parent1)
        next1 = parent1.random()

        parent2 = make_rng(5)
        child2 = spawn_rng(parent2)
        for _ in range(100):
            child2.random()
        next2 = parent2.random()
        assert next1 == next2


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_cls",
        [
            ConfigurationError,
            ExperimentError,
            HardwareError,
            ModelError,
            PolicyError,
            SpaceError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_cls):
        assert issubclass(error_cls, ReproError)
        with pytest.raises(ReproError):
            raise error_cls("boom")

    def test_catchable_as_exception(self):
        with pytest.raises(Exception):
            raise ReproError("boom")


class TestVariantsDriver:
    def test_single_goal_limits_runs(self, catalog4):
        from repro.experiments.runner import RunConfig
        from repro.experiments.variants import single_goal_limits
        from repro.workloads.mixes import mix_from_names

        mix = mix_from_names(["amg", "hypre"])
        result = single_goal_limits(mix, catalog4, RunConfig(duration_s=4.0), seed=0)
        # Oracle dominance holds on model-true values; measured runs
        # carry pqos noise, hence the small tolerance.
        assert result.throughput_oracle.throughput >= result.fairness_oracle.throughput - 0.01
        assert result.fairness_oracle.fairness >= result.throughput_oracle.fairness - 0.01
        assert 0 < result.throughput_variant_ratio < 1.5
        assert 0 < result.fairness_variant_ratio < 1.5

    def test_variant_policy_names(self, catalog4):
        from repro.experiments.runner import RunConfig
        from repro.experiments.variants import single_goal_limits
        from repro.workloads.mixes import mix_from_names

        mix = mix_from_names(["amg", "hypre"])
        result = single_goal_limits(mix, catalog4, RunConfig(duration_s=2.0), seed=0)
        assert result.throughput_satori.policy_name == "Throughput SATORI"
        assert result.fairness_satori.policy_name == "Fairness SATORI"
        assert result.balanced_oracle.policy_name == "Balanced Oracle"
