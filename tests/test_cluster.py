"""Tests for the multi-node cluster layer (arrivals, placement, nodes,
the cluster simulator, and the sweep driver)."""

import json

import numpy as np
import pytest

from repro.cluster import (
    ClusterSimulator,
    LeastLoadedPlacement,
    MigrationConfig,
    NodeView,
    RoundRobinPlacement,
    ServerNode,
    instance_name,
    make_placement,
    node_capacity,
    placement_names,
)
from repro.cluster.placement import ContentionAwarePlacement
from repro.engine import ExecutionEngine
from repro.engine.spec import derive_seed
from repro.errors import ClusterError
from repro.experiments.cluster import (
    cluster_sweep,
    default_trace,
    node_fault_plans,
)
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.workloads.arrivals import (
    ArrivalTrace,
    JobArrival,
    diurnal_trace,
    flash_crowd_trace,
    poisson_trace,
    workload_from_dict,
    workload_to_dict,
)
from repro.workloads.registry import default_registry

#: Tiny methodology for fast simulator tests.
TINY = RunConfig(duration_s=1.0, baseline_reset_s=0.5)


def tiny_trace(n_epochs=2, seed=7, initial_jobs=4, rate=1.5):
    return poisson_trace(
        n_epochs=n_epochs,
        arrival_rate=rate,
        mean_residency=2.0,
        suites=("ecp",),
        seed=seed,
        initial_jobs=initial_jobs,
    )


class TestWorkloadSerialization:
    def test_round_trip(self, registry):
        workload = registry.get("canneal")
        data = json.loads(json.dumps(workload_to_dict(workload)))
        assert workload_from_dict(data) == workload


class TestJobArrival:
    def test_residency_interval_is_half_open(self, registry):
        job = JobArrival(0, registry.get("canneal"), arrival_epoch=2, departure_epoch=4)
        assert not job.resident_at(1)
        assert job.resident_at(2) and job.resident_at(3)
        assert not job.resident_at(4)

    def test_open_departure_means_forever(self, registry):
        job = JobArrival(0, registry.get("canneal"), arrival_epoch=0)
        assert job.resident_at(10**6)

    def test_validation(self, registry):
        workload = registry.get("canneal")
        with pytest.raises(ClusterError):
            JobArrival(-1, workload, 0)
        with pytest.raises(ClusterError):
            JobArrival(0, workload, arrival_epoch=3, departure_epoch=3)


class TestArrivalTrace:
    def test_events_are_consistent(self):
        trace = tiny_trace(n_epochs=6, rate=2.0)
        for epoch in range(trace.n_epochs):
            active = {job.job_id for job in trace.active_at(epoch)}
            for job in trace.arrivals_at(epoch):
                assert job.job_id in active
            for job in trace.departures_at(epoch):
                assert job.job_id not in active

    def test_deterministic_from_seed(self):
        assert tiny_trace(seed=3).to_dict() == tiny_trace(seed=3).to_dict()
        assert tiny_trace(seed=3).to_dict() != tiny_trace(seed=4).to_dict()

    def test_round_trip(self):
        trace = tiny_trace(n_epochs=4, rate=1.5)
        data = json.loads(json.dumps(trace.to_dict()))
        assert ArrivalTrace.from_dict(data) == trace

    def test_max_jobs_is_respected(self):
        trace = poisson_trace(
            n_epochs=8, arrival_rate=5.0, mean_residency=8.0, max_jobs=3, seed=0
        )
        assert trace.peak_jobs <= 3

    def test_duplicate_ids_rejected(self, registry):
        workload = registry.get("canneal")
        jobs = (JobArrival(0, workload, 0), JobArrival(0, workload, 1))
        with pytest.raises(ClusterError, match="duplicate job ids"):
            ArrivalTrace(n_epochs=3, jobs=jobs)

    def test_arrival_beyond_trace_rejected(self, registry):
        job = JobArrival(0, registry.get("canneal"), arrival_epoch=5)
        with pytest.raises(ClusterError, match="beyond the trace"):
            ArrivalTrace(n_epochs=3, jobs=(job,))


class TestNonStationaryTraces:
    """Diurnal and flash-crowd generators: deterministic, serializable,
    and actually concentrating load where they claim to."""

    def arrivals_per_epoch(self, trace):
        counts = [0] * trace.n_epochs
        for job in trace.jobs:
            if job.arrival_epoch < trace.n_epochs:
                counts[job.arrival_epoch] += 1
        return counts

    def test_diurnal_deterministic_and_round_trips(self):
        kwargs = dict(n_epochs=8, base_rate=0.2, peak_rate=2.0,
                      period_epochs=8, suites=("ecp",), seed=11)
        first, second = diurnal_trace(**kwargs), diurnal_trace(**kwargs)
        assert first == second
        data = json.loads(json.dumps(first.to_dict()))
        assert ArrivalTrace.from_dict(data) == first

    def test_diurnal_peaks_mid_period(self):
        # Average arrivals over many seeds: mid-period epochs (rate near
        # the peak) must outdraw the troughs at the period's edges.
        edge = peak = 0
        for seed in range(25):
            counts = self.arrivals_per_epoch(
                diurnal_trace(n_epochs=8, base_rate=0.1, peak_rate=4.0,
                              period_epochs=8, suites=("ecp",), seed=seed)
            )
            edge += counts[0] + counts[7]
            peak += counts[3] + counts[4]
        assert peak > edge

    def test_flash_crowd_concentrates_in_burst_window(self):
        burst = quiet = 0
        for seed in range(25):
            counts = self.arrivals_per_epoch(
                flash_crowd_trace(n_epochs=6, base_rate=0.1, burst_rate=5.0,
                                  burst_epoch=2, burst_duration=2,
                                  suites=("ecp",), seed=seed)
            )
            burst += counts[2] + counts[3]
            quiet += counts[0] + counts[1] + counts[4] + counts[5]
        assert burst > quiet

    def test_flash_crowd_deterministic_and_round_trips(self):
        kwargs = dict(n_epochs=6, burst_epoch=1, suites=("ecp",), seed=4)
        assert flash_crowd_trace(**kwargs) == flash_crowd_trace(**kwargs)
        data = json.loads(json.dumps(flash_crowd_trace(**kwargs).to_dict()))
        assert ArrivalTrace.from_dict(data) == flash_crowd_trace(**kwargs)

    def test_constant_rates_reduce_to_poisson_trace(self):
        # A flat diurnal cycle and a burst equal to the base rate are
        # both the stationary trace — pinning _rate_trace's draw-order
        # compatibility with poisson_trace.
        kwargs = dict(n_epochs=5, mean_residency=2.0, suites=("ecp",),
                      seed=9, initial_jobs=2)
        flat = poisson_trace(arrival_rate=1.5, **kwargs)
        assert diurnal_trace(base_rate=1.5, peak_rate=1.5, **kwargs) == flat
        assert flash_crowd_trace(base_rate=1.5, burst_rate=1.5, **kwargs) == flat

    def test_parameter_validation(self):
        with pytest.raises(ClusterError, match="peak_rate"):
            diurnal_trace(n_epochs=4, base_rate=2.0, peak_rate=1.0)
        with pytest.raises(ClusterError, match="period_epochs"):
            diurnal_trace(n_epochs=4, period_epochs=1)
        with pytest.raises(ClusterError, match="burst_duration"):
            flash_crowd_trace(n_epochs=4, burst_duration=0)
        with pytest.raises(ClusterError, match="burst_epoch"):
            flash_crowd_trace(n_epochs=4, burst_epoch=-1)


def view(node_id, n_jobs, capacity=4, mean_speedup=1.0, fairness=1.0):
    return NodeView(node_id, n_jobs, capacity, mean_speedup, fairness)


class TestPlacementPolicies:
    def test_registry(self):
        assert set(placement_names()) == {
            "round_robin",
            "least_loaded",
            "contention_aware",
            "slo_aware",
        }
        with pytest.raises(ClusterError, match="unknown placement"):
            make_placement("nope")

    def test_round_robin_cycles_and_skips_full(self):
        policy = RoundRobinPlacement()
        nodes = [view(0, 0), view(1, 4), view(2, 0)]  # node 1 full
        assert [policy.place(nodes) for _ in range(4)] == [0, 2, 0, 2]

    def test_least_loaded_prefers_emptiest(self):
        policy = LeastLoadedPlacement()
        assert policy.place([view(0, 3), view(1, 1), view(2, 2)]) == 1

    def test_contention_aware_prefers_uncontended(self):
        policy = ContentionAwarePlacement()
        nodes = [view(0, 1, mean_speedup=0.6), view(1, 2, mean_speedup=0.9)]
        assert policy.place(nodes) == 1

    def test_contention_aware_tie_breaks_by_load(self):
        policy = ContentionAwarePlacement()
        nodes = [view(0, 3, mean_speedup=0.8), view(1, 1, mean_speedup=0.8)]
        assert policy.place(nodes) == 1

    def test_full_cluster_raises(self):
        for name in placement_names():
            with pytest.raises(ClusterError, match="no free capacity"):
                make_placement(name).place([view(0, 4), view(1, 4)])


class TestServerNode:
    def test_capacity_from_catalog(self, catalog4):
        node = ServerNode(0, catalog4)
        assert node.capacity == node_capacity(catalog4) >= 2

    def test_add_remove_and_instance_names(self, catalog4, registry):
        node = ServerNode(0, catalog4, capacity=3)
        node.add_job(JobArrival(7, registry.get("canneal"), 0))
        assert node.has_job(7)
        assert node.workload_of(7).name == instance_name("canneal", 7) == "canneal#7"
        node.remove_job(7)
        assert not node.has_job(7)
        with pytest.raises(ClusterError):
            node.remove_job(7)

    def test_duplicate_copies_of_a_benchmark_coexist(self, catalog4, registry):
        node = ServerNode(0, catalog4, capacity=3)
        node.add_job(JobArrival(0, registry.get("canneal"), 0))
        node.add_job(JobArrival(1, registry.get("canneal"), 0))
        mix = node.mix()
        assert mix.names == ("canneal#0", "canneal#1")

    def test_full_node_rejects(self, catalog4, registry):
        node = ServerNode(0, catalog4, capacity=1)
        node.add_job(JobArrival(0, registry.get("canneal"), 0))
        with pytest.raises(ClusterError, match="full"):
            node.add_job(JobArrival(1, registry.get("vips"), 0))

    def test_mix_needs_two_jobs(self, catalog4, registry):
        node = ServerNode(0, catalog4)
        with pytest.raises(ClusterError, match=">= 2"):
            node.mix()

    def test_capacity_cannot_exceed_catalog(self, catalog4):
        with pytest.raises(ClusterError, match="exceeds"):
            ServerNode(0, catalog4, capacity=node_capacity(catalog4) + 1)

    def test_epoch_spec_carries_environment(self, catalog4, registry):
        node = ServerNode(0, catalog4, capacity=3)
        node.add_job(JobArrival(0, registry.get("canneal"), 0))
        node.add_job(JobArrival(1, registry.get("vips"), 0))
        spec = node.epoch_spec("EqualPartition", TINY, seed=42)
        assert spec.seed == 42
        assert spec.mix.names == ("canneal#0", "vips#1")
        assert spec.catalog == catalog4


class TestClusterSimulator:
    def run_tiny(self, **kwargs):
        defaults = dict(
            trace=tiny_trace(),
            n_nodes=2,
            placement="round_robin",
            policy="EqualPartition",
            catalog=experiment_catalog(4),
            epoch_config=TINY,
            seed=1,
        )
        defaults.update(kwargs)
        return ClusterSimulator(**defaults).run()

    def test_covers_every_node_and_epoch(self):
        result = self.run_tiny()
        coords = {(r.epoch, r.node_id) for r in result.records}
        assert coords == {(e, n) for e in range(2) for n in range(2)}

    def test_synthesized_epochs_score_isolation(self):
        # A 1-node cluster with a single resident job: nothing to
        # partition, so every epoch is synthesized at speedup 1.0.
        registry = default_registry()
        trace = ArrivalTrace(
            n_epochs=2, jobs=(JobArrival(0, registry.get("canneal"), 0),)
        )
        result = self.run_tiny(trace=trace, n_nodes=1)
        assert all(r.synthesized for r in result.records)
        assert result.job_mean_speedups() == {0: 1.0}
        assert result.fairness == 1.0

    def test_deterministic(self):
        first = self.run_tiny()
        second = self.run_tiny()
        assert first.job_mean_speedups() == second.job_mean_speedups()
        assert first.records == second.records

    def test_step_epoch_loop_matches_run(self):
        """The control-flow inversion's acceptance test: ``run()`` is a
        thin loop over ``step_epoch()``, so driving the epochs manually
        must reproduce the monolithic result bit-identically."""
        monolithic = self.run_tiny()

        sim = ClusterSimulator(
            trace=tiny_trace(),
            n_nodes=2,
            placement="round_robin",
            policy="EqualPartition",
            catalog=experiment_catalog(4),
            epoch_config=TINY,
            seed=1,
        )
        records = []
        while not sim.finished:
            assert sim.epoch == len(records) // 2  # two nodes per epoch
            records.extend(sim.step_epoch())
        stepped = sim.result()

        assert tuple(records) == stepped.records
        assert stepped.records == monolithic.records
        assert stepped == monolithic

    def test_run_resumes_after_manual_steps(self):
        """Mixed driving — step one epoch by hand, then ``run()`` the
        rest — still lands on the monolithic result."""
        monolithic = self.run_tiny()
        sim = ClusterSimulator(
            trace=tiny_trace(),
            n_nodes=2,
            placement="round_robin",
            policy="EqualPartition",
            catalog=experiment_catalog(4),
            epoch_config=TINY,
            seed=1,
        )
        sim.step_epoch()
        assert sim.run() == monolithic

    def test_node_epoch_seeds_are_placement_independent(self):
        # The seed is a function of (cluster seed, node, epoch) only —
        # the pairing guarantee across placement cells.
        assert derive_seed(1, "node", 0, "epoch", 2) == derive_seed(1, "node", 0, "epoch", 2)
        assert derive_seed(1, "node", 0, "epoch", 2) != derive_seed(1, "node", 1, "epoch", 2)

    def test_identical_placements_give_identical_results(self):
        by_rr = self.run_tiny(placement="round_robin")
        by_ll = self.run_tiny(placement="least_loaded")
        # With a fresh 2-node fleet and alternating arrivals these two
        # policies route identically, so paired seeding must make the
        # results bit-identical.
        if {r.job_ids for r in by_rr.records} == {r.job_ids for r in by_ll.records}:
            assert by_rr.job_mean_speedups() == by_ll.job_mean_speedups()

    def test_rejection_when_cluster_full(self):
        registry = default_registry()
        jobs = tuple(
            JobArrival(i, registry.get(name), 0)
            for i, name in enumerate(["canneal", "vips", "streamcluster"])
        )
        result = self.run_tiny(
            trace=ArrivalTrace(n_epochs=1, jobs=jobs), n_nodes=1, node_capacity=2
        )
        assert len(result.rejected_jobs) == 1

    def test_migration_moves_job_off_unfair_node(self):
        registry = default_registry()
        # Both initial jobs land on node 0 (arrival order + round robin
        # alternates, so pin them by capacity: node 0 takes 2, node 1
        # idle at first epoch); with threshold 1.0 and patience 1 any
        # simulated fairness < 1.0 triggers a migration at epoch 1.
        jobs = (
            JobArrival(0, registry.get("canneal"), 0, departure_epoch=None),
            JobArrival(1, registry.get("vips"), 0, departure_epoch=None),
            JobArrival(2, registry.get("streamcluster"), 0, departure_epoch=None),
        )
        trace = ArrivalTrace(n_epochs=3, jobs=jobs)
        result = self.run_tiny(
            trace=trace,
            n_nodes=2,
            migration=MigrationConfig(fairness_threshold=1.0, patience=1),
        )
        assert result.migrations >= 1

    def test_fault_plan_node_ids_validated(self):
        plans = node_fault_plans(4, intensity=0.5, epoch_duration_s=1.0)
        assert set(plans) == {0, 2}
        with pytest.raises(ClusterError, match="unknown node ids"):
            ClusterSimulator(
                tiny_trace(), n_nodes=2, node_fault_plans={5: plans[0]}
            )

    def test_bad_configs_rejected(self):
        with pytest.raises(ClusterError, match="at least one node"):
            ClusterSimulator(tiny_trace(), n_nodes=0)
        with pytest.raises(ClusterError, match="catalogs for"):
            ClusterSimulator(
                tiny_trace(), n_nodes=2, catalogs=[experiment_catalog(4)]
            )
        with pytest.raises(ClusterError):
            MigrationConfig(fairness_threshold=0.0)
        with pytest.raises(ClusterError):
            MigrationConfig(patience=0)


class TestClusterSweep:
    def test_cells_and_lookup(self):
        trace = tiny_trace()
        engine = ExecutionEngine()
        sweep = cluster_sweep(
            trace,
            n_nodes=2,
            placements=("round_robin", "least_loaded"),
            policies=("EqualPartition",),
            catalog=experiment_catalog(4),
            epoch_config=TINY,
            seed=1,
            engine=engine,
        )
        assert sweep.placements() == ("round_robin", "least_loaded")
        assert sweep.policies() == ("EqualPartition",)
        cell = sweep.cell("round_robin", "EqualPartition")
        assert np.isfinite(cell.result.mean_speedup)
        assert 0.0 < cell.result.fairness <= 1.0
        with pytest.raises(ClusterError, match="no cell"):
            sweep.cell("round_robin", "SATORI")
        # Node-epoch runs flowed through the shared engine.
        assert engine.stats.submitted > 0

    def test_empty_axes_rejected(self):
        with pytest.raises(ClusterError):
            cluster_sweep(tiny_trace(), n_nodes=2, placements=())
        with pytest.raises(ClusterError):
            cluster_sweep(tiny_trace(), n_nodes=2, policies=())

    def test_default_trace_admission_controlled(self):
        catalog = experiment_catalog(4)
        trace = default_trace(
            n_epochs=3, n_nodes=2, arrival_rate=10.0, catalog=catalog, suite="ecp"
        )
        capacity = node_capacity(catalog)
        assert trace.peak_jobs <= 2 * capacity
        assert len(trace.active_at(0)) >= 2  # warm start

    @pytest.mark.slow
    def test_satori_vs_static_under_faults(self):
        # The acceptance-criteria configuration at reduced scale:
        # satori vs static, two placements, paired node fault plans.
        trace = default_trace(
            n_epochs=2, n_nodes=2, arrival_rate=1.0, seed=5,
            catalog=experiment_catalog(4), suite="ecp",
        )
        sweep = cluster_sweep(
            trace,
            n_nodes=2,
            placements=("round_robin", "least_loaded"),
            policies=("SATORI", "EqualPartition"),
            catalog=experiment_catalog(4),
            epoch_config=RunConfig(duration_s=2.0),
            seed=5,
            fault_intensity=0.5,
        )
        assert len(sweep.cells) == 4
        for cell in sweep.cells:
            assert np.isfinite(cell.result.mean_speedup)
            assert np.isfinite(cell.result.fairness)
