"""Unit tests for the simulated pqos monitor."""

import numpy as np
import pytest

from repro.errors import HardwareError
from repro.hardware.pqos import DEFAULT_SAMPLE_HZ, PqosMonitor


class TestPqosMonitor:
    def test_sample_interval(self):
        assert PqosMonitor().sample_interval_s == pytest.approx(1.0 / DEFAULT_SAMPLE_HZ)

    def test_noiseless_passthrough(self):
        monitor = PqosMonitor(noise_sigma=0.0)
        samples = monitor.observe([1e9, 2e9], 0.1)
        assert [s.ips for s in samples] == [1e9, 2e9]

    def test_instructions_consistent_with_ips(self):
        monitor = PqosMonitor(noise_sigma=0.0)
        (sample,) = monitor.observe([5e9], 0.1)
        assert sample.instructions == pytest.approx(5e8)

    def test_noise_is_multiplicative_and_bounded(self):
        monitor = PqosMonitor(noise_sigma=0.02, rng=1)
        values = [monitor.observe([1e9], 0.1)[0].ips for _ in range(500)]
        ratios = np.array(values) / 1e9
        assert 0.99 < ratios.mean() < 1.01
        assert 0.01 < ratios.std() < 0.04

    def test_deterministic_given_seed(self):
        a = PqosMonitor(noise_sigma=0.05, rng=42).observe([1e9, 2e9], 0.1)
        b = PqosMonitor(noise_sigma=0.05, rng=42).observe([1e9, 2e9], 0.1)
        assert [s.ips for s in a] == [s.ips for s in b]

    def test_job_indices(self):
        samples = PqosMonitor(rng=0).observe([1e9, 2e9, 3e9], 0.1)
        assert [s.job for s in samples] == [0, 1, 2]

    def test_optional_telemetry_defaults_zero(self):
        (sample,) = PqosMonitor(rng=0).observe([1e9], 0.1)
        assert sample.llc_occupancy_bytes == 0.0
        assert sample.memory_bandwidth_bytes_s == 0.0

    def test_telemetry_passthrough(self):
        monitor = PqosMonitor(noise_sigma=0.0)
        (sample,) = monitor.observe(
            [1e9], 0.1, llc_occupancy_bytes=[2**20], memory_bandwidth_bytes_s=[3e9]
        )
        assert sample.llc_occupancy_bytes == 2**20
        assert sample.memory_bandwidth_bytes_s == 3e9

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(HardwareError):
            PqosMonitor().observe([1e9, 2e9], 0.1, llc_occupancy_bytes=[1.0])

    def test_non_positive_interval_rejected(self):
        with pytest.raises(HardwareError):
            PqosMonitor().observe([1e9], 0.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(HardwareError):
            PqosMonitor(noise_sigma=-0.1)

    def test_ips_never_negative(self):
        monitor = PqosMonitor(noise_sigma=0.5, rng=3)
        for _ in range(100):
            assert monitor.observe([1e3], 0.1)[0].ips >= 0.0
