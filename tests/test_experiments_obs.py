"""Tests for the overhead self-measurement pipeline (repro.experiments.obs)."""

import pytest

from repro.experiments.obs import (
    DecisionBudget,
    ObsReport,
    SpanStat,
    observed_overhead,
    summarize_collector,
)
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.obs import ManualClock, TraceCollector
from repro.workloads.mixes import suite_mixes


def synthetic_collector() -> TraceCollector:
    """Two control intervals with exactly known span durations (1 us ticks)."""
    collector = TraceCollector(clock=ManualClock(step_ns=1000))
    for _ in range(2):
        with collector.span("interval", "session"):
            with collector.span("decide", "controller"):
                with collector.span("suggest", "bo"):
                    with collector.span("gp_fit", "bo"):
                        pass
                    with collector.span("acquisition", "bo"):
                        pass
            with collector.span("actuation", "server"):
                pass
    collector.metrics.counter("gp.chol_extended").inc(2)
    return collector


def synthetic_report() -> ObsReport:
    return summarize_collector(
        synthetic_collector(),
        mix_label="mix",
        policy_name="SATORI",
        control_interval_ms=100.0,
        idle_detection=False,
        idle_fraction=0.0,
        mean_decision_time_ms=0.5,
    )


class TestBudgetArithmetic:
    def test_totals_from_known_clock(self):
        budget = synthetic_report().budget
        assert budget.n_intervals == 2
        # ManualClock: every clock read is 1 us, so a span's duration is
        # (2 * nested clock reads + 1) us; gp_fit and acquisition are leaves.
        assert budget.gp_fit_ms == pytest.approx(2 * 1e-3)
        assert budget.acquisition_ms == pytest.approx(2 * 1e-3)
        assert budget.actuation_ms == pytest.approx(2 * 1e-3)
        assert budget.suggest_ms > budget.gp_fit_ms + budget.acquisition_ms
        assert budget.decide_ms > budget.suggest_ms

    def test_derived_quantities_consistent(self):
        budget = synthetic_report().budget
        assert budget.overhead_ms == pytest.approx(
            budget.suggest_ms + budget.actuation_ms
        )
        assert budget.bookkeeping_ms == pytest.approx(
            budget.decide_ms - budget.suggest_ms
        )
        assert budget.component_ms == pytest.approx(
            budget.gp_fit_ms + budget.acquisition_ms + budget.actuation_ms
        )
        assert 0.0 < budget.span_coverage <= 1.0
        assert budget.mean_overhead_ms == pytest.approx(budget.overhead_ms / 2)
        assert budget.overhead_fraction_of_interval == pytest.approx(
            budget.mean_overhead_ms / 100.0
        )

    def test_empty_budget_is_well_formed(self):
        budget = DecisionBudget(
            n_intervals=0, control_interval_ms=100.0, decide_ms=0.0,
            suggest_ms=0.0, gp_fit_ms=0.0, acquisition_ms=0.0, actuation_ms=0.0,
        )
        assert budget.span_coverage == 0.0
        assert budget.mean_overhead_ms == 0.0
        assert budget.bookkeeping_ms == 0.0


class TestReportSerialization:
    def test_round_trip(self):
        report = synthetic_report()
        assert ObsReport.from_dict(report.to_dict()) == report

    def test_round_trip_through_json(self):
        import json

        report = synthetic_report()
        payload = json.loads(json.dumps(report.to_dict()))
        assert ObsReport.from_dict(payload) == report

    def test_counter_lookup(self):
        report = synthetic_report()
        assert report.counter("gp.chol_extended") == 2.0
        assert report.counter("missing") == 0.0

    def test_span_stats_aggregate_by_name(self):
        report = synthetic_report()
        by_name = {s.name: s for s in report.span_stats}
        assert by_name["gp_fit"].count == 2
        assert by_name["gp_fit"].total_ms == pytest.approx(2e-3)
        assert by_name["gp_fit"].mean_ms == pytest.approx(1e-3)
        assert isinstance(by_name["gp_fit"], SpanStat)


class TestObservedOverhead:
    @pytest.fixture(scope="class")
    def outcome(self):
        catalog = experiment_catalog(4)
        mix = suite_mixes("ecp")[0]
        return observed_overhead(
            mix, catalog, RunConfig(duration_s=3.0), seed=0
        )

    def test_span_coverage_meets_acceptance_floor(self, outcome):
        report, _ = outcome
        # Acceptance criterion: gp_fit + acquisition + actuation explain
        # >= 90% of the measured decision latency.
        assert report.budget.span_coverage >= 0.9

    def test_budget_populated_from_live_run(self, outcome):
        report, collector = outcome
        budget = report.budget
        assert budget.n_intervals > 0
        assert budget.gp_fit_ms > 0 and budget.acquisition_ms > 0
        assert budget.actuation_ms > 0
        assert report.n_events == len(collector.events)
        assert report.counter("gp.chol_extended") > 0

    def test_cross_check_against_controller_accounting(self, outcome):
        report, _ = outcome
        # The controller's own perf_counter mean and the span-derived
        # decide total measure the same code path independently.
        span_mean_ms = report.budget.decide_ms / report.budget.n_intervals
        assert span_mean_ms == pytest.approx(report.mean_decision_time_ms, rel=0.5)

    def test_live_report_round_trips(self, outcome):
        report, _ = outcome
        assert ObsReport.from_dict(report.to_dict()) == report
