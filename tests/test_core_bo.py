"""Tests for the BO engine and initial configuration sets."""

import numpy as np
import pytest

from repro.core.bo import BayesianOptimizer
from repro.core.initializers import good_initial_set, tilt_toward
from repro.core.objective import GoalRecords
from repro.errors import ModelError
from repro.resources.space import ConfigurationSpace
from repro.resources.types import default_catalog
from repro.rng import make_rng


@pytest.fixture
def space():
    return ConfigurationSpace(default_catalog(6, 6, 6), 3)


def seeded_records(space, objective, n=8, seed=0):
    records = GoalRecords()
    rng = make_rng(seed)
    for _ in range(n):
        config = space.sample(rng)
        value = objective(config)
        records.add(config, space.encode(config), (value, value))
    return records


class TestInitializers:
    def test_contains_equal_partition_first(self, space):
        initial = good_initial_set(space, rng=0)
        assert initial[0] == space.equal_partition()

    def test_all_members(self, space):
        for config in good_initial_set(space, rng=0):
            assert space.contains(config)

    def test_deduplicated(self, space):
        initial = good_initial_set(space, rng=0)
        assert len(set(initial)) == len(initial)

    def test_size_includes_tilts_and_randoms(self, space):
        initial = good_initial_set(space, n_random=2, rng=0)
        # equal + up to n_jobs tilts + 2 randoms, deduplicated
        assert len(initial) <= 1 + space.n_jobs + 2
        assert len(initial) >= space.n_jobs  # tilts are distinct from equal

    def test_tilt_gives_job_more(self, space):
        equal = space.equal_partition()
        tilted = tilt_toward(space, equal, job=1)
        for name in space.resource_names:
            assert tilted.units(name)[1] >= equal.units(name)[1]
        assert space.contains(tilted)


class TestBayesianOptimizer:
    def test_requires_samples(self, space):
        bo = BayesianOptimizer(space, rng=0)
        with pytest.raises(ModelError):
            bo.suggest(GoalRecords(), (0.5, 0.5))

    def test_suggestion_is_member(self, space):
        bo = BayesianOptimizer(space, rng=0)
        records = seeded_records(space, lambda c: float(c.units("cores")[0]) / 6.0)
        suggestion = bo.suggest(records, (0.5, 0.5))
        assert space.contains(suggestion.config)

    def test_iteration_counter(self, space):
        bo = BayesianOptimizer(space, rng=0)
        records = seeded_records(space, lambda c: 0.5)
        bo.suggest(records, (0.5, 0.5))
        bo.suggest(records, (0.5, 0.5))
        assert bo.iteration == 2

    def test_incumbent_tracked(self, space):
        bo = BayesianOptimizer(space, rng=0)
        records = seeded_records(space, lambda c: float(c.units("cores")[0]) / 6.0)
        suggestion = bo.suggest(records, (1.0, 0.0))
        expected = records.objective_values((1.0, 0.0)).max()
        assert suggestion.incumbent_value == pytest.approx(expected)

    def test_proxy_change_zero_first_then_finite(self, space):
        bo = BayesianOptimizer(space, rng=0)
        records = seeded_records(space, lambda c: float(c.units("cores")[0]) / 6.0)
        first = bo.suggest(records, (0.5, 0.5))
        assert first.proxy_change_percent == 0.0
        second = bo.suggest(records, (0.6, 0.4))
        assert np.isfinite(second.proxy_change_percent)

    def test_converges_on_easy_landscape(self, space):
        """BO should find a near-optimal config of a monotone objective."""

        def objective(config):
            return sum(config.units(name)[0] for name in space.resource_names) / 18.0

        bo = BayesianOptimizer(space, rng=1, candidate_pool_size=64)
        records = seeded_records(space, objective, n=3, seed=1)
        for _ in range(30):
            suggestion = bo.suggest(records, (0.5, 0.5))
            value = objective(suggestion.config)
            records.add(suggestion.config, space.encode(suggestion.config), (value, value))
        best, best_value = records.best((0.5, 0.5))
        # Optimum gives job 0 everything: (4+4+4)/18 with min_units=1 -> 12/18.
        assert best_value >= 0.6

    def test_invalid_pool_size(self, space):
        with pytest.raises(ModelError):
            BayesianOptimizer(space, candidate_pool_size=0)

    def test_deterministic_given_seed(self, space):
        records = seeded_records(space, lambda c: float(c.units("cores")[0]))
        a = BayesianOptimizer(space, rng=5).suggest(records, (0.5, 0.5))
        b = BayesianOptimizer(space, rng=5).suggest(records, (0.5, 0.5))
        assert a.config == b.config
