"""Paired bit-identity tests for the batched evaluation core.

The batched data path (DESIGN.md "Batched evaluation core") promises
that every vectorized entry point — :class:`PhaseVector`,
:func:`evaluate_system_batch`, :meth:`CoLocationSimulator.true_ips_batch`,
:meth:`OracleSearch.evaluate_batch` — is *bit-identical* to a loop of
the scalar calls it replaced, and that the digest-addressed blob
transport and cross-epoch speculation return the same results as the
plain pickle/blocking paths. These tests pin each pairing with exact
(``==`` / ``np.array_equal``) comparisons, not tolerances.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSimulator, RecoveryConfig
from repro.engine import ExecutionEngine, RunError, RunSpec
from repro.engine.blobs import SpecRef, hydrate_mix
from repro.faults import NodeFaultPlan
from repro.faults.plan import FaultPlan
from repro.faults.schedule import FaultSchedule
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.obs import TraceCollector, use_collector
from repro.policies.oracle import OracleSearch
from repro.resources.space import ConfigurationSpace
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH
from repro.system.contention import evaluate_system, evaluate_system_batch
from repro.system.simulation import CoLocationSimulator
from repro.workloads.arrivals import poisson_trace
from repro.workloads.mixes import mix_from_names
from repro.workloads.model import Phase, PhaseVector

#: Fast methodology for engine-level paired runs.
FAST = RunConfig(duration_s=2.0, interval_s=0.1, baseline_reset_s=1.0)

#: Tiny methodology for cluster-level paired runs.
TINY = RunConfig(duration_s=1.0, baseline_reset_s=0.5)

MIX = mix_from_names(["canneal", "fluidanimate", "streamcluster"])
CATALOG = experiment_catalog(units=6)
SPACE = ConfigurationSpace(CATALOG, len(MIX))

#: A plan that keeps faults firing throughout the short test runs.
BUSY_FAULTS = FaultPlan(
    actuation_fail_rate=0.5,
    sample_drop_rate=0.3,
    sample_outlier_rate=0.3,
    crash_rate=0.2,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
times = st.floats(min_value=0.0, max_value=40.0, allow_nan=False)


def sample_configs(seed: int, n: int, with_none: bool = True):
    """A mixed batch: sampled configs plus the unmanaged (None) server."""
    rng = np.random.default_rng(seed)
    configs = list(SPACE.sample_batch(n, rng))
    if with_none:
        configs.insert(len(configs) // 2, None)
    return configs


# -- configuration space --------------------------------------------------


class TestSpacePairing:
    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_sample_loop_matches_batch(self, seed):
        """n scalar sample() calls == one sample_batch(n), same stream.

        The vectorized sampler draws its uniform keys row-major, so a
        loop of scalar draws consumes the identical RNG stream — the
        configurations must match exactly, not just in distribution.
        """
        n = 1 + seed % 12
        batch = SPACE.sample_batch(n, np.random.default_rng(seed))
        rng = np.random.default_rng(seed)
        looped = [SPACE.sample(rng) for _ in range(n)]
        assert looped == batch
        for config in batch:
            assert SPACE.contains(config)

    def test_single_job_space(self):
        space = ConfigurationSpace(CATALOG, 1)
        batch = space.sample_batch(3, np.random.default_rng(0))
        for config in batch:
            assert space.contains(config)
            for resource in CATALOG:
                assert config.units(resource.name) == (resource.units,)

    def test_empty_batch(self):
        assert SPACE.sample_batch(0, np.random.default_rng(0)) == []

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_encode_loop_matches_encode_batch(self, seed):
        configs = sample_configs(seed, 1 + seed % 8, with_none=False)
        batch = SPACE.encode_batch(configs)
        assert batch.shape == (len(configs), SPACE.dimensions)
        for row, config in zip(batch, configs):
            assert np.array_equal(row, SPACE.encode(config))

    def test_encode_batch_empty(self):
        empty = SPACE.encode_batch([])
        assert empty.shape == (0, SPACE.dimensions)

    def test_encode_batch_rejects_foreign_config(self):
        from repro.errors import SpaceError

        other = ConfigurationSpace(experiment_catalog(units=8), len(MIX))
        configs = sample_configs(0, 2, with_none=False)
        bad = other.sample_batch(1, np.random.default_rng(1))[0]
        with pytest.raises(SpaceError):
            SPACE.encode_batch(configs + [bad])


# -- workload models ------------------------------------------------------


class TestPhaseVectorPairing:
    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_ips_matches_scalar_loop(self, seed):
        """PhaseVector.ips row j == Phase.ips of job j, bit for bit."""
        rng = np.random.default_rng(seed)
        n_jobs = int(rng.integers(1, 6))
        phases = [
            Phase(
                ips_per_core=float(rng.uniform(0.5e9, 4e9)),
                parallel_fraction=float(rng.uniform(0.0, 1.0)),
                working_set_bytes=float(rng.uniform(1e6, 64e6)),
                miss_peak=float(rng.uniform(0.02, 0.2)),
                miss_floor=float(rng.uniform(0.0, 0.02)),
                stream_bytes_per_instr=float(rng.uniform(0.0, 4.0)),
                latency_sensitivity=float(rng.uniform(0.0, 1.0)),
            )
            for _ in range(n_jobs)
        ]
        cores = rng.uniform(1.0, 8.0, size=n_jobs)
        cache = rng.uniform(1e6, 32e6, size=n_jobs)
        bandwidth = rng.uniform(1e9, 30e9, size=n_jobs)

        vector = PhaseVector.from_phases(phases)
        batched = vector.ips(cores, cache, bandwidth)
        scalar = np.array(
            [p.ips(c, k, b) for p, c, k, b in zip(phases, cores, cache, bandwidth)]
        )
        assert np.array_equal(batched, scalar)

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_miss_rate_matches_scalar_loop(self, seed):
        rng = np.random.default_rng(seed)
        phases = [w.phase_at(0.0) for w in MIX]
        cache = rng.uniform(1e6, 32e6, size=len(MIX))
        vector = PhaseVector.from_phases(phases)
        batched = vector.miss_rate(cache)
        scalar = np.array([p.miss_rate(k) for p, k in zip(phases, cache)])
        assert np.array_equal(batched, scalar)


# -- contention model -----------------------------------------------------


class TestSystemBatchPairing:
    @given(seed=seeds, t=times)
    @settings(max_examples=20, deadline=None)
    def test_mixed_batch_matches_scalar_loop(self, seed, t):
        """Grouped-by-signature batch == per-config evaluate_system."""
        configs = sample_configs(seed, n=5)
        batch = evaluate_system_batch(MIX, CATALOG, configs, t)
        for i, config in enumerate(configs):
            scalar = evaluate_system(MIX, CATALOG, config, t)
            assert np.array_equal(batch.ips[i], scalar.ips)
            assert np.array_equal(
                batch.llc_occupancy_bytes[i], scalar.llc_occupancy_bytes
            )
            assert np.array_equal(
                batch.memory_bandwidth_bytes_s[i], scalar.memory_bandwidth_bytes_s
            )

    def test_empty_batch(self):
        batch = evaluate_system_batch(MIX, CATALOG, [], 0.0)
        assert batch.ips.shape == (0, len(MIX))


# -- simulator ------------------------------------------------------------


class TestSimulatorBatchPairing:
    def simulator(self, fault_schedule=None):
        return CoLocationSimulator(
            MIX,
            catalog=CATALOG,
            control_interval_s=0.1,
            noise_sigma=0.02,
            seed=11,
            fault_schedule=fault_schedule,
        )

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_true_ips_batch_matches_loop(self, seed):
        sim = self.simulator()
        configs = sample_configs(seed, n=4)
        batched = sim.true_ips_batch(configs)
        scalar = np.stack([sim.true_ips(config) for config in configs])
        assert np.array_equal(batched, scalar)

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_batch_matches_loop_under_active_faults(self, seed):
        """Stepping under a busy fault schedule must not skew the pairing."""
        schedule = FaultSchedule.generate(
            BUSY_FAULTS, n_jobs=len(MIX), duration_s=2.0, interval_s=0.1, seed=3
        )
        sim = self.simulator(fault_schedule=schedule)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            sim.apply(SPACE.sample(rng))
            sim.step()
        configs = sample_configs(seed, n=4)
        batched = sim.true_ips_batch(configs)
        scalar = np.stack([sim.true_ips(config) for config in configs])
        assert np.array_equal(batched, scalar)


# -- oracle ---------------------------------------------------------------


class TestOracleBatchPairing:
    @given(seed=seeds, t=times)
    @settings(max_examples=15, deadline=None)
    def test_evaluate_batch_matches_scalar_loop(self, seed, t):
        search = OracleSearch(MIX, CATALOG)
        rng = np.random.default_rng(seed)
        configs = list(search.space.sample_batch(6, rng))
        throughput, fairness = search.evaluate_batch(configs, t)
        for i, config in enumerate(configs):
            t_i, f_i = search.evaluate(config, t)
            assert throughput[i] == t_i
            assert fairness[i] == f_i

    def test_empty_batch(self):
        search = OracleSearch(MIX, CATALOG)
        throughput, fairness = search.evaluate_batch([], 0.0)
        assert throughput.shape == (0,) and fairness.shape == (0,)


# -- spec transport -------------------------------------------------------


def make_specs(n=4, policy="Random"):
    mixes = [mix_from_names(names) for names in (
        ["canneal", "fluidanimate"],
        ["streamcluster", "canneal"],
    )]
    return [
        RunSpec(
            mix=mixes[i % len(mixes)],
            policy=policy,
            catalog=CATALOG,
            run_config=FAST,
            seed=3 + i,
        )
        for i in range(n)
    ]


class TestBlobTransport:
    def test_blob_pool_matches_pickle_pool_and_serial(self):
        """All three transports produce identical RunResults."""
        specs = make_specs(4)
        with ExecutionEngine(workers=1) as engine:
            serial = engine.run(specs)
        with ExecutionEngine(workers=2, spec_transport="blob") as engine:
            blob = engine.run(specs)
        with ExecutionEngine(workers=2, spec_transport="pickle") as engine:
            pickle_ = engine.run(specs)
        for a, b, c in zip(serial, blob, pickle_):
            assert a.to_dict() == b.to_dict() == c.to_dict()

    def test_invalid_transport_rejected(self):
        with pytest.raises(Exception):
            ExecutionEngine(workers=2, spec_transport="carrier-pigeon")

    def test_hydrated_spec_preserves_digests(self, tmp_path):
        spec = make_specs(1)[0]
        blob = tmp_path / f"{spec.mix_digest}.pkl"
        import pickle

        blob.write_bytes(pickle.dumps(spec.mix))
        ref = SpecRef.from_spec(spec, str(blob))
        rebuilt, _hit = ref.hydrate()
        assert rebuilt == spec
        assert rebuilt.digest == spec.digest
        assert rebuilt.cold_digest == spec.cold_digest
        assert rebuilt.environment_digest == spec.environment_digest
        assert rebuilt.mix_digest == spec.mix_digest

    def test_hydrate_mix_caches_per_digest(self, tmp_path):
        spec = make_specs(1)[0]
        blob = tmp_path / f"{spec.mix_digest}.pkl"
        import pickle

        blob.write_bytes(pickle.dumps(spec.mix))
        first, hit_first = hydrate_mix(str(blob), spec.mix_digest)
        second, hit_second = hydrate_mix(str(blob), spec.mix_digest)
        assert hit_second and second is first

    def test_blob_store_counters(self):
        """One write per distinct mix, reuses after, hits in workers."""
        specs = make_specs(4)  # two distinct mixes, two specs each
        collector = TraceCollector()
        with use_collector(collector):
            with ExecutionEngine(workers=2, spec_transport="blob") as engine:
                engine.run(specs)
        counters = collector.metrics.counters()
        assert counters.get("engine.blob_store_writes") == 2
        assert counters.get("engine.blob_store_reuses") == 2
        hits = counters.get("engine.blob_cache_hits", 0)
        misses = counters.get("engine.blob_cache_misses", 0)
        assert hits + misses == len(specs)


class TestEngineCancel:
    def test_cancel_queued_future(self):
        spec = make_specs(1)[0]
        with ExecutionEngine(workers=1) as engine:
            future = engine.submit(spec)
            assert engine.cancel(future)
            outcome = future.outcome()
            assert isinstance(outcome, RunError)
            assert "cancelled" in outcome.error

    def test_cancel_resolved_future_is_noop(self):
        spec = make_specs(1)[0]
        with ExecutionEngine(workers=1) as engine:
            future = engine.submit(spec)
            result = future.result()
            assert not engine.cancel(future)
            assert future.result() is result

    def test_resubmit_after_cancel_runs_fresh(self):
        spec = make_specs(1)[0]
        with ExecutionEngine(workers=1) as engine:
            baseline = engine.run([spec])[0]
            cancelled = engine.submit(spec)
            engine.cancel(cancelled)
            fresh = engine.submit(spec).result()
        assert fresh.to_dict() == baseline.to_dict()


# -- cluster speculation --------------------------------------------------


def tiny_trace(n_epochs=3, seed=7, initial_jobs=4, rate=1.5, residency=2.0):
    return poisson_trace(
        n_epochs=n_epochs,
        arrival_rate=rate,
        mean_residency=residency,
        suites=("ecp",),
        seed=seed,
        initial_jobs=initial_jobs,
    )


def run_cluster(**kwargs):
    defaults = dict(
        trace=tiny_trace(),
        n_nodes=2,
        placement="round_robin",
        policy="EqualPartition",
        catalog=experiment_catalog(4),
        epoch_config=TINY,
        seed=1,
    )
    defaults.update(kwargs)
    return ClusterSimulator(**defaults).run()


class TestClusterSpeculation:
    def paired(self, **kwargs):
        baseline = run_cluster(speculate=False, **kwargs)
        speculative = run_cluster(speculate=True, **kwargs)
        assert dataclasses.asdict(speculative) == dataclasses.asdict(baseline)

    def test_results_identical_plain(self):
        self.paired()

    def test_results_identical_under_fleet_weather(self):
        """Speculation must stay paired with node crashes and stragglers."""
        self.paired(
            trace=tiny_trace(n_epochs=4),
            fleet_plans={
                0: NodeFaultPlan(crash_epoch=2, crash_rejoin_epochs=1),
                1: NodeFaultPlan(straggler_rate=0.4, flaky_rate=0.4),
            },
            recovery=RecoveryConfig(),
        )

    def test_results_identical_with_broker(self):
        self.paired(broker="harvest", recovery=RecoveryConfig())

    def test_stable_membership_yields_hits(self):
        """With no churn, every epoch after the first is predicted."""
        trace = tiny_trace(n_epochs=4, rate=0.0, residency=50.0, initial_jobs=8)
        collector = TraceCollector()
        with use_collector(collector):
            baseline = run_cluster(trace=trace, speculate=False)
        collector = TraceCollector()
        with use_collector(collector):
            speculative = run_cluster(trace=trace, speculate=True)
        counters = collector.metrics.counters()
        assert counters.get("cluster.speculative_submitted", 0) > 0
        assert counters.get("cluster.speculative_hits", 0) > 0
        assert dataclasses.asdict(speculative) == dataclasses.asdict(baseline)
