"""Unit tests for resources.allocation: Configuration and helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.resources.allocation import (
    Configuration,
    configuration_distance,
    equal_partition,
)
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH, default_catalog


@pytest.fixture
def config():
    return Configuration({CORES: (3, 3, 4), LLC_WAYS: (2, 4, 4), MEMORY_BANDWIDTH: (5, 3, 2)})


class TestConfigurationBasics:
    def test_n_jobs(self, config):
        assert config.n_jobs == 3

    def test_resource_names_sorted(self, config):
        assert config.resource_names == tuple(sorted(config.resource_names))

    def test_units(self, config):
        assert config.units(CORES) == (3, 3, 4)

    def test_units_unknown_resource_raises(self, config):
        with pytest.raises(ConfigurationError, match="not partitioned"):
            config.units("gpu")

    def test_partitions(self, config):
        assert config.partitions(CORES)
        assert not config.partitions("power")

    def test_job_allocation(self, config):
        assert config.job_allocation(2) == {CORES: 4, LLC_WAYS: 4, MEMORY_BANDWIDTH: 2}

    def test_job_allocation_out_of_range(self, config):
        with pytest.raises(ConfigurationError):
            config.job_allocation(3)

    def test_equality_and_hash(self, config):
        same = Configuration(
            {MEMORY_BANDWIDTH: (5, 3, 2), CORES: (3, 3, 4), LLC_WAYS: (2, 4, 4)}
        )
        assert config == same
        assert hash(config) == hash(same)

    def test_inequality(self, config):
        other = config.move_unit(CORES, 2, 0)
        assert config != other

    def test_usable_as_dict_key(self, config):
        assert {config: 1}[config] == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration({})

    def test_negative_units_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration({CORES: (3, -1, 4)})

    def test_mismatched_job_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration({CORES: (3, 3, 4), LLC_WAYS: (5, 5)})


class TestConfigurationTransforms:
    def test_move_unit(self, config):
        moved = config.move_unit(CORES, donor=2, receiver=0)
        assert moved.units(CORES) == (4, 3, 3)
        assert config.units(CORES) == (3, 3, 4)  # original untouched

    def test_move_unit_same_job_rejected(self, config):
        with pytest.raises(ConfigurationError):
            config.move_unit(CORES, 1, 1)

    def test_move_unit_from_empty_rejected(self):
        c = Configuration({CORES: (0, 10)})
        with pytest.raises(ConfigurationError):
            c.move_unit(CORES, 0, 1)

    def test_replace(self, config):
        replaced = config.replace(CORES, (5, 3, 2))
        assert replaced.units(CORES) == (5, 3, 2)

    def test_restrict(self, config):
        sub = config.restrict([LLC_WAYS])
        assert sub.resource_names == (LLC_WAYS,)
        assert sub.units(LLC_WAYS) == config.units(LLC_WAYS)

    def test_as_vector_order(self, config):
        vec = config.as_vector((CORES, LLC_WAYS))
        assert list(vec) == [3, 3, 4, 2, 4, 4]

    def test_shares(self, config):
        shares = config.shares(default_catalog())
        assert shares[CORES] == (0.3, 0.3, 0.4)


class TestValidation:
    def test_valid_configuration_passes(self, config):
        config.validate(default_catalog())

    def test_wrong_sum_rejected(self):
        bad = Configuration({CORES: (3, 3, 3)})
        with pytest.raises(ConfigurationError, match="allocates"):
            bad.validate(default_catalog().subset([CORES]))

    def test_below_min_units_rejected(self):
        bad = Configuration({CORES: (0, 5, 5)})
        with pytest.raises(ConfigurationError, match="min_units"):
            bad.validate(default_catalog().subset([CORES]))


class TestEqualPartition:
    def test_even_split(self):
        c = equal_partition(default_catalog(), 5)
        assert c.units(CORES) == (2, 2, 2, 2, 2)

    def test_remainder_goes_to_low_indices(self):
        c = equal_partition(default_catalog(), 3)
        assert c.units(CORES) == (4, 3, 3)

    def test_sum_preserved_all_resources(self):
        catalog = default_catalog()
        c = equal_partition(catalog, 7)
        for name in catalog.names:
            assert sum(c.units(name)) == catalog.get(name).units

    def test_too_many_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            equal_partition(default_catalog(), 11)

    def test_zero_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            equal_partition(default_catalog(), 0)


class TestDistance:
    def test_zero_for_identical(self, config):
        assert configuration_distance(config, config) == 0.0

    def test_single_move_distance(self, config):
        moved = config.move_unit(CORES, 2, 0)
        assert configuration_distance(config, moved) == pytest.approx(np.sqrt(2))

    def test_symmetric(self, config):
        moved = config.move_unit(LLC_WAYS, 1, 0).move_unit(CORES, 2, 1)
        assert configuration_distance(config, moved) == pytest.approx(
            configuration_distance(moved, config)
        )

    def test_mismatched_resources_rejected(self, config):
        other = config.restrict([CORES])
        with pytest.raises(ConfigurationError):
            configuration_distance(config, other)

    def test_mismatched_jobs_rejected(self, config):
        other = Configuration({name: config.units(name)[:2] for name in config.resource_names})
        with pytest.raises(ConfigurationError):
            configuration_distance(config, other)
