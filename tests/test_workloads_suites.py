"""Tests for the benchmark suite registries and job mixes (Tables I-III)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.mixes import SUITE_MIX_SIZE, JobMix, mix_from_names, suite_mixes
from repro.workloads.registry import WorkloadRegistry, default_registry, get_workload
from repro.workloads.synthetic import random_workload, random_workloads

PARSEC_NAMES = {
    "blackscholes",
    "canneal",
    "fluidanimate",
    "freqmine",
    "streamcluster",
    "swaptions",
    "vips",
}
CLOUDSUITE_NAMES = {
    "data_analytics",
    "graph_analytics",
    "in_memory_analytics",
    "media_streaming",
    "web_search",
}
ECP_NAMES = {"minife", "xsbench", "swfft", "amg", "hypre"}


class TestRegistry:
    def test_total_workload_count(self, registry):
        assert len(registry) == 17

    def test_suites(self, registry):
        assert set(registry.suites) == {"parsec", "cloudsuite", "ecp"}

    def test_parsec_names(self, registry):
        assert {w.name for w in registry.suite("parsec")} == PARSEC_NAMES

    def test_cloudsuite_names(self, registry):
        assert {w.name for w in registry.suite("cloudsuite")} == CLOUDSUITE_NAMES

    def test_ecp_names(self, registry):
        assert {w.name for w in registry.suite("ecp")} == ECP_NAMES

    def test_get_unknown_raises(self, registry):
        with pytest.raises(WorkloadError, match="unknown workload"):
            registry.get("doom")

    def test_unknown_suite_raises(self, registry):
        with pytest.raises(WorkloadError, match="unknown suite"):
            registry.suite("spec")

    def test_contains(self, registry):
        assert "canneal" in registry
        assert "doom" not in registry

    def test_default_registry_cached(self):
        assert default_registry() is default_registry()

    def test_get_workload_helper(self):
        assert get_workload("canneal").suite == "parsec"

    def test_descriptions_nonempty(self, registry):
        for name in registry.names:
            assert registry.get(name).description

    def test_every_workload_has_multiple_phases(self, registry):
        """Phase behaviour is required for the Fig. 1 drift phenomenon."""
        for name in registry.names:
            assert len(registry.get(name).schedule.segments) >= 2


class TestSuiteCharacters:
    """Sanity-check the qualitative characters the paper relies on."""

    def test_fluidanimate_is_core_sensitive(self, registry):
        p = registry.get("fluidanimate").phase_at(0.0).parallel_fraction
        assert p >= 0.95

    def test_canneal_is_cache_hungry_and_serial(self, registry):
        phase = registry.get("canneal").phase_at(0.0)
        assert phase.working_set_bytes > 8 * 2**20
        assert phase.parallel_fraction < 0.7

    def test_streamcluster_is_bandwidth_bound(self, registry):
        phase = registry.get("streamcluster").phase_at(0.0)
        assert phase.stream_bytes_per_instr > 1.5

    def test_swaptions_is_cache_resident(self, registry):
        phase = registry.get("swaptions").phase_at(0.0)
        assert phase.working_set_bytes < 2**20

    def test_minife_high_compute_and_llc(self, registry):
        phase = registry.get("minife").phase_at(0.0)
        assert phase.ips_per_core >= 2e9
        assert phase.working_set_bytes > 5 * 2**20

    def test_xsbench_latency_bound(self, registry):
        phase = registry.get("xsbench").phase_at(0.0)
        assert phase.miss_floor >= 0.005
        assert phase.latency_sensitivity >= 0.5

    def test_amg_hypre_similar_requirements(self, registry):
        """The paper notes AMG and Hypre have similar resource needs."""
        a = registry.get("amg").phase_at(0.0)
        h = registry.get("hypre").phase_at(0.0)
        assert abs(a.stream_bytes_per_instr - h.stream_bytes_per_instr) < 0.3
        assert abs(a.parallel_fraction - h.parallel_fraction) < 0.1


class TestMixes:
    def test_parsec_mix_count(self):
        assert len(suite_mixes("parsec")) == 21  # C(7,5)

    def test_cloudsuite_mix_count(self):
        assert len(suite_mixes("cloudsuite")) == 10  # C(5,3)

    def test_ecp_mix_count(self):
        assert len(suite_mixes("ecp")) == 10  # C(5,2)

    def test_default_sizes(self):
        assert SUITE_MIX_SIZE == {"parsec": 5, "cloudsuite": 3, "ecp": 2}

    def test_mix_sizes(self):
        assert all(len(m) == 5 for m in suite_mixes("parsec"))
        assert all(len(m) == 3 for m in suite_mixes("cloudsuite"))
        assert all(len(m) == 2 for m in suite_mixes("ecp"))

    def test_mixes_deterministic_order(self):
        assert [m.label for m in suite_mixes("ecp")] == [
            m.label for m in suite_mixes("ecp")
        ]

    def test_custom_mix_size(self):
        assert len(suite_mixes("parsec", mix_size=3)) == 35  # C(7,3)

    def test_oversized_mix_rejected(self):
        with pytest.raises(WorkloadError):
            suite_mixes("parsec", mix_size=8)

    def test_mix_from_names_cross_suite(self):
        mix = mix_from_names(["canneal", "amg"])
        assert mix.names == ("canneal", "amg")

    def test_duplicate_names_rejected(self, registry):
        with pytest.raises(WorkloadError):
            mix_from_names(["canneal", "canneal"], registry)

    def test_single_job_mix_rejected(self, registry):
        with pytest.raises(WorkloadError):
            JobMix((registry.get("canneal"),))

    def test_label(self):
        mix = mix_from_names(["amg", "hypre"])
        assert mix.label == "amg+hypre"

    def test_indexing_and_iteration(self):
        mix = mix_from_names(["amg", "hypre"])
        assert mix[0].name == "amg"
        assert [w.name for w in mix] == ["amg", "hypre"]


class TestSynthetic:
    def test_random_workload_valid(self):
        w = random_workload(rng=0)
        assert w.suite == "synthetic"
        assert w.schedule.period > 0

    def test_random_workloads_distinct_names(self):
        names = [w.name for w in random_workloads(5, rng=1)]
        assert len(set(names)) == 5

    def test_deterministic_given_seed(self):
        a = random_workload(rng=7).phase_at(0.0)
        b = random_workload(rng=7).phase_at(0.0)
        assert a.ips_per_core == b.ips_per_core

    def test_phase_count(self):
        w = random_workload(n_phases=4, rng=2)
        assert len(w.schedule.segments) == 4
