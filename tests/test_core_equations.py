"""Equation-level tests: the paper's formulas verified numerically."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquisition import ExpectedImprovement, ProbabilityOfImprovement
from repro.core.kernels import Matern52
from repro.core.weights import DynamicWeightScheduler
from repro.metrics.fairness import jain_index
from repro.metrics.throughput import weighted_mean_speedup


class TestEquation4Prioritization:
    """Eq. 4: W_TP = 1/4 + (1/2) * dF / (dT + dF)."""

    def make(self):
        # One-step prioritization period isolates Eq. 4 exactly.
        return DynamicWeightScheduler(
            interval_s=0.1,
            prioritization_period_s=0.1,
            equalization_period_s=1000.0,  # equalization negligible early
        )

    def test_exact_weights_for_known_deltas(self):
        scheduler = self.make()
        # Period 1: T 0.40 -> 0.44 (+10 %), F 0.80 -> 0.84 (+5 %).
        scheduler.update(0.40, 0.80)
        state = scheduler.update(0.44, 0.84)
        # At the boundary Eq. 4 gives W_TP = 0.25 + 0.5 * (5 / 15) = 5/12.
        expected_w_tp = 0.25 + 0.5 * (5.0 / 15.0)
        # With negligible equalization, the combined weight ~ W_TP.
        assert state.prioritization_throughput / (1 - state.equalization_fraction) == pytest.approx(
            expected_w_tp, abs=1e-6
        )

    def test_prioritization_bounds_are_quarter_and_three_quarters(self):
        scheduler = self.make()
        # Fairness improves hugely, throughput not at all.
        scheduler.update(0.40, 0.10)
        state = scheduler.update(0.40, 0.90)
        w_tp = state.prioritization_throughput / (1 - state.equalization_fraction)
        assert w_tp == pytest.approx(0.75, abs=1e-6)  # throughput gets the max

    def test_symmetric_improvement_gives_half(self):
        scheduler = self.make()
        scheduler.update(0.40, 0.80)
        state = scheduler.update(0.44, 0.88)  # both +10 %
        w_tp = state.prioritization_throughput / (1 - state.equalization_fraction)
        assert w_tp == pytest.approx(0.5, abs=1e-6)


class TestEquation3Equalization:
    """Eq. 3: W_TE = t_e/2 - sum(W_T so far) drives the long-run balance."""

    def test_equalization_corrects_accumulated_imbalance(self):
        scheduler = DynamicWeightScheduler(
            interval_s=0.1, prioritization_period_s=0.2, equalization_period_s=2.0
        )
        # Feed scores that keep fairness improving, biasing weight
        # toward throughput early in the period.
        weights = []
        for i in range(20):
            state = scheduler.update(0.4, 0.5 + 0.02 * i)
            weights.append(state.w_throughput)
        # The equalization component must pull the period mean to ~0.5.
        assert np.mean(weights) == pytest.approx(0.5, abs=0.06)

    def test_late_period_weights_counteract_early_bias(self):
        scheduler = DynamicWeightScheduler(
            interval_s=0.1, prioritization_period_s=0.2, equalization_period_s=2.0
        )
        weights = [scheduler.update(0.4, 0.5 + 0.02 * i).w_throughput for i in range(20)]
        early = np.mean(weights[:10])
        late = np.mean(weights[10:])
        if early > 0.5:
            assert late < early
        elif early < 0.5:
            assert late > early


class TestExpectedImprovementClosedForm:
    """EI's closed form must match a Monte Carlo estimate."""

    @given(
        mean=st.floats(min_value=-1.0, max_value=2.0),
        std=st.floats(min_value=0.05, max_value=1.0),
        best=st.floats(min_value=-0.5, max_value=1.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_ei_matches_monte_carlo(self, mean, std, best):
        ei = ExpectedImprovement(xi=0.0)
        closed = ei(np.array([mean]), np.array([std]), best)[0]
        rng = np.random.default_rng(42)
        draws = rng.normal(mean, std, size=200_000)
        monte_carlo = np.maximum(draws - best, 0.0).mean()
        assert closed == pytest.approx(monte_carlo, abs=0.01)

    @given(
        mean=st.floats(min_value=-1.0, max_value=2.0),
        std=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_pi_matches_monte_carlo(self, mean, std):
        best = 0.5
        pi = ProbabilityOfImprovement(xi=0.0)
        closed = pi(np.array([mean]), np.array([std]), best)[0]
        rng = np.random.default_rng(7)
        draws = rng.normal(mean, std, size=200_000)
        assert closed == pytest.approx((draws > best).mean(), abs=0.01)


class TestMatern52ClosedForm:
    def test_known_values(self):
        """k(r) = (1 + sqrt(5) r + 5 r^2 / 3) exp(-sqrt(5) r)."""
        kernel = Matern52(lengthscale=1.0, variance=1.0)
        for r in (0.0, 0.5, 1.0, 2.0):
            a = np.array([[0.0]])
            b = np.array([[r]])
            sqrt5r = np.sqrt(5) * r
            expected = (1 + sqrt5r + sqrt5r**2 / 3) * np.exp(-sqrt5r)
            assert kernel(a, b)[0, 0] == pytest.approx(expected, rel=1e-12)

    def test_lengthscale_rescales_distance(self):
        wide = Matern52(lengthscale=2.0)
        narrow = Matern52(lengthscale=1.0)
        a, b = np.array([[0.0]]), np.array([[1.0]])
        assert wide(a, b)[0, 0] == pytest.approx(
            narrow(np.array([[0.0]]), np.array([[0.5]]))[0, 0], rel=1e-12
        )


class TestMetricFormulas:
    def test_jain_matches_canonical_form(self):
        """Jain = (sum x)^2 / (n * sum x^2), equivalent to 1/(1+CoV^2)."""
        x = np.array([0.3, 0.5, 0.7, 0.2])
        canonical = x.sum() ** 2 / (len(x) * (x**2).sum())
        assert jain_index(x) == pytest.approx(canonical, rel=1e-12)

    def test_sum_ips_normalization(self):
        """sum-of-IPS throughput equals total IPS over total isolation IPS."""
        iso = np.array([2e9, 3e9])
        ips = np.array([1e9, 2.4e9])
        s = ips / iso
        assert weighted_mean_speedup(s, iso) == pytest.approx(ips.sum() / iso.sum(), rel=1e-12)
