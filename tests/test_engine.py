"""Execution-engine tests: spec identity, determinism, cache, drivers.

The engine's contract (DESIGN.md "Execution engine"):

* a :class:`RunSpec` fully determines its :class:`RunResult` — equal
  content means equal digest means bit-identical results;
* worker count, submission order, and completion order never change
  the results;
* the on-disk cache serves prior results without re-executing anything
  and invalidates itself when the code-version salt changes.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro.engine.engine as engine_module
from repro.engine import (
    CACHE_SCHEMA_VERSION,
    ExecutionEngine,
    RunCache,
    RunSpec,
    default_cache_salt,
    derive_seed,
    execute_run,
)
from repro.errors import EngineError, ExperimentError, PolicyError
from repro.experiments.comparison import compare_on_mix, compare_on_mixes, seed_to_int
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.workloads.mixes import suite_mixes

FAST = RunConfig(duration_s=2.0, interval_s=0.1, baseline_reset_s=1.0)


@pytest.fixture(scope="module")
def catalog():
    return experiment_catalog(units=6)


@pytest.fixture(scope="module")
def mixes():
    return suite_mixes("parsec", mix_size=2)[:4]


def spec(mix, catalog, policy="Random", **overrides):
    fields = dict(mix=mix, policy=policy, catalog=catalog, run_config=FAST, seed=3)
    fields.update(overrides)
    return RunSpec(**fields)


# -- RunSpec identity ----------------------------------------------------


class TestRunSpec:
    def test_equal_content_equal_digest(self, mixes, catalog):
        assert spec(mixes[0], catalog) == spec(mixes[0], catalog)
        assert spec(mixes[0], catalog).digest == spec(mixes[0], catalog).digest
        assert hash(spec(mixes[0], catalog)) == hash(spec(mixes[0], catalog))

    def test_any_field_changes_digest(self, mixes, catalog):
        base = spec(mixes[0], catalog)
        variants = [
            spec(mixes[1], catalog),
            spec(mixes[0], catalog, policy="PARTIES"),
            spec(mixes[0], catalog, seed=4),
            spec(mixes[0], catalog, goals=("hmean_speedup", "jain")),
            spec(mixes[0], catalog, run_config=dataclasses.replace(FAST, duration_s=3.0)),
            spec(mixes[0], catalog, policy_kwargs={"mode": "throughput"}),
            spec(mixes[0], experiment_catalog(units=4)),
        ]
        digests = {base.digest} | {v.digest for v in variants}
        assert len(digests) == len(variants) + 1

    def test_kwargs_order_is_canonical(self, mixes, catalog):
        a = spec(mixes[0], catalog, policy_kwargs={"a": 1, "b": 2})
        b = spec(mixes[0], catalog, policy_kwargs={"b": 2, "a": 1})
        assert a == b and a.digest == b.digest

    def test_kwargs_reject_non_plain_data(self, mixes, catalog):
        with pytest.raises(EngineError):
            spec(mixes[0], catalog, policy_kwargs={"kernel": object()})

    def test_spec_dict_is_json_round_trippable(self, mixes, catalog):
        d = spec(mixes[0], catalog, policy_kwargs={"resources": ("llc_ways",)}).to_dict()
        assert json.loads(json.dumps(d)) == d
        rebuilt = RunSpec.catalog_from_dict(d["catalog"])
        assert rebuilt == catalog

    def test_seed_for_streams_differ(self, mixes, catalog):
        s = spec(mixes[0], catalog)
        assert s.seed_for("policy") != s.seed_for("noise")
        assert s.seed_for("policy") == derive_seed(s.digest, "policy")

    def test_workers_validated(self):
        with pytest.raises(EngineError):
            ExecutionEngine(workers=0)


# -- determinism ---------------------------------------------------------


class TestDeterminism:
    @pytest.fixture(scope="class")
    def batch(self, mixes, catalog):
        specs = [
            spec(mix, catalog, policy=policy)
            for mix in mixes
            for policy in ("Random", "SATORI")
        ]
        serial = ExecutionEngine(workers=1).run(specs)
        return specs, serial

    def test_workers_do_not_change_results(self, batch):
        specs, serial = batch
        parallel = ExecutionEngine(workers=4).run(specs)
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    def test_submission_order_does_not_change_results(self, batch):
        specs, serial = batch
        shuffled = list(reversed(specs))
        results = ExecutionEngine(workers=4).run(shuffled)
        expected = list(reversed([r.to_dict() for r in serial]))
        assert [r.to_dict() for r in results] == expected

    def test_single_spec_matches_batch(self, batch):
        specs, serial = batch
        assert execute_run(specs[0]).to_dict() == serial[0].to_dict()

    def test_duplicates_coalesce(self, mixes, catalog):
        engine = ExecutionEngine()
        one = spec(mixes[0], catalog)
        a, b = engine.run([one, spec(mixes[0], catalog)])
        assert a.to_dict() == b.to_dict()
        assert engine.stats.submitted == 2
        assert engine.stats.executed == 1
        assert engine.stats.deduplicated == 1


# -- futures surface -----------------------------------------------------


class TestFuturesSurface:
    """``run()`` is a thin wrapper over submit/poll — paired bit-identity.

    The control-flow inversion's acceptance test: driving the engine
    through the non-blocking surface (``submit`` + ``as_completed`` or
    manual ``poll`` loops) must produce results bit-identical to the
    blocking ``run()`` it replaced.
    """

    def test_submit_as_completed_matches_run(self, mixes, catalog):
        specs = [spec(mix, catalog) for mix in mixes[:3]]
        blocking = ExecutionEngine(workers=2).run(specs)

        engine = ExecutionEngine(workers=2)
        futures = [engine.submit(s) for s in specs]
        completed = list(engine.as_completed(futures, timeout_s=300))
        assert sorted(f.spec.digest for f in completed) == sorted(
            f.spec.digest for f in futures
        )
        stepped = [f.result() for f in futures]
        assert [r.to_dict() for r in stepped] == [r.to_dict() for r in blocking]
        engine.close()

    def test_manual_poll_loop_matches_run(self, mixes, catalog):
        one = spec(mixes[0], catalog)
        blocking = ExecutionEngine().run_one(one)

        engine = ExecutionEngine()
        future = engine.submit(one)
        assert not future.done
        while engine.poll():
            pass
        assert future.done
        assert future.peek().to_dict() == blocking.to_dict()

    def test_inflight_duplicates_share_one_execution(self, mixes, catalog):
        engine = ExecutionEngine()
        a = engine.submit(spec(mixes[0], catalog))
        b = engine.submit(spec(mixes[0], catalog))
        assert a.result().to_dict() == b.result().to_dict()
        assert engine.stats.executed == 1
        assert engine.stats.deduplicated == 1


# -- cache ---------------------------------------------------------------


class TestRunCache:
    def test_hit_after_put(self, mixes, catalog, tmp_path):
        cache = RunCache(tmp_path)
        s = spec(mixes[0], catalog)
        assert cache.get(s) is None and cache.misses == 1
        result = execute_run(s)
        cache.put(s, result)
        assert cache.get(s).to_dict() == result.to_dict()
        assert cache.hits == 1

    def test_warm_engine_executes_nothing(self, mixes, catalog, tmp_path, monkeypatch):
        specs = [spec(mix, catalog) for mix in mixes]
        cold = ExecutionEngine(cache=RunCache(tmp_path))
        cold_results = cold.run(specs)
        assert cold.stats.cache_misses == len(specs)
        assert cold.stats.executed == len(specs)

        def boom(*args, **kwargs):
            raise AssertionError("run_policy called on a warm cache")

        monkeypatch.setattr(engine_module, "run_policy", boom)
        warm = ExecutionEngine(cache=RunCache(tmp_path))
        warm_results = warm.run(specs)
        assert warm.stats.cache_hits == len(specs)
        assert warm.stats.executed == 0
        assert [r.to_dict() for r in warm_results] == [r.to_dict() for r in cold_results]

    def test_salt_change_invalidates(self, mixes, catalog, tmp_path):
        s = spec(mixes[0], catalog)
        RunCache(tmp_path, salt="v1").put(s, execute_run(s))
        assert RunCache(tmp_path, salt="v1").get(s) is not None
        assert RunCache(tmp_path, salt="v2").get(s) is None
        assert f"schema{CACHE_SCHEMA_VERSION}" in default_cache_salt()

    def test_invalidate_and_clear(self, mixes, catalog, tmp_path):
        cache = RunCache(tmp_path)
        s0, s1 = spec(mixes[0], catalog), spec(mixes[1], catalog)
        cache.put(s0, execute_run(s0))
        cache.put(s1, execute_run(s1))
        assert cache.invalidate(s0) is True
        assert cache.invalidate(s0) is False
        assert cache.get(s0) is None
        assert cache.clear() == 1
        assert cache.get(s1) is None

    def test_corrupt_artifact_is_a_miss(self, mixes, catalog, tmp_path):
        cache = RunCache(tmp_path)
        s = spec(mixes[0], catalog)
        cache.put(s, execute_run(s))
        cache.path_for(s).write_text("{not json")
        assert cache.get(s) is None
        assert cache.misses == 1


# -- driver acceptance ---------------------------------------------------


class TestComparisonAcceptance:
    def test_parallel_comparison_is_byte_identical_to_serial(self, mixes, catalog):
        """ISSUE acceptance: >=4 PARSEC mixes, workers=4 vs serial."""
        kwargs = dict(catalog=catalog, run_config=FAST, seed=11)
        serial = compare_on_mixes(mixes, engine=ExecutionEngine(workers=1), **kwargs)
        parallel = compare_on_mixes(mixes, engine=ExecutionEngine(workers=4), **kwargs)
        assert len(serial) == len(mixes) == 4
        for s, p in zip(serial, parallel):
            assert s.scores == p.scores
            assert s.oracle.to_dict() == p.oracle.to_dict()

    def test_warm_cache_reruns_whole_comparison(self, mixes, catalog, tmp_path, monkeypatch):
        """ISSUE acceptance: warm rerun with zero run_policy invocations."""
        kwargs = dict(catalog=catalog, run_config=FAST, seed=11)
        cold_engine = ExecutionEngine(cache=RunCache(tmp_path))
        cold = compare_on_mixes(mixes, engine=cold_engine, **kwargs)

        monkeypatch.setattr(
            engine_module,
            "run_policy",
            lambda *a, **k: pytest.fail("run_policy called on a warm cache"),
        )
        warm_engine = ExecutionEngine(cache=RunCache(tmp_path))
        warm = compare_on_mixes(mixes, engine=warm_engine, **kwargs)
        assert warm_engine.stats.executed == 0
        assert warm_engine.stats.cache_hits == warm_engine.stats.submitted
        assert [c.scores for c in warm] == [c.scores for c in cold]

    def test_compare_on_mix_matches_compare_on_mixes(self, mixes, catalog):
        single = compare_on_mix(mixes[0], catalog=catalog, run_config=FAST, seed=11)
        batched = compare_on_mixes([mixes[0]], catalog=catalog, run_config=FAST, seed=11)
        assert single.scores == batched[0].scores

    def test_unknown_policy_name_raises(self, mixes, catalog):
        with pytest.raises(ExperimentError):
            compare_on_mix(mixes[0], catalog=catalog, run_config=FAST, include=("Nope",))

    def test_unknown_factory_raises_policy_error(self, mixes, catalog):
        with pytest.raises(PolicyError):
            execute_run(spec(mixes[0], catalog, policy="Nope"))

    def test_engine_stats_surface_in_analysis(self, mixes, catalog, tmp_path):
        from repro.analysis import engine_summary, engine_summary_json

        engine = ExecutionEngine(cache=RunCache(tmp_path))
        engine.run([spec(mixes[0], catalog)])
        summary = engine_summary(engine)
        assert summary["executed"] == 1
        assert summary["cache"]["misses"] == 1
        assert json.loads(engine_summary_json(engine)) == summary
