"""Unit and property tests for the configuration space combinatorics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpaceError
from repro.resources.space import (
    ConfigurationSpace,
    compositions_matrix,
    count_compositions,
    iter_compositions,
    sample_composition,
)
from repro.resources.types import CORES, default_catalog
from repro.rng import make_rng


class TestCompositions:
    def test_count_matches_paper_formula(self):
        # Sec. II: 3 jobs, 2 resources of 10 units -> C(9,2)^2 = 1296.
        assert count_compositions(10, 3) ** 2 == 1296

    def test_count_four_jobs(self):
        # 4 jobs, 2 resources of 10 units -> 7056 (paper Sec. II).
        assert count_compositions(10, 4) ** 2 == 7056

    def test_count_three_resources(self):
        # adding a third resource -> 592,704 (paper Sec. II).
        assert count_compositions(10, 4) ** 3 == 592704

    def test_enumeration_matches_count(self):
        rows = list(iter_compositions(8, 3))
        assert len(rows) == count_compositions(8, 3)

    def test_all_rows_sum_to_units(self):
        for row in iter_compositions(7, 4):
            assert sum(row) == 7

    def test_all_rows_respect_min(self):
        for row in iter_compositions(9, 3, min_units=2):
            assert min(row) >= 2

    def test_rows_unique(self):
        rows = list(iter_compositions(8, 3))
        assert len(set(rows)) == len(rows)

    def test_single_part(self):
        assert list(iter_compositions(5, 1)) == [(5,)]

    def test_infeasible_yields_nothing(self):
        assert list(iter_compositions(2, 3)) == []
        assert count_compositions(2, 3) == 0

    def test_matrix_shape(self):
        m = compositions_matrix(8, 3)
        assert m.shape == (count_compositions(8, 3), 3)

    def test_matrix_empty_when_infeasible(self):
        assert compositions_matrix(2, 5).shape == (0, 5)

    def test_zero_parts_rejected(self):
        with pytest.raises(SpaceError):
            count_compositions(5, 0)

    @given(
        units=st.integers(min_value=1, max_value=12),
        parts=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_sample_is_valid_composition(self, units, parts):
        if units < parts:
            return
        rng = make_rng(units * 31 + parts)
        comp = sample_composition(units, parts, rng)
        assert len(comp) == parts
        assert sum(comp) == units
        assert min(comp) >= 1

    def test_sample_roughly_uniform(self):
        # All C(3,1)=3 compositions of 4 into 2 parts appear.
        rng = make_rng(0)
        seen = {sample_composition(4, 2, rng) for _ in range(200)}
        assert seen == {(1, 3), (2, 2), (3, 1)}

    def test_sample_infeasible_raises(self):
        with pytest.raises(SpaceError):
            sample_composition(2, 3, make_rng(0))


class TestConfigurationSpace:
    @pytest.fixture
    def space(self):
        return ConfigurationSpace(default_catalog(6, 6, 6), 3)

    def test_size(self, space):
        assert space.size() == count_compositions(6, 3) ** 3

    def test_dimensions(self, space):
        assert space.dimensions == 9

    def test_enumerate_matches_size_small(self):
        space = ConfigurationSpace(default_catalog(4, 4, 4), 2)
        configs = list(space.enumerate())
        assert len(configs) == space.size()
        assert len(set(configs)) == space.size()

    def test_all_enumerated_are_members(self):
        space = ConfigurationSpace(default_catalog(4, 4, 4), 2)
        for config in space.enumerate():
            assert space.contains(config)

    def test_equal_partition_member(self, space):
        assert space.contains(space.equal_partition())

    def test_sample_members(self, space):
        rng = make_rng(5)
        for _ in range(30):
            assert space.contains(space.sample(rng))

    def test_sample_batch_length(self, space):
        assert len(space.sample_batch(7, make_rng(1))) == 7

    def test_contains_rejects_wrong_jobs(self, space):
        other = ConfigurationSpace(default_catalog(6, 6, 6), 2).equal_partition()
        assert not space.contains(other)

    def test_neighbors_are_members_and_one_move_away(self, space):
        config = space.equal_partition()
        neighbors = space.neighbors(config)
        assert neighbors
        for n in neighbors:
            assert space.contains(n)
            diff = np.abs(n.as_vector() - config.as_vector()).sum()
            assert diff == 2  # one unit moved

    def test_neighbors_unique(self, space):
        config = space.equal_partition()
        neighbors = space.neighbors(config)
        assert len(set(neighbors)) == len(neighbors)

    def test_encode_range_and_shape(self, space):
        vec = space.encode(space.equal_partition())
        assert vec.shape == (space.dimensions,)
        assert np.all(vec > 0) and np.all(vec < 1)

    def test_encode_shares_sum_to_one_per_resource(self, space):
        vec = space.encode(space.sample(make_rng(2)))
        per_resource = vec.reshape(len(space.catalog), space.n_jobs)
        assert np.allclose(per_resource.sum(axis=1), 1.0)

    def test_encode_rejects_non_member(self, space):
        foreign = ConfigurationSpace(default_catalog(8, 8, 8), 3).equal_partition()
        with pytest.raises(SpaceError):
            space.encode(foreign)

    def test_encode_batch(self, space):
        batch = space.sample_batch(4, make_rng(3))
        encoded = space.encode_batch(batch)
        assert encoded.shape == (4, space.dimensions)

    def test_encode_batch_empty(self, space):
        assert space.encode_batch([]).shape == (0, space.dimensions)

    def test_per_resource_matrices_roundtrip(self, space):
        matrices = space.per_resource_matrices()
        config = space.configuration_from_indices((0, 0, 0), matrices)
        assert space.contains(config)

    def test_configuration_from_indices_wrong_len(self, space):
        with pytest.raises(SpaceError):
            space.configuration_from_indices((0,), space.per_resource_matrices())

    def test_too_many_jobs_rejected(self):
        with pytest.raises(SpaceError):
            ConfigurationSpace(default_catalog(4, 4, 4), 5)

    def test_zero_jobs_rejected(self):
        with pytest.raises(SpaceError):
            ConfigurationSpace(default_catalog(), 0)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_sampled_configs_validate(self, seed):
        catalog = default_catalog(7, 7, 7)
        space = ConfigurationSpace(catalog, 3)
        config = space.sample(make_rng(seed))
        config.validate(catalog)
