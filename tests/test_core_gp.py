"""Tests for the Gaussian process, kernels, and acquisition functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquisition import (
    ExpectedImprovement,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    make_acquisition,
)
from repro.core.gp import GaussianProcess
from repro.core.kernels import RBF, Matern52
from repro.errors import ModelError


class TestKernels:
    @pytest.mark.parametrize("kernel_cls", [Matern52, RBF])
    def test_diagonal_is_variance(self, kernel_cls):
        kernel = kernel_cls(lengthscale=0.5, variance=2.0)
        x = np.random.default_rng(0).random((5, 3))
        k = kernel(x, x)
        assert np.allclose(np.diag(k), 2.0)

    @pytest.mark.parametrize("kernel_cls", [Matern52, RBF])
    def test_symmetric_psd(self, kernel_cls):
        x = np.random.default_rng(1).random((8, 4))
        k = kernel_cls()(x, x)
        assert np.allclose(k, k.T)
        eigenvalues = np.linalg.eigvalsh(k)
        assert eigenvalues.min() > -1e-8

    @pytest.mark.parametrize("kernel_cls", [Matern52, RBF])
    def test_decays_with_distance(self, kernel_cls):
        kernel = kernel_cls(lengthscale=0.3)
        near = kernel(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = kernel(np.array([[0.0]]), np.array([[1.0]]))[0, 0]
        assert near > far

    def test_invalid_hyperparams(self):
        with pytest.raises(ModelError):
            Matern52(lengthscale=0.0)
        with pytest.raises(ModelError):
            Matern52(variance=-1.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ModelError):
            Matern52()(np.ones((2, 3)), np.ones((2, 4)))

    def test_with_params(self):
        k = Matern52(lengthscale=0.5).with_params(lengthscale=1.0)
        assert k.lengthscale == 1.0
        assert isinstance(k, Matern52)


class TestGaussianProcess:
    def test_interpolates_noise_free(self):
        x = np.linspace(0, 1, 8).reshape(-1, 1)
        y = np.sin(3 * x).ravel()
        gp = GaussianProcess(noise=1e-8).fit(x, y)
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.05)

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([[0.0], [0.1]])
        gp = GaussianProcess().fit(x, [0.0, 0.1])
        _, std_near = gp.predict(np.array([[0.05]]))
        _, std_far = gp.predict(np.array([[3.0]]))
        assert std_far > std_near

    def test_prediction_reverts_to_mean_far_away(self):
        x = np.array([[0.0], [0.2]])
        gp = GaussianProcess().fit(x, [1.0, 3.0])
        mean, _ = gp.predict(np.array([[50.0]]))
        assert mean[0] == pytest.approx(2.0, abs=0.2)

    def test_constant_targets_handled(self):
        x = np.random.default_rng(0).random((5, 2))
        gp = GaussianProcess().fit(x, np.full(5, 0.7))
        mean, _ = gp.predict(x)
        assert np.allclose(mean, 0.7, atol=1e-6)

    def test_fit_shape_mismatch(self):
        with pytest.raises(ModelError):
            GaussianProcess().fit(np.ones((3, 2)), [1.0, 2.0])

    def test_fit_empty(self):
        with pytest.raises(ModelError):
            GaussianProcess().fit(np.empty((0, 2)), [])

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            GaussianProcess().predict(np.ones((1, 2)))

    def test_negative_noise_rejected(self):
        with pytest.raises(ModelError):
            GaussianProcess(noise=-0.1)

    def test_lengthscale_optimization_improves_evidence(self):
        rng = np.random.default_rng(3)
        x = rng.random((30, 2))
        y = np.sin(4 * x[:, 0]) + 0.3 * x[:, 1]
        fixed = GaussianProcess(kernel=Matern52(lengthscale=5.0), noise=1e-4).fit(x, y)
        tuned = GaussianProcess(kernel=Matern52(lengthscale=5.0), noise=1e-4).fit(
            x, y, optimize_lengthscale=True
        )
        assert tuned.log_marginal_likelihood() >= fixed.log_marginal_likelihood() - 1e-9

    def test_n_samples(self):
        gp = GaussianProcess().fit(np.ones((4, 1)) * np.arange(4).reshape(-1, 1), np.arange(4.0))
        assert gp.n_samples == 4

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_posterior_std_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.random((6, 3))
        y = rng.random(6)
        gp = GaussianProcess().fit(x, y)
        _, std = gp.predict(rng.random((10, 3)))
        assert np.all(std >= 0)


class TestAcquisitions:
    def test_ei_zero_when_certain_and_worse(self):
        ei = ExpectedImprovement(xi=0.0)
        value = ei(np.array([0.0]), np.array([1e-9]), best=1.0)
        assert value[0] == pytest.approx(0.0, abs=1e-6)

    def test_ei_positive_with_uncertainty(self):
        ei = ExpectedImprovement()
        assert ei(np.array([0.0]), np.array([1.0]), best=1.0)[0] > 0

    def test_ei_increases_with_mean(self):
        ei = ExpectedImprovement()
        lo, hi = ei(np.array([0.5, 0.9]), np.array([0.1, 0.1]), best=1.0)
        assert hi > lo

    def test_pi_bounded(self):
        pi = ProbabilityOfImprovement()
        values = pi(np.array([-1.0, 0.0, 5.0]), np.array([0.5, 0.5, 0.5]), best=1.0)
        assert np.all(values >= 0) and np.all(values <= 1)

    def test_ucb_formula(self):
        ucb = UpperConfidenceBound(kappa=2.0)
        assert ucb(np.array([1.0]), np.array([0.5]), best=0.0)[0] == pytest.approx(2.0)

    def test_factory(self):
        assert isinstance(make_acquisition("ei"), ExpectedImprovement)
        assert isinstance(make_acquisition("pi"), ProbabilityOfImprovement)
        assert isinstance(make_acquisition("ucb", kappa=1.0), UpperConfidenceBound)

    def test_factory_unknown(self):
        with pytest.raises(ModelError):
            make_acquisition("thompson")

    def test_negative_params_rejected(self):
        with pytest.raises(ModelError):
            ExpectedImprovement(xi=-1.0)
        with pytest.raises(ModelError):
            UpperConfidenceBound(kappa=-1.0)


class TestIncrementalFit:
    """Gated length-scale refits and incremental Cholesky extension."""

    def _trace(self, n, d=3, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.random((n, d))
        y = np.sin(3 * x[:, 0]) + 0.4 * x[:, 1] + rng.normal(scale=0.02, size=n)
        return x, y

    def test_incremental_matches_full_refit(self):
        """Extending the factor one sample at a time must agree with a
        from-scratch fit at every size (numerically, not bitwise)."""
        x, y = self._trace(20)
        incremental = GaussianProcess(noise=5e-2)
        query = np.random.default_rng(9).random((5, 3))
        for n in range(4, 21):
            incremental.fit(x[:n], y[:n])
            fresh = GaussianProcess(noise=5e-2).fit(x[:n], y[:n])
            mean_inc, std_inc = incremental.predict(query)
            mean_new, std_new = fresh.predict(query)
            np.testing.assert_allclose(mean_inc, mean_new, rtol=1e-8, atol=1e-10)
            np.testing.assert_allclose(std_inc, std_new, rtol=1e-8, atol=1e-10)

    def test_incremental_handles_multi_row_extension(self):
        x, y = self._trace(16)
        gp = GaussianProcess(noise=5e-2).fit(x[:6], y[:6])
        gp.fit(x, y)  # extend by 10 rows at once
        fresh = GaussianProcess(noise=5e-2).fit(x, y)
        query = np.random.default_rng(1).random((4, 3))
        np.testing.assert_allclose(gp.predict(query)[0], fresh.predict(query)[0], rtol=1e-8)

    def test_non_prefix_refit_falls_back(self):
        """A sliding window (GoalRecords max_samples) breaks the prefix;
        the GP must silently fall back to a full factorization."""
        x, y = self._trace(12)
        gp = GaussianProcess(noise=5e-2).fit(x[:8], y[:8])
        gp.fit(x[2:10], y[2:10])  # shifted window, same size growth pattern
        fresh = GaussianProcess(noise=5e-2).fit(x[2:10], y[2:10])
        query = np.random.default_rng(2).random((4, 3))
        np.testing.assert_allclose(gp.predict(query)[0], fresh.predict(query)[0], rtol=1e-8)

    def test_kernel_change_invalidates_incremental_path(self):
        x, y = self._trace(10)
        gp = GaussianProcess(kernel=Matern52(lengthscale=0.8), noise=5e-2).fit(x[:8], y[:8])
        gp.kernel = Matern52(lengthscale=2.0)
        gp.fit(x, y)
        fresh = GaussianProcess(kernel=Matern52(lengthscale=2.0), noise=5e-2).fit(x, y)
        query = np.random.default_rng(3).random((4, 3))
        np.testing.assert_allclose(gp.predict(query)[0], fresh.predict(query)[0], rtol=1e-8)

    def test_refit_gating_skips_grid_between_periods(self, monkeypatch):
        x, y = self._trace(20)
        gp = GaussianProcess(noise=5e-2, lengthscale_refit_every=5)
        searches = []
        original = GaussianProcess._best_kernel

        def counting(self, xx, zz):
            searches.append(xx.shape[0])
            return original(self, xx, zz)

        monkeypatch.setattr(GaussianProcess, "_best_kernel", counting)
        for n in range(4, 21):
            gp.fit(x[:n], y[:n], optimize_lengthscale=True)
        # First optimize call searches immediately; afterwards only
        # every 5 new samples (at n=9, 14, 19).
        assert searches == [4, 9, 14, 19]

    def test_first_optimize_call_always_searches(self):
        x, y = self._trace(8)
        gp = GaussianProcess(
            kernel=Matern52(lengthscale=5.0), noise=1e-4, lengthscale_refit_every=50
        )
        gp.fit(x, y, optimize_lengthscale=True)
        assert gp.kernel.lengthscale != 5.0

    def test_refit_every_validated(self):
        with pytest.raises(ModelError):
            GaussianProcess(lengthscale_refit_every=0)
