"""Unit and property tests for throughput/fairness metrics and GoalSet."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.metrics.fairness import (
    coefficient_of_variation,
    jain_index,
    one_minus_cov,
    one_minus_cov_normalized,
)
from repro.metrics.goals import GoalScores, GoalSet
from repro.metrics.throughput import (
    geometric_mean_speedup,
    harmonic_mean_speedup,
    speedups,
    total_ips,
    weighted_mean_speedup,
)

positive_speedups = st.lists(
    st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=8
)


class TestSpeedups:
    def test_basic(self):
        s = speedups([1e9, 2e9], [2e9, 2e9])
        assert list(s) == [0.5, 1.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            speedups([1e9], [1e9, 2e9])

    def test_zero_baseline_rejected(self):
        with pytest.raises(ExperimentError):
            speedups([1e9], [0.0])

    def test_negative_ips_rejected(self):
        with pytest.raises(ExperimentError):
            speedups([-1.0], [1e9])


class TestThroughputMetrics:
    def test_geometric_mean_of_equal_speedups(self):
        assert geometric_mean_speedup([0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_harmonic_below_geometric(self):
        s = [0.2, 0.8]
        assert harmonic_mean_speedup(s) < geometric_mean_speedup(s)

    def test_weighted_mean_equals_ips_ratio(self):
        iso = np.array([2e9, 4e9])
        s = np.array([0.5, 0.75])
        expected = (0.5 * 2e9 + 0.75 * 4e9) / 6e9
        assert weighted_mean_speedup(s, iso) == pytest.approx(expected)

    def test_total_ips(self):
        assert total_ips([1e9, 2e9]) == pytest.approx(3e9)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            geometric_mean_speedup([])

    @given(positive_speedups)
    @settings(max_examples=50, deadline=None)
    def test_means_bounded_by_extremes(self, s):
        for metric in (geometric_mean_speedup, harmonic_mean_speedup):
            value = metric(s)
            assert min(s) - 1e-9 <= value <= max(s) + 1e-9


class TestFairnessMetrics:
    def test_perfect_fairness(self):
        assert jain_index([0.5, 0.5, 0.5]) == pytest.approx(1.0)
        assert one_minus_cov([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_jain_decreases_with_spread(self):
        assert jain_index([0.4, 0.6]) > jain_index([0.2, 0.8])

    def test_jain_formula(self):
        s = [0.2, 0.8]
        cov = coefficient_of_variation(s)
        assert jain_index(s) == pytest.approx(1.0 / (1.0 + cov**2))

    def test_one_minus_cov_can_be_negative(self):
        assert one_minus_cov([0.01, 1.0, 0.01]) < 0

    def test_normalized_clipped(self):
        assert one_minus_cov_normalized([0.01, 1.0, 0.01]) == 0.0

    def test_scale_invariance(self):
        assert jain_index([0.2, 0.4]) == pytest.approx(jain_index([0.4, 0.8]))

    def test_zero_mean_rejected(self):
        with pytest.raises(ExperimentError):
            coefficient_of_variation([0.0, 0.0])

    @given(positive_speedups)
    @settings(max_examples=50, deadline=None)
    def test_jain_in_unit_interval(self, s):
        assert 0.0 < jain_index(s) <= 1.0

    @given(positive_speedups)
    @settings(max_examples=50, deadline=None)
    def test_jain_lower_bound_one_over_n(self, s):
        # Jain's index is bounded below by 1/n for n values.
        assert jain_index(s) >= 1.0 / len(s) - 1e-9


class TestGoalSet:
    def test_defaults_match_paper(self):
        goals = GoalSet()
        assert goals.throughput_metric == "sum_ips"
        assert goals.fairness_metric == "jain"

    def test_unknown_metrics_rejected(self):
        with pytest.raises(ExperimentError):
            GoalSet(throughput_metric="latency")
        with pytest.raises(ExperimentError):
            GoalSet(fairness_metric="karma")

    def test_scores_in_unit_interval(self):
        scores = GoalSet().scores([1e9, 2e9], [4e9, 4e9])
        assert 0 < scores.throughput <= 1
        assert 0 < scores.fairness <= 1

    def test_weighted_combination(self):
        scores = GoalScores(throughput=0.4, fairness=0.8)
        assert scores.weighted(0.75, 0.25) == pytest.approx(0.5)

    @pytest.mark.parametrize("throughput_metric", ["sum_ips", "geometric_mean", "harmonic_mean"])
    @pytest.mark.parametrize("fairness_metric", ["jain", "one_minus_cov"])
    def test_batch_matches_scalar(self, throughput_metric, fairness_metric):
        goals = GoalSet(throughput_metric, fairness_metric)
        iso = np.array([2e9, 3e9, 5e9])
        ips = np.array([[1e9, 2e9, 2e9], [0.5e9, 3e9, 1e9]])
        t_batch, f_batch = goals.scores_batch(ips, iso)
        for i in range(2):
            scalar = goals.scores(ips[i], iso)
            assert t_batch[i] == pytest.approx(scalar.throughput, rel=1e-9)
            assert f_batch[i] == pytest.approx(scalar.fairness, rel=1e-9)

    def test_batch_shape_checked(self):
        with pytest.raises(ExperimentError):
            GoalSet().scores_batch(np.ones((2, 3)), np.ones(2))
