"""Tests for the shared-resource contention model."""

import numpy as np
import pytest

from repro.resources.allocation import Configuration, equal_partition
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH
from repro.system.contention import (
    MIN_INTERFERENCE_FACTOR,
    effective_allocations,
    evaluate_system,
    interference_factors,
    isolation_ips,
)
from repro.workloads.mixes import mix_from_names


@pytest.fixture
def mix():
    return mix_from_names(["canneal", "fluidanimate", "streamcluster"])


class TestEffectiveAllocations:
    def test_partitioned_resources_pass_through(self, mix, catalog6):
        config = equal_partition(catalog6, 3)
        alloc = effective_allocations(mix, catalog6, config)
        assert list(alloc[CORES]) == list(config.units(CORES))

    def test_shared_resources_sum_to_total(self, mix, catalog6):
        alloc = effective_allocations(mix, catalog6, None)
        for resource in catalog6:
            assert np.sum(alloc[resource.name]) == pytest.approx(resource.units)

    def test_partial_configuration(self, mix, catalog6):
        config = Configuration({LLC_WAYS: (2, 2, 2)})
        alloc = effective_allocations(mix, catalog6, config)
        assert list(alloc[LLC_WAYS]) == [2, 2, 2]
        assert np.sum(alloc[CORES]) == pytest.approx(catalog6.get(CORES).units)

    def test_shared_llc_favours_high_pressure_jobs(self, mix, catalog6):
        """Streaming jobs grab an unpartitioned LLC (pressure shares)."""
        alloc = effective_allocations(mix, catalog6, None)
        names = mix.names
        streamcluster = alloc[LLC_WAYS][names.index("streamcluster")]
        canneal = alloc[LLC_WAYS][names.index("canneal")]
        assert streamcluster > canneal

    def test_shared_cores_favour_parallel_jobs(self, mix, catalog6):
        """Per-thread timeslicing gives parallel jobs more CPU."""
        alloc = effective_allocations(mix, catalog6, None)
        names = mix.names
        fluid = alloc[CORES][names.index("fluidanimate")]
        canneal = alloc[CORES][names.index("canneal")]
        assert fluid > 2 * canneal


class TestInterference:
    def test_fully_partitioned_no_penalty(self, mix, catalog6):
        config = equal_partition(catalog6, 3)
        assert np.allclose(interference_factors(mix, catalog6, config), 1.0)

    def test_unmanaged_has_penalty(self, mix, catalog6):
        factors = interference_factors(mix, catalog6, None)
        assert np.all(factors < 1.0)
        assert np.all(factors >= MIN_INTERFERENCE_FACTOR)

    def test_partial_partitioning_between(self, mix, catalog6):
        partial = Configuration({LLC_WAYS: (2, 2, 2)})
        unmanaged = interference_factors(mix, catalog6, None)
        partialf = interference_factors(mix, catalog6, partial)
        assert np.all(partialf >= unmanaged)

    def test_single_job_no_penalty(self, catalog6, synthetic_pair):
        from repro.workloads.mixes import JobMix

        factors = interference_factors(synthetic_pair, catalog6, None)
        assert factors.shape == (2,)


class TestEvaluateSystem:
    def test_full_partition_matches_workload_model(self, mix, catalog6):
        config = equal_partition(catalog6, 3)
        state = evaluate_system(mix, catalog6, config, t=0.0)
        for j, workload in enumerate(mix):
            expected = workload.ips_under(
                catalog6,
                0.0,
                cores=config.units(CORES)[j],
                llc_ways=config.units(LLC_WAYS)[j],
                bandwidth_units=config.units(MEMORY_BANDWIDTH)[j],
            )
            assert state.ips[j] == pytest.approx(expected, rel=1e-9)

    def test_unmanaged_worse_than_best_partition(self, mix, catalog6):
        """Unmanaged sharing loses to the best managed partition.

        (A rigid *equal* split does not always beat work-conserving
        sharing — the OS feeds the most parallel job — but the optimal
        partition does, on both goals at once.)
        """
        from repro.metrics.goals import GoalSet
        from repro.policies.oracle import OracleSearch
        from repro.system.contention import isolation_ips as iso_fn

        goals = GoalSet()
        iso = iso_fn(mix, catalog6, 0.0)
        best = OracleSearch(mix, catalog6, goals).best(0.0, 0.5, 0.5)
        unman = goals.scores(evaluate_system(mix, catalog6, None, 0.0).ips, iso)
        assert unman.weighted(0.5, 0.5) < best.objective
        assert unman.fairness < best.fairness

    def test_shared_bandwidth_respects_capacity(self, mix, catalog6):
        state = evaluate_system(mix, catalog6, None, 0.0)
        total_traffic = state.memory_bandwidth_bytes_s.sum()
        capacity = catalog6.get(MEMORY_BANDWIDTH).capacity
        assert total_traffic <= capacity * 1.01

    def test_latency_sensitive_jobs_hurt_more_when_bus_shared(self, catalog6):
        """canneal (latency bound) loses more than streamcluster under sharing."""
        mix = mix_from_names(["canneal", "streamcluster", "blackscholes"])
        config = equal_partition(catalog6, 3)
        iso = isolation_ips(mix, catalog6, 0.0)
        part = evaluate_system(mix, catalog6, config, 0.0).ips / iso
        shared_bw = config.restrict([CORES, LLC_WAYS])
        shar = evaluate_system(mix, catalog6, shared_bw, 0.0).ips / iso
        loss = 1.0 - shar / part
        names = mix.names
        assert loss[names.index("canneal")] > loss[names.index("streamcluster")]

    def test_ips_positive(self, mix, catalog6):
        for config in (None, equal_partition(catalog6, 3)):
            state = evaluate_system(mix, catalog6, config, 1.0)
            assert np.all(state.ips > 0)

    def test_phase_dependence(self, mix, catalog6):
        config = equal_partition(catalog6, 3)
        a = evaluate_system(mix, catalog6, config, 0.0).ips
        b = evaluate_system(mix, catalog6, config, 6.0).ips
        assert not np.allclose(a, b)

    def test_occupancy_bounded_by_allocation_and_working_set(self, mix, catalog6):
        config = equal_partition(catalog6, 3)
        state = evaluate_system(mix, catalog6, config, 0.0)
        way_bytes = catalog6.get(LLC_WAYS).unit_capacity
        for j, workload in enumerate(mix):
            assert state.llc_occupancy_bytes[j] <= config.units(LLC_WAYS)[j] * way_bytes + 1
            assert state.llc_occupancy_bytes[j] <= workload.phase_at(0.0).working_set_bytes + 1


class TestIsolation:
    def test_isolation_beats_any_partition(self, mix, catalog6):
        iso = isolation_ips(mix, catalog6, 0.0)
        config = equal_partition(catalog6, 3)
        state = evaluate_system(mix, catalog6, config, 0.0)
        assert np.all(state.ips <= iso * 1.0001)

    def test_isolation_positive(self, mix, catalog6):
        assert np.all(isolation_ips(mix, catalog6, 3.0) > 0)
