"""Tests for the SLO layer (``repro.qos.slo``).

The unit contract underneath the cluster's qos semantics: what a
speedup-floor SLO means (windowed attainment), how latency targets
translate into floors, and how the tracker aggregates node-epoch
telemetry into attainment, miss rate, and miss events.
"""

import json

import pytest

from repro.errors import ExperimentError
from repro.qos import SLOMissEvent, SLOSpec, SLOSummary, SLOTracker, min_speedup_for
from repro.workloads.latency_critical import LatencyCriticalJob, RequestProfile
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def lc_job():
    return LatencyCriticalJob(
        workload=get_workload("web_search"),
        profile=RequestProfile.constant(2e6, 0.02, 400.0),
    )


class TestSLOSpec:
    def test_defaults_and_round_trip(self):
        spec = SLOSpec(min_speedup=0.6, window=3, attain_target=0.5)
        decoded = SLOSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert decoded == spec

    def test_validation(self):
        with pytest.raises(ExperimentError, match="min_speedup"):
            SLOSpec(min_speedup=0.0)
        with pytest.raises(ExperimentError, match="min_speedup"):
            SLOSpec(min_speedup=1.5)
        with pytest.raises(ExperimentError, match="window"):
            SLOSpec(window=0)
        with pytest.raises(ExperimentError, match="attain_target"):
            SLOSpec(attain_target=0.0)

    def test_empty_series_is_full_attainment(self):
        # Nothing ran, so nothing was violated.
        assert SLOSpec(min_speedup=0.9).window_attainment(()) == 1.0

    def test_windows_score_on_their_mean(self):
        spec = SLOSpec(min_speedup=0.5, window=2)
        # Window 1 mean 0.55 (attains despite the 0.3 dip), window 2
        # mean 0.35 (misses despite the 0.4 recovery).
        assert spec.window_attainment((0.8, 0.3, 0.3, 0.4)) == pytest.approx(0.5)

    def test_single_interval_windows_score_each_point(self):
        spec = SLOSpec(min_speedup=0.5, window=1)
        assert spec.window_attainment((0.6, 0.4, 0.6)) == pytest.approx(2 / 3)

    def test_partial_final_window_counts(self):
        spec = SLOSpec(min_speedup=0.5, window=2)
        # Three intervals make two windows; the trailing singleton
        # stands on its own mean.
        assert spec.window_attainment((0.6, 0.6, 0.4)) == pytest.approx(0.5)

    def test_floor_is_inclusive(self):
        spec = SLOSpec(min_speedup=0.5, window=1)
        assert spec.window_attainment((0.5,)) == 1.0


class TestMinSpeedupFor:
    def test_matches_required_ips_ratio(self, lc_job):
        iso = 4e9
        expected = lc_job.required_ips(0.0) / iso
        assert min_speedup_for(lc_job, iso) == pytest.approx(expected)

    def test_clamped_to_one(self, lc_job):
        # An isolation baseline below the requirement cannot demand a
        # speedup above 1.0 — that floor means "needs the machine".
        assert min_speedup_for(lc_job, lc_job.required_ips(0.0) * 0.5) == 1.0

    def test_rejects_nonpositive_isolation(self, lc_job):
        with pytest.raises(ExperimentError, match="isolation_ips"):
            min_speedup_for(lc_job, 0.0)


class TestSLOTracker:
    def make(self, **kwargs):
        defaults = dict(min_speedup=0.5, window=1, attain_target=0.75)
        defaults.update(kwargs)
        return SLOTracker(SLOSpec(**defaults))

    def test_scores_only_qos_slots(self):
        tracker = self.make()
        out = tracker.score_epoch(
            epoch=0,
            node_id=1,
            job_ids=(10, 11, 12),
            kinds=("batch", "qos", "batch"),
            interval_speedups=((0.2, 0.2), (0.8, 0.9), (0.3, 0.3)),
        )
        assert set(out) == {11}
        assert out[11] == 1.0
        assert tracker.misses == ()
        assert tracker.scored_epochs == 1

    def test_missing_telemetry_scores_as_attained(self):
        tracker = self.make()
        out = tracker.score_epoch(0, 0, (5,), ("qos",), ())
        assert out == {5: 1.0}

    def test_miss_event_below_target(self):
        tracker = self.make(attain_target=0.75)
        tracker.score_epoch(3, 2, (7,), ("qos",), ((0.9, 0.2, 0.2, 0.2),))
        assert tracker.misses == (
            SLOMissEvent(epoch=3, node_id=2, job_id=7, attainment=0.25),
        )
        assert tracker.miss_rate() == 1.0

    def test_outage_scores_every_qos_job_zero(self):
        tracker = self.make()
        out = tracker.score_outage(1, 0, (3, 4), ("qos", "batch"))
        assert out == {3: 0.0}
        assert tracker.attainment() == 0.0
        assert len(tracker.misses) == 1

    def test_attainment_averages_per_job_then_across_jobs(self):
        tracker = self.make()
        tracker.score_epoch(0, 0, (1,), ("qos",), ((0.9,),))  # job 1: 1.0
        tracker.score_epoch(1, 0, (1,), ("qos",), ((0.1,),))  # job 1: 0.0
        tracker.score_epoch(0, 1, (2,), ("qos",), ((0.9,),))  # job 2: 1.0
        assert tracker.job_attainment() == {1: 0.5, 2: 1.0}
        assert tracker.attainment() == pytest.approx(0.75)
        assert tracker.miss_rate() == pytest.approx(1 / 3)

    def test_untouched_tracker_reports_vacuous_success(self):
        tracker = self.make()
        assert tracker.attainment() == 1.0
        assert tracker.miss_rate() == 0.0
        assert tracker.scored_epochs == 0

    def test_to_dict_is_json_codable(self):
        tracker = self.make()
        tracker.score_epoch(0, 0, (9,), ("qos",), ((0.1,),))
        data = json.loads(json.dumps(tracker.to_dict()))
        assert data["spec"]["min_speedup"] == 0.5
        assert data["attainment"] == 0.0
        assert data["job_attainment"] == {"9": 0.0}
        assert data["misses"][0]["job_id"] == 9


class TestSLOSummary:
    def test_to_dict(self):
        summary = SLOSummary(
            attainment=0.8,
            miss_rate=0.1,
            qos_jobs=3,
            misses=(SLOMissEvent(0, 1, 2, 0.5),),
        )
        data = json.loads(json.dumps(summary.to_dict()))
        assert data["attainment"] == 0.8
        assert data["qos_jobs"] == 3
        assert data["misses"][0] == {
            "epoch": 0, "node_id": 1, "job_id": 2, "attainment": 0.5,
        }
