"""Tests for fleet fault tolerance and the chaos sweep.

Covers the supervised recovery protocol end to end: crash → drain →
re-placement → rejoin with zero lost jobs, bit-exact budget
conservation through down windows (parked budgets), snapshot-based
session resurrection when a crashed controller's job group reassembles,
the straggler circuit breaker (quarantine), the crash-during-migration
edge case, the horizon-validation bugfix (plans that outlive the trace
raise, naming the node), and the paired chaos experiment
(recovery strictly better than the ablation under identical weather).
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    EVT_JOB_LOST,
    EVT_JOB_REPLACED,
    EVT_NODE_DOWN,
    EVT_NODE_QUARANTINED,
    EVT_NODE_REJOINED,
    EVT_SESSION_RESURRECTED,
    ClusterSimulator,
    FleetEvent,
    MigrationConfig,
    RecoveryConfig,
    pool_totals,
)
from repro.cluster.placement import PlacementPolicy
from repro.cluster.simulator import ClusterResult, NodeEpochRecord
from repro.errors import ClusterError
from repro.experiments.chaos import (
    adjusted_epoch_fairness,
    chaos_fleet_plans,
    chaos_sweep,
    recovery_intervals,
)
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.faults import FaultPlan, NodeFaultPlan
from repro.workloads.arrivals import ArrivalTrace, JobArrival
from repro.workloads.registry import default_registry

#: Tiny methodology for fast simulator tests.
TINY = RunConfig(duration_s=1.0, baseline_reset_s=0.5)


class PackPlacement(PlacementPolicy):
    """First-fit: lowest-id open node (packs jobs onto one node)."""

    name = "pack"

    def place(self, nodes):
        return self._open_nodes(nodes)[0].node_id


def open_jobs(*names: str) -> ArrivalTrace:
    """Jobs that arrive at epoch 0 and never depart (n_epochs set later)."""
    registry = default_registry()
    return tuple(
        JobArrival(job_id, registry.get(name), arrival_epoch=0)
        for job_id, name in enumerate(names)
    )


def make_trace(n_epochs: int, *names: str) -> ArrivalTrace:
    return ArrivalTrace(n_epochs=n_epochs, jobs=open_jobs(*names))


def simulate(trace, fleet_plans, recovery=RecoveryConfig(), **kwargs):
    defaults = dict(
        n_nodes=2,
        placement="least_loaded",
        policy="EqualPartition",
        catalog=experiment_catalog(4),
        epoch_config=TINY,
        seed=1,
        node_capacity=2,
        fleet_plans=fleet_plans,
        recovery=recovery,
    )
    defaults.update(kwargs)
    return ClusterSimulator(trace, **defaults)


def events_of(result: ClusterResult, kind: str):
    return [e for e in result.fleet_events if e.kind == kind]


class TestHorizonValidation:
    """The bugfix: plans that outlive the trace raise, naming the node."""

    def test_fleet_crash_past_horizon_names_node(self):
        trace = make_trace(3, "canneal", "streamcluster")
        with pytest.raises(ClusterError, match="node 1"):
            simulate(trace, {1: NodeFaultPlan(crash_epoch=3)})

    def test_fleet_rejoin_past_horizon_names_node(self):
        trace = make_trace(4, "canneal", "streamcluster")
        with pytest.raises(ClusterError, match="node 0.*rejoin"):
            simulate(trace, {0: NodeFaultPlan(crash_epoch=2, crash_rejoin_epochs=3)})

    def test_fleet_plan_unknown_node_rejected(self):
        trace = make_trace(3, "canneal", "streamcluster")
        with pytest.raises(ClusterError, match="unknown node ids"):
            simulate(trace, {7: NodeFaultPlan(crash_epoch=1)})

    def test_intra_epoch_fault_window_outliving_epoch_names_node(self):
        # A node-epoch is TINY.duration_s long; a FaultPlan window
        # reaching past it used to be silently truncated by
        # FaultPlan.window() — now it's rejected loudly.
        trace = make_trace(3, "canneal", "streamcluster")
        plan = FaultPlan(sample_drop_rate=0.1, start_s=0.0, end_s=5.0)
        with pytest.raises(ClusterError, match="node 0.*outlives"):
            simulate(trace, {}, node_fault_plans={0: plan})


class TestCrashRecovery:
    def crash_run(self, recovery=RecoveryConfig(), **kwargs):
        # 3 open jobs on 2 capacity-2 nodes: least_loaded puts jobs
        # {0, 2} on node 0 and job 1 on node 1. Node 0 goes down for
        # epochs 1-2 and rejoins at 3; node 1 has one free slot, so one
        # drained job re-places immediately and the other must wait in
        # the queue until the rejoin.
        trace = make_trace(5, "canneal", "streamcluster", "vips")
        plans = {0: NodeFaultPlan(crash_epoch=1, crash_rejoin_epochs=2)}
        simulator = simulate(trace, plans, recovery=recovery, **kwargs)
        return simulator, simulator.run()

    def test_zero_jobs_lost_with_recovery(self):
        _, result = self.crash_run()
        assert result.jobs_lost == ()
        assert result.replacements == 2
        assert result.node_downs == 1
        assert result.node_rejoins == 1

    def test_displaced_job_waits_for_capacity(self):
        _, result = self.crash_run()
        # One drained job re-placed the same epoch (waited 0), the
        # other queued until the rejoin at epoch 3 (waited 2).
        assert result.displaced_job_epochs == 2
        replaced = events_of(result, EVT_JOB_REPLACED)
        assert len(replaced) == 2
        waits = sorted(int(e.detail.split("waited=")[1]) for e in replaced)
        assert waits == [0, 2]

    def test_event_trail_is_ordered(self):
        _, result = self.crash_run()
        downs = events_of(result, EVT_NODE_DOWN)
        rejoins = events_of(result, EVT_NODE_REJOINED)
        assert [e.epoch for e in downs] == [1]
        assert [e.epoch for e in rejoins] == [3]
        assert all(e.node_id == 0 for e in downs + rejoins)

    def test_down_node_produces_no_records(self):
        _, result = self.crash_run()
        node0_epochs = {r.epoch for r in result.node_records(0)}
        assert node0_epochs == {0, 3, 4}

    def test_pool_conserved_through_down_window(self):
        simulator, _ = self.crash_run()
        assert pool_totals(n.budget for n in simulator.nodes) == simulator.pool

    def test_pool_conserved_with_broker(self):
        # The broker must not see (or redistribute) a parked budget;
        # the per-epoch audit raises on any leak, so finishing is the
        # assertion.
        simulator, result = self.crash_run(broker="harvest")
        assert result.jobs_lost == ()
        assert pool_totals(n.budget for n in simulator.nodes) == simulator.pool

    def test_ablation_loses_drained_jobs(self):
        _, result = self.crash_run(recovery=None)
        assert sorted(result.jobs_lost) == [0, 2]
        assert result.replacements == 0
        lost = events_of(result, EVT_JOB_LOST)
        assert {e.job_id for e in lost} == {0, 2}
        # The node still rejoins — only its jobs are gone.
        assert result.node_rejoins == 1

    def test_max_queue_epochs_gives_up(self):
        # Fill node 1 completely so drained jobs have nowhere to go,
        # and cap queue patience below the outage length.
        trace = make_trace(5, "canneal", "streamcluster", "vips", "freqmine")
        plans = {0: NodeFaultPlan(crash_epoch=1, crash_rejoin_epochs=3)}
        simulator = simulate(
            trace, plans, recovery=RecoveryConfig(max_queue_epochs=1)
        )
        result = simulator.run()
        assert len(result.jobs_lost) == 2
        assert result.replacements == 0
        assert pool_totals(n.budget for n in simulator.nodes) == simulator.pool


class TestSessionResurrection:
    def test_reassembled_group_resurrects_checkpoint(self):
        # Both jobs packed on node 0 (SATORI -> a policy snapshot is
        # checkpointed after epoch 0). Node 0 crashes at epoch 1; both
        # jobs drain onto the empty capacity-2 node 1, membership
        # reassembles exactly, and node 1 adopts the checkpoint.
        trace = make_trace(4, "canneal", "streamcluster")
        plans = {0: NodeFaultPlan(crash_epoch=1, crash_rejoin_epochs=2)}
        simulator = simulate(
            trace, plans,
            placement=PackPlacement(),
            policy="SATORI",
            recovery=RecoveryConfig(snapshot_cadence_epochs=1),
        )
        result = simulator.run()
        assert result.jobs_lost == ()
        assert result.resurrections == 1
        (event,) = events_of(result, EVT_SESSION_RESURRECTED)
        assert event.node_id == 1
        assert event.epoch == 1
        assert "snapshot_epoch=0" in event.detail

    def test_scattered_group_cold_starts(self):
        # Three jobs packed on node 0 (capacity 3) and a fourth already
        # resident on node 1: after the crash the drained group cannot
        # reassemble (node 1 only has two free slots and a foreign
        # job), so no resurrection happens — the checkpoint-lag
        # contract makes resurrection an optimization, never a
        # requirement.
        trace = make_trace(4, "canneal", "streamcluster", "vips", "freqmine")
        plans = {0: NodeFaultPlan(crash_epoch=1, crash_rejoin_epochs=2)}
        simulator = simulate(
            trace, plans,
            placement=PackPlacement(),
            policy="SATORI",
            node_capacity=3,
            recovery=RecoveryConfig(snapshot_cadence_epochs=1),
        )
        result = simulator.run()
        assert result.resurrections == 0
        # Jobs survive regardless: two re-place onto node 1, the third
        # queues until node 0 rejoins.
        assert result.jobs_lost == ()

    def test_no_snapshot_no_resurrection(self):
        # EqualPartition produces no policy state, so there is nothing
        # to checkpoint and nothing to resurrect.
        trace = make_trace(4, "canneal", "streamcluster")
        plans = {0: NodeFaultPlan(crash_epoch=1, crash_rejoin_epochs=2)}
        result = simulate(trace, plans, placement=PackPlacement()).run()
        assert result.resurrections == 0
        assert result.jobs_lost == ()


class TestQuarantine:
    def test_breaker_quarantines_after_consecutive_failures(self):
        # Node 0 straggles past the deadline factor every epoch: each
        # node-epoch fails, and after `failure_threshold` consecutive
        # failures the breaker drains it. The jobs re-place onto
        # node 1 — quarantine loses nothing.
        trace = make_trace(5, "canneal", "streamcluster")
        plans = {
            0: NodeFaultPlan(
                straggler_rate=0.95,
                straggler_epochs=5,
                straggler_slowdown=4.0,
            )
        }
        simulator = simulate(
            trace, plans,
            placement=PackPlacement(),
            recovery=RecoveryConfig(
                failure_threshold=2,
                quarantine_epochs=1,
                straggler_deadline_factor=3.0,
            ),
        )
        result = simulator.run()
        assert result.node_epoch_failures >= 2
        assert result.quarantines == 1
        assert result.jobs_lost == ()
        (event,) = events_of(result, EVT_NODE_QUARANTINED)
        assert event.node_id == 0
        assert "cause=quarantine" in event.detail
        failed = [r for r in result.records if r.failed]
        assert failed and all(r.node_id == 0 for r in failed)
        assert all(r.throughput == 0.0 and r.fairness == 0.0 for r in failed)

    def test_mild_straggler_slows_but_does_not_fail(self):
        # A slowdown under the deadline factor degrades scores instead
        # of failing the epoch — and no quarantine fires.
        trace = make_trace(3, "canneal", "streamcluster")
        plans = {
            0: NodeFaultPlan(
                straggler_rate=0.95,
                straggler_epochs=3,
                straggler_slowdown=2.0,
            )
        }
        clean = simulate(make_trace(3, "canneal", "streamcluster"), {},
                         placement=PackPlacement()).run()
        slowed = simulate(trace, plans, placement=PackPlacement(),
                          recovery=RecoveryConfig(
                              straggler_deadline_factor=3.0)).run()
        assert slowed.quarantines == 0
        assert slowed.node_epoch_failures == 0
        slowed_records = [r for r in slowed.node_records(0) if r.slowdown > 1.0]
        assert slowed_records, "straggler window never fired for this seed"
        for record in slowed_records:
            clean_twin = next(
                r for r in clean.node_records(0) if r.epoch == record.epoch
            )
            assert record.throughput < clean_twin.throughput


class TestCrashDuringMigration:
    def test_migrated_job_survives_destination_crash(self):
        # Epoch 0: both jobs on node 0; its fairness is below the
        # (impossible-to-meet) threshold, so at the epoch-1 boundary
        # the worst-treated job migrates to node 1. Node 1 then crashes
        # at epoch 2 — the freshly migrated job must drain back into
        # the queue and re-place onto node 0, not be lost.
        trace = make_trace(5, "canneal", "streamcluster")
        plans = {1: NodeFaultPlan(crash_epoch=2, crash_rejoin_epochs=2)}
        simulator = simulate(
            trace, plans,
            placement=PackPlacement(),
            migration=MigrationConfig(fairness_threshold=1.0, patience=1),
        )
        result = simulator.run()
        # At least the epoch-1 migration happened (the recovered pair
        # may legitimately trigger another one after the rejoin).
        assert result.migrations >= 1
        assert result.jobs_lost == ()
        assert result.replacements == 1
        # Both jobs are back together on node 0 for the down window.
        epoch2 = next(r for r in result.node_records(0) if r.epoch == 2)
        assert epoch2.job_ids == (0, 1)


class TestChaosFleetPlans:
    def test_defaults_fit_the_trace(self):
        plans = chaos_fleet_plans(4, 12)
        plan = plans[0]
        assert plan.crash_epoch == 4
        assert plan.crash_rejoin_epochs == 3
        plan.validate_horizon(12)

    def test_outage_clamped_to_horizon(self):
        plans = chaos_fleet_plans(2, 6, crash_epoch=5, outage_epochs=10)
        assert plans[0].crash_rejoin_epochs == 1

    def test_straggler_node(self):
        plans = chaos_fleet_plans(3, 9, straggler_node=2, straggler_slowdown=3.0)
        assert plans[2].straggler_slowdown == 3.0
        assert plans[2].crash_epoch is None

    @pytest.mark.parametrize("kwargs,match", [
        (dict(crash_node=5), "crash_node"),
        (dict(crash_epoch=9), "crash_epoch"),
        (dict(straggler_node=9), "straggler_node"),
        (dict(straggler_node=0), "must differ"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(ClusterError, match=match):
            chaos_fleet_plans(2, 8, **kwargs)


class TestAdjustedFairness:
    def make_result(self, records, events=()):
        return ClusterResult(
            n_nodes=1, policy="EqualPartition", placement="pack",
            n_epochs=3, records=tuple(records), fleet_events=tuple(events),
        )

    def record(self, epoch, speedups):
        return NodeEpochRecord(
            epoch=epoch, node_id=0, job_ids=tuple(speedups),
            synthesized=False, throughput=1.0, fairness=1.0,
            job_speedups=dict(speedups),
        )

    def test_lost_job_counts_zero_through_residency(self):
        registry = default_registry()
        trace = ArrivalTrace(n_epochs=3, jobs=(
            JobArrival(0, registry.get("canneal"), 0),
            JobArrival(7, registry.get("vips"), 0, departure_epoch=2),
        ))
        result = self.make_result(
            records=[
                self.record(0, {0: 0.8, 7: 0.8}),
                self.record(1, {0: 0.8}),
                self.record(2, {0: 0.8}),
            ],
            events=[FleetEvent(1, EVT_JOB_LOST, 0, job_id=7)],
        )
        fairness = adjusted_epoch_fairness(result, trace)
        # Epoch 0: both at 0.8 -> perfectly fair. Epoch 1: job 7 lost
        # but still resident -> counts 0.0 and drags fairness to 0.5.
        # Epoch 2: job 7's residency ended -> no longer penalized.
        assert fairness[0] == pytest.approx(1.0)
        assert fairness[1] == pytest.approx(0.5)
        assert fairness[2] == pytest.approx(1.0)

    def test_without_losses_matches_raw_epoch_fairness(self):
        result = self.make_result(
            records=[self.record(0, {0: 1.0, 1: 0.5})]
        )
        trace = make_trace(3, "canneal", "streamcluster")
        assert adjusted_epoch_fairness(result, trace)[0] == pytest.approx(
            result.epoch_fairness()[0]
        )


class TestRecoveryIntervals:
    FAIRNESS = {0: 0.95, 1: 0.94, 2: 0.40, 3: 0.70, 4: 0.93, 5: 0.95}

    def test_counts_epochs_to_recovery(self):
        out = recovery_intervals(self.FAIRNESS, (2,))
        # Baseline = mean(0.95, 0.94) = 0.945; 95% of that ~ 0.898;
        # first epoch at/above it after the disruption is 4.
        assert out == {2: 2}

    def test_never_recovered_is_none(self):
        fairness = dict(self.FAIRNESS)
        fairness[4] = fairness[5] = 0.5
        assert recovery_intervals(fairness, (2,)) == {2: None}

    def test_disruption_at_zero_uses_unit_baseline(self):
        assert recovery_intervals({0: 0.99, 1: 0.99}, (0,)) == {0: 0}

    def test_no_disruptions_empty(self):
        assert recovery_intervals(self.FAIRNESS, ()) == {}


class TestChaosSweep:
    @pytest.fixture(scope="class")
    def report(self):
        trace = make_trace(6, "canneal", "streamcluster", "vips")
        plans = chaos_fleet_plans(2, 6, crash_node=0, crash_epoch=1,
                                  outage_epochs=2)
        return chaos_sweep(
            trace, n_nodes=2, fleet_plans=plans,
            placement="least_loaded", policy="EqualPartition",
            catalog=experiment_catalog(4), epoch_config=TINY, seed=1,
        )

    def test_recovery_arm_loses_nothing(self, report):
        assert report.recovery.jobs_lost == 0
        assert report.recovery.pool_conserved
        assert report.recovery.result.replacements > 0

    def test_ablation_is_strictly_worse(self, report):
        # The acceptance criterion: identical weather, and the
        # recovery-disabled arm loses jobs and ends less fair under
        # the disruption-adjusted metric.
        assert report.ablation.jobs_lost > 0
        assert report.ablation.pool_conserved  # parked, not leaked
        assert report.recovery.fairness > report.ablation.fairness

    def test_disruption_epochs_reported(self, report):
        assert report.disruption_epochs == (1,)
        assert 1 in report.recovery.recovery_intervals

    def test_report_round_trips_through_json(self, report):
        data = json.loads(json.dumps(report.to_dict()))
        assert set(data["arms"]) == {"recovery", "no_recovery"}
        assert data["arms"]["recovery"]["jobs_lost"] == 0
        assert data["arms"]["no_recovery"]["jobs_lost"] > 0
        assert "chaos sweep" in report.summary()

    def test_needs_at_least_one_plan(self):
        with pytest.raises(ClusterError, match="at least one"):
            chaos_sweep(make_trace(3, "canneal"), n_nodes=1, fleet_plans={})
