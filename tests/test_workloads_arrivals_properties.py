"""Property tests for the stochastic arrival-trace generators.

The cluster layer's paired comparisons rest on three trace properties:
explicit-seed determinism (same seed, same trace), rate curves that
stay inside their declared bounds, and burst/trough shapes that put
arrivals only where the generator promises them. Hypothesis sweeps the
parameter space instead of pinning a handful of examples.
"""

import math
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClusterError
from repro.workloads import arrivals as arrivals_module
from repro.workloads.arrivals import (
    diurnal_trace,
    flash_crowd_trace,
    poisson_trace,
)
from repro.workloads.registry import default_registry

#: Shared registry: building it per example would dominate the runtime.
REGISTRY = default_registry()

rates = st.floats(min_value=0.0, max_value=4.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
epoch_counts = st.integers(min_value=1, max_value=24)


def _recorded_rates(trace_fn, **kwargs):
    """The per-epoch rate curve a generator hands to ``_rate_trace``."""
    with mock.patch.object(
        arrivals_module, "_rate_trace", wraps=arrivals_module._rate_trace
    ) as spy:
        trace_fn(registry=REGISTRY, **kwargs)
    return list(spy.call_args.args[1])


class TestSeedDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, n_epochs=epoch_counts, base=rates)
    def test_diurnal_same_seed_same_trace(self, seed, n_epochs, base):
        kwargs = dict(
            n_epochs=n_epochs, base_rate=base, peak_rate=base + 2.0,
            period_epochs=6, seed=seed, registry=REGISTRY,
        )
        assert diurnal_trace(**kwargs).to_dict() == diurnal_trace(**kwargs).to_dict()

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, n_epochs=epoch_counts, burst=rates)
    def test_flash_crowd_same_seed_same_trace(self, seed, n_epochs, burst):
        kwargs = dict(
            n_epochs=n_epochs, base_rate=0.5, burst_rate=burst,
            burst_epoch=n_epochs // 2, burst_duration=2, seed=seed,
            registry=REGISTRY,
        )
        assert (
            flash_crowd_trace(**kwargs).to_dict()
            == flash_crowd_trace(**kwargs).to_dict()
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, n_epochs=epoch_counts, rate=rates)
    def test_flat_diurnal_reproduces_poisson_draw_for_draw(
        self, seed, n_epochs, rate
    ):
        # base == peak collapses the cosine to a constant curve; the
        # shared _rate_trace draw order then makes the diurnal trace
        # identical to the historical poisson one, job for job.
        flat = diurnal_trace(
            n_epochs=n_epochs, base_rate=rate, peak_rate=rate,
            period_epochs=6, seed=seed, registry=REGISTRY,
        )
        poisson = poisson_trace(
            n_epochs=n_epochs, arrival_rate=rate, seed=seed, registry=REGISTRY
        )
        assert flat.to_dict() == poisson.to_dict()


class TestRateBounds:
    @settings(max_examples=25, deadline=None)
    @given(
        n_epochs=epoch_counts,
        base=rates,
        lift=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        period=st.integers(min_value=2, max_value=16),
    )
    def test_diurnal_rates_within_base_and_peak(self, n_epochs, base, lift, period):
        peak = base + lift
        curve = _recorded_rates(
            diurnal_trace, n_epochs=n_epochs, base_rate=base, peak_rate=peak,
            period_epochs=period, seed=0,
        )
        assert len(curve) == n_epochs
        assert all(base - 1e-9 <= r <= peak + 1e-9 for r in curve)
        # Epoch 0 is the trough by construction.
        assert curve[0] == pytest.approx(base)
        if n_epochs > period // 2:
            assert curve[period // 2] == pytest.approx(
                peak if period % 2 == 0 else base + lift * 0.5 * (1.0 - math.cos(
                    2.0 * math.pi * (period // 2) / period))
            )

    @settings(max_examples=25, deadline=None)
    @given(
        n_epochs=epoch_counts,
        base=rates,
        burst=rates,
        burst_epoch=st.integers(min_value=0, max_value=30),
        burst_duration=st.integers(min_value=1, max_value=8),
    )
    def test_flash_crowd_rates_step_only_in_window(
        self, n_epochs, base, burst, burst_epoch, burst_duration
    ):
        curve = _recorded_rates(
            flash_crowd_trace, n_epochs=n_epochs, base_rate=base,
            burst_rate=burst, burst_epoch=burst_epoch,
            burst_duration=burst_duration, seed=0,
        )
        for epoch, rate in enumerate(curve):
            expected = (
                burst if burst_epoch <= epoch < burst_epoch + burst_duration else base
            )
            assert rate == pytest.approx(expected)


class TestShapeProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=seeds,
        n_epochs=st.integers(min_value=4, max_value=24),
        burst_duration=st.integers(min_value=1, max_value=4),
    )
    def test_silent_baseline_confines_arrivals_to_burst(
        self, seed, n_epochs, burst_duration
    ):
        burst_epoch = n_epochs // 3
        trace = flash_crowd_trace(
            n_epochs=n_epochs, base_rate=0.0, burst_rate=5.0,
            burst_epoch=burst_epoch, burst_duration=burst_duration,
            seed=seed, registry=REGISTRY,
        )
        for job in trace.jobs:
            assert burst_epoch <= job.arrival_epoch < burst_epoch + burst_duration

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, period=st.integers(min_value=2, max_value=8))
    def test_zero_base_diurnal_is_silent_at_troughs(self, seed, period):
        # Poisson(0) draws nothing: epochs where the cosine returns to
        # the trough (multiples of the period) must have no arrivals.
        trace = diurnal_trace(
            n_epochs=3 * period, base_rate=0.0, peak_rate=4.0,
            period_epochs=period, seed=seed, registry=REGISTRY,
        )
        for job in trace.jobs:
            assert job.arrival_epoch % period != 0

    @settings(max_examples=20, deadline=None)
    @given(
        seed=seeds,
        n_epochs=st.integers(min_value=2, max_value=16),
        max_jobs=st.integers(min_value=1, max_value=6),
    )
    def test_max_jobs_caps_residency_every_epoch(self, seed, n_epochs, max_jobs):
        trace = diurnal_trace(
            n_epochs=n_epochs, base_rate=2.0, peak_rate=6.0,
            period_epochs=4, mean_residency=3.0, max_jobs=max_jobs,
            seed=seed, registry=REGISTRY,
        )
        assert trace.peak_jobs <= max_jobs


class TestQosFractionProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, n_epochs=epoch_counts, rate=rates)
    def test_zero_fraction_is_draw_identical(self, seed, n_epochs, rate):
        # qos_fraction=0 must not consume RNG: the trace is bit-identical
        # to one generated before the parameter existed.
        untyped = poisson_trace(
            n_epochs=n_epochs, arrival_rate=rate, seed=seed, registry=REGISTRY
        )
        typed = poisson_trace(
            n_epochs=n_epochs, arrival_rate=rate, seed=seed, registry=REGISTRY,
            qos_fraction=0.0,
        )
        assert untyped.to_dict() == typed.to_dict()
        assert all(job.kind == "batch" for job in typed.jobs)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=seeds,
        fraction=st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
    )
    def test_qos_share_converges_to_fraction(self, seed, fraction):
        # Over a long trace the qos share is a binomial proportion;
        # 4 standard deviations bounds the flake rate far below
        # hypothesis's example count.
        trace = poisson_trace(
            n_epochs=60, arrival_rate=5.0, seed=seed, registry=REGISTRY,
            qos_fraction=fraction,
        )
        n = len(trace.jobs)
        assert n >= 100
        share = sum(job.kind == "qos" for job in trace.jobs) / n
        margin = 4.0 * math.sqrt(fraction * (1.0 - fraction) / n)
        assert abs(share - fraction) <= margin

    @settings(max_examples=20, deadline=None)
    @given(
        seed=seeds,
        n_epochs=st.integers(min_value=2, max_value=24),
        fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_flash_crowd_with_fraction_is_seed_deterministic(
        self, seed, n_epochs, fraction
    ):
        kwargs = dict(
            n_epochs=n_epochs, base_rate=1.0, burst_rate=4.0,
            burst_epoch=n_epochs // 2, burst_duration=2, seed=seed,
            registry=REGISTRY, qos_fraction=fraction,
        )
        assert (
            flash_crowd_trace(**kwargs).to_dict()
            == flash_crowd_trace(**kwargs).to_dict()
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_fraction_one_tags_everything(self, seed):
        trace = diurnal_trace(
            n_epochs=8, base_rate=1.0, peak_rate=3.0, period_epochs=4,
            seed=seed, registry=REGISTRY, qos_fraction=1.0,
        )
        assert all(job.kind == "qos" for job in trace.jobs)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ClusterError, match="qos_fraction"):
            poisson_trace(n_epochs=4, qos_fraction=1.5, registry=REGISTRY)
        with pytest.raises(ClusterError, match="qos_fraction"):
            poisson_trace(n_epochs=4, qos_fraction=-0.1, registry=REGISTRY)


class TestValidation:
    def test_diurnal_peak_below_base_rejected(self):
        with pytest.raises(ClusterError, match="peak_rate"):
            diurnal_trace(n_epochs=4, base_rate=2.0, peak_rate=1.0, registry=REGISTRY)

    def test_diurnal_short_period_rejected(self):
        with pytest.raises(ClusterError, match="period_epochs"):
            diurnal_trace(n_epochs=4, period_epochs=1, registry=REGISTRY)

    def test_flash_crowd_negative_rates_rejected(self):
        with pytest.raises(ClusterError, match="base_rate"):
            flash_crowd_trace(n_epochs=4, base_rate=-0.1, registry=REGISTRY)
        with pytest.raises(ClusterError, match="burst_rate"):
            flash_crowd_trace(n_epochs=4, burst_rate=-1.0, registry=REGISTRY)

    def test_flash_crowd_bad_window_rejected(self):
        with pytest.raises(ClusterError, match="burst_epoch"):
            flash_crowd_trace(n_epochs=4, burst_epoch=-1, registry=REGISTRY)
        with pytest.raises(ClusterError, match="burst_duration"):
            flash_crowd_trace(n_epochs=4, burst_duration=0, registry=REGISTRY)
