"""Tests for the extracted policy↔server control session."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.faults.plan import FaultPlan
from repro.faults.schedule import FaultSchedule
from repro.policies.registry import make_policy
from repro.system.session import ControlSession, ServerLike
from repro.system.simulation import CoLocationSimulator


def test_simulator_satisfies_protocol(make_simulator):
    assert isinstance(make_simulator(), ServerLike)


class TestStepSemantics:
    def test_run_records_one_entry_per_step(self, make_simulator, catalog6, parsec_mix3, goals):
        policy = make_policy("EqualPartition", parsec_mix3, catalog6, goals=goals)
        session = ControlSession(policy, make_simulator(), goals=goals)
        telemetry = session.run(12)
        assert len(telemetry) == 12
        assert telemetry is session.telemetry

    def test_policy_sees_held_baseline_not_true_isolation(
        self, make_simulator, catalog6, parsec_mix3, goals
    ):
        """The policy view must carry the held baseline even as the
        server's true isolation drifts with workload phases."""
        seen = []

        class Spy:
            name = "spy"

            def __init__(self, inner):
                self._inner = inner

            def decide(self, observation):
                if observation is not None:
                    seen.append(observation.isolation_ips)
                return self._inner.decide(observation)

            def diagnostics(self):
                return {}

        policy = Spy(make_policy("EqualPartition", parsec_mix3, catalog6, goals=goals))
        session = ControlSession(policy, make_simulator(), goals=goals, baseline_reset_s=math.inf)
        session.run(8)
        held = tuple(float(b) for b in session.baseline)
        assert all(view == held for view in seen)

    def test_periodic_reset_changes_held_baseline(
        self, make_simulator, catalog6, parsec_mix3, goals
    ):
        policy = make_policy("EqualPartition", parsec_mix3, catalog6, goals=goals)
        simulator = make_simulator(noise_sigma=0.05)
        session = ControlSession(policy, simulator, goals=goals, baseline_reset_s=0.5)
        session.step()
        first = np.array(session.baseline)
        session.run(10)
        assert not np.allclose(first, np.array(session.baseline))

    def test_refresh_baseline_patches_pending_view(
        self, make_simulator, catalog6, parsec_mix3, goals
    ):
        captured = []

        class Spy:
            name = "spy"

            def __init__(self, inner):
                self._inner = inner

            def decide(self, observation):
                if observation is not None:
                    captured.append(observation.isolation_ips)
                return self._inner.decide(observation)

            def diagnostics(self):
                return {}

        policy = Spy(make_policy("EqualPartition", parsec_mix3, catalog6, goals=goals))
        simulator = make_simulator(noise_sigma=0.05)
        session = ControlSession(policy, simulator, goals=goals)
        session.step()
        fresh = session.refresh_baseline()
        session.step()
        assert captured[-1] == tuple(float(b) for b in fresh)

    def test_satori_weights_land_in_telemetry(self, make_simulator, catalog6, parsec_mix3, goals):
        policy = make_policy("SATORI", parsec_mix3, catalog6, goals=goals, rng=3)
        session = ControlSession(policy, make_simulator(), goals=goals)
        session.run(5)
        # The first interval predates the controller's first weight
        # computation; every later record must carry them.
        assert all(record.weights is not None for record in list(session.telemetry)[1:])

    def test_record_weights_false_keeps_weights_unset(
        self, make_simulator, catalog6, parsec_mix3, goals
    ):
        policy = make_policy("SATORI", parsec_mix3, catalog6, goals=goals, rng=3)
        session = ControlSession(policy, make_simulator(), goals=goals, record_weights=False)
        session.run(5)
        assert all(record.weights is None for record in session.telemetry)
        # ... though the diagnostics still expose them via ``extra``.
        assert "weight_throughput" in session.telemetry[-1].extra


class TestFaultTrail:
    def test_fault_trail_recorded_under_schedule(
        self, make_simulator, catalog6, parsec_mix3, goals
    ):
        plan = FaultPlan(sample_nan_rate=0.3, crash_rate=0.05)
        schedule = FaultSchedule.generate(
            plan, n_jobs=3, duration_s=5.0, interval_s=0.1, seed=11
        )
        simulator = make_simulator(fault_schedule=schedule)
        policy = make_policy("EqualPartition", parsec_mix3, catalog6, goals=goals)
        session = ControlSession(policy, simulator, goals=goals)
        session.run(20)
        for record in session.telemetry:
            assert "actuation_ok" in record.extra
            assert "faults_active" in record.extra

    def test_scored_ips_are_true_not_corrupted(
        self, make_simulator, catalog6, parsec_mix3, goals
    ):
        """Telemetry must never contain the NaNs the corrupted monitor
        feed shows the policy."""
        plan = FaultPlan(sample_nan_rate=0.5)
        schedule = FaultSchedule.generate(
            plan, n_jobs=3, duration_s=5.0, interval_s=0.1, seed=11
        )
        simulator = make_simulator(fault_schedule=schedule)
        policy = make_policy("EqualPartition", parsec_mix3, catalog6, goals=goals)
        session = ControlSession(policy, simulator, goals=goals)
        session.run(30)
        for record in session.telemetry:
            assert all(math.isfinite(v) for v in record.ips)


class TestValidationAgainstRunner:
    def test_matches_run_policy_output(self, catalog6, parsec_mix3, goals):
        """A hand-driven session reproduces run_policy bit for bit."""
        from repro.experiments.runner import RunConfig, run_policy

        run_config = RunConfig(duration_s=3.0, baseline_reset_s=1.0)
        policy = make_policy("SATORI", parsec_mix3, catalog6, goals=goals, rng=9)
        expected = run_policy(
            policy, parsec_mix3, catalog=catalog6, run_config=run_config, goals=goals, seed=4
        )

        policy2 = make_policy("SATORI", parsec_mix3, catalog6, goals=goals, rng=9)
        simulator = CoLocationSimulator(
            parsec_mix3,
            catalog=catalog6,
            control_interval_s=run_config.interval_s,
            noise_sigma=run_config.noise_sigma,
            seed=4,
        )
        session = ControlSession(
            policy2, simulator, goals=goals, baseline_reset_s=run_config.baseline_reset_s
        )
        telemetry = session.run(run_config.n_steps)
        assert telemetry.to_dict() == expected.telemetry.to_dict()
