"""Tests for the hierarchical control plane: elastic budgets and the
cluster-level budget broker (conservation, determinism, snapshot
resume, and the broker x placement sweep)."""

import json

import pytest

from repro.broker import (
    BrokerView,
    GlobalBroker,
    HarvestBroker,
    StaticBroker,
    TradeBroker,
    broker_names,
    make_broker,
    register_broker,
)
from repro.cluster import (
    BudgetTransfer,
    ClusterSimulator,
    ResourceBudget,
    ServerNode,
    coerce_budget,
    node_capacity,
    pool_totals,
    scaled_catalog,
)
from repro.errors import ClusterError
from repro.experiments.broker import broker_sweep
from repro.experiments.runner import RunConfig
from repro.obs import TraceCollector, use_collector
from repro.state import PolicyState
from repro.workloads.arrivals import poisson_trace

#: Tiny methodology for fast simulator tests.
TINY = RunConfig(duration_s=1.0, baseline_reset_s=0.5)


def tiny_trace(n_epochs=3, seed=7, initial_jobs=4, rate=1.5):
    return poisson_trace(
        n_epochs=n_epochs,
        arrival_rate=rate,
        mean_residency=2.0,
        suites=("ecp",),
        seed=seed,
        initial_jobs=initial_jobs,
    )


def view(node_id, budget, n_jobs=1, mean_speedup=1.0, catalog=None):
    """A BrokerView with a floor derived the way the simulator does it."""
    return BrokerView(
        node_id=node_id,
        budget=budget,
        floor=budget.floor(catalog, n_jobs),
        n_jobs=n_jobs,
        mean_speedup=mean_speedup,
    )


@pytest.fixture
def views3(catalog4):
    """Three nodes at full budget with a clear best/middle/worst order."""
    full = ResourceBudget.from_catalog(catalog4)
    return [
        view(0, full, n_jobs=2, mean_speedup=0.4, catalog=catalog4),
        view(1, full, n_jobs=1, mean_speedup=0.7, catalog=catalog4),
        view(2, full, n_jobs=1, mean_speedup=0.95, catalog=catalog4),
    ]


class TestResourceBudget:
    def test_normalizes_and_sorts(self, catalog4):
        budget = ResourceBudget({"llc_ways": 4, "cores": 2, "memory_bandwidth": 3})
        assert budget.names == ("cores", "llc_ways", "memory_bandwidth")
        assert budget.get("cores") == 2
        assert budget.total_units == 9

    def test_rejects_zero_units_and_duplicates(self):
        with pytest.raises(ClusterError):
            ResourceBudget((("cores", 0),))
        with pytest.raises(ClusterError):
            ResourceBudget((("cores", 1), ("cores", 2)))

    def test_transfer_round_trips(self, catalog4):
        budget = ResourceBudget.from_catalog(catalog4)
        grown = budget.transfer("cores", 2)
        assert grown.get("cores") == budget.get("cores") + 2
        assert grown.transfer("cores", -2) == budget
        with pytest.raises(ClusterError):
            budget.transfer("cores", -budget.get("cores"))  # would hit 0

    def test_capacity_and_floor(self, catalog4):
        budget = ResourceBudget.from_catalog(catalog4)
        assert budget.capacity(catalog4) == node_capacity(catalog4)
        floor = budget.floor(catalog4, n_jobs=3)
        assert all(floor.get(r.name) == 3 * r.min_units for r in catalog4)
        # An empty node still owns one unit of everything.
        empty_floor = budget.floor(catalog4, n_jobs=0)
        assert all(empty_floor.get(name) >= 1 for name in empty_floor.names)

    def test_scaled_catalog_preserves_identity_at_full_budget(self, catalog4):
        full = ResourceBudget.from_catalog(catalog4)
        assert scaled_catalog(catalog4, full) is catalog4
        shrunk = scaled_catalog(catalog4, full.transfer("cores", -1))
        assert shrunk is not catalog4
        assert {r.name: r.units for r in shrunk}["cores"] == full.get("cores") - 1

    def test_coerce_budget_forms(self, catalog4):
        uniform = coerce_budget(3, catalog4)
        assert all(n == 3 for _, n in uniform.units)
        mapping = coerce_budget({r.name: 2 for r in catalog4}, catalog4)
        assert mapping.total_units == 2 * len(catalog4)
        assert coerce_budget(uniform, catalog4) is uniform
        with pytest.raises(ClusterError):
            coerce_budget({"cores": 2}, catalog4)  # missing resources
        with pytest.raises(ClusterError):
            coerce_budget(2.5, catalog4)

    def test_pool_totals(self, catalog4):
        budgets = [ResourceBudget.uniform(catalog4, n) for n in (2, 3, 4)]
        assert pool_totals(budgets) == {r.name: 9 for r in catalog4}


class TestBudgetedNode:
    def test_capacity_tracks_budget(self, catalog4, registry):
        node = ServerNode(0, catalog4)
        assert node.capacity == node_capacity(catalog4)
        node.set_budget(ResourceBudget.uniform(catalog4, 2))
        assert node.capacity == 2
        assert node.effective_catalog is not catalog4

    def test_budget_cannot_strand_resident_jobs(self, catalog4, registry):
        from repro.workloads.arrivals import JobArrival

        node = ServerNode(0, catalog4)
        for job_id in range(2):
            node.add_job(JobArrival(job_id, registry.get("canneal"), 0))
        with pytest.raises(ClusterError):
            node.set_budget(ResourceBudget.uniform(catalog4, 1))

    def test_budget_must_match_catalog(self, catalog4):
        node = ServerNode(0, catalog4)
        with pytest.raises(ClusterError):
            node.set_budget(ResourceBudget((("cores", 4),)))


class TestBrokerRegistry:
    def test_all_schemes_registered(self):
        assert set(broker_names()) >= {"static", "harvest", "trade", "bo"}

    def test_unknown_scheme_raises(self):
        with pytest.raises(ClusterError):
            make_broker("nope")

    def test_kwargs_reach_the_factory(self):
        broker = make_broker("harvest", step=2)
        assert isinstance(broker, HarvestBroker)


class TestConservation:
    @pytest.mark.parametrize("name", ["static", "harvest", "trade", "bo"])
    def test_every_scheme_conserves_the_pool(self, name, views3, catalog4):
        broker = make_broker(name)
        views = views3
        pool = pool_totals(v.budget for v in views)
        for epoch in range(5):
            decision = broker.decide(epoch, views)
            assert pool_totals(decision.values()) == pool
            # Feed the decision back as the next epoch's budgets.
            views = [
                BrokerView(
                    node_id=v.node_id,
                    budget=decision[v.node_id],
                    floor=decision[v.node_id].floor(catalog4, v.n_jobs),
                    n_jobs=v.n_jobs,
                    mean_speedup=v.mean_speedup,
                )
                for v in views
            ]

    @pytest.mark.parametrize("name", ["harvest", "trade", "bo"])
    def test_floors_respected(self, name, views3):
        broker = make_broker(name)
        decision = broker.decide(0, views3)
        for v in views3:
            new = decision[v.node_id]
            for resource in v.floor.names:
                assert new.get(resource) >= v.floor.get(resource)


class TestStaticBroker:
    def test_never_moves_anything(self, views3):
        decision = StaticBroker().decide(0, views3)
        assert decision == {v.node_id: v.budget for v in views3}


class TestHarvestBroker:
    def test_moves_from_best_to_worst(self, views3):
        broker = HarvestBroker(step=1)
        decision = broker.decide(0, views3)
        # Node 0 is worst-off (speedup 0.4), node 2 best-off (0.95).
        assert decision[0].total_units > views3[0].budget.total_units
        assert decision[2].total_units < views3[2].budget.total_units
        assert decision[1] == views3[1].budget
        assert broker.moved_units > 0

    def test_min_gap_suppresses_level_fleets(self, catalog4):
        full = ResourceBudget.from_catalog(catalog4)
        level = [view(i, full, mean_speedup=0.8, catalog=catalog4) for i in range(3)]
        broker = HarvestBroker(min_gap=0.1)
        assert broker.decide(0, level) == {v.node_id: v.budget for v in level}

    def test_donor_without_slack_is_skipped(self, catalog4):
        # The best-off node is pinned at its floor; nothing can move.
        full = ResourceBudget.from_catalog(catalog4)
        floor_bound = ResourceBudget.uniform(catalog4, 4)
        views = [
            view(0, full, n_jobs=1, mean_speedup=0.4, catalog=catalog4),
            view(1, floor_bound, n_jobs=4, mean_speedup=0.9, catalog=catalog4),
        ]
        decision = HarvestBroker().decide(0, views)
        assert decision == {v.node_id: v.budget for v in views}


class TestTradeBroker:
    def test_hysteresis_blocks_near_tied_nodes(self, catalog4):
        full = ResourceBudget.from_catalog(catalog4)
        views = [
            view(0, full, mean_speedup=0.80, catalog=catalog4),
            view(1, full, mean_speedup=0.83, catalog=catalog4),
        ]
        broker = TradeBroker(hysteresis=0.05)
        assert broker.decide(0, views) == {v.node_id: v.budget for v in views}

    def test_trade_exchanges_resources(self, catalog4):
        # Worst node is cores-starved but llc-rich; best node is full.
        starved = ResourceBudget({"cores": 2, "llc_ways": 8, "memory_bandwidth": 4})
        full = ResourceBudget.from_catalog(catalog4)
        views = [
            view(0, starved, n_jobs=2, mean_speedup=0.3, catalog=catalog4),
            view(1, full, n_jobs=1, mean_speedup=0.9, catalog=catalog4),
        ]
        decision = TradeBroker(hysteresis=0.05).decide(0, views)
        # Worst received its scarcest resource (cores) from the best...
        assert decision[0].get("cores") == 3
        assert decision[1].get("cores") == 3
        # ... and paid with its most abundant (llc_ways).
        assert decision[0].get("llc_ways") == 7
        assert decision[1].get("llc_ways") == 5

    def test_cooldown_suppresses_reversal(self, catalog4):
        broker = TradeBroker(hysteresis=0.0, cooldown=3)
        starved = ResourceBudget({"cores": 2, "llc_ways": 8, "memory_bandwidth": 4})
        full = ResourceBudget.from_catalog(catalog4)
        views = [
            view(0, starved, n_jobs=2, mean_speedup=0.3, catalog=catalog4),
            view(1, full, n_jobs=1, mean_speedup=0.9, catalog=catalog4),
        ]
        first = broker.decide(0, views)
        # Next epoch the roles swap exactly; the reverse of the executed
        # exchange is on cooldown, so nothing moves.
        swapped = [
            view(0, first[0], n_jobs=2, mean_speedup=0.9, catalog=catalog4),
            view(1, first[1], n_jobs=1, mean_speedup=0.3, catalog=catalog4),
        ]
        second = broker.decide(1, swapped)
        assert second == {v.node_id: v.budget for v in swapped}


class TestDeterminismAndResume:
    def _rounds(self, catalog4, n=6):
        """A fixed sequence of view-rounds with drifting speedups."""
        full = ResourceBudget.from_catalog(catalog4)
        rounds = []
        budgets = {0: full, 1: full, 2: full}
        for epoch in range(n):
            rounds.append(
                [
                    view(i, budgets[i], n_jobs=1,
                         mean_speedup=0.3 + 0.2 * ((i + epoch) % 3),
                         catalog=catalog4)
                    for i in range(3)
                ]
            )
        return rounds

    def _drive(self, broker, rounds, catalog4):
        """Feed rounds through a broker, chaining budgets like the
        simulator does, and collect every decision."""
        decisions = []
        budgets = None
        for epoch, round_views in enumerate(rounds):
            if budgets is not None:
                round_views = [
                    BrokerView(
                        node_id=v.node_id,
                        budget=budgets[v.node_id],
                        floor=budgets[v.node_id].floor(catalog4, v.n_jobs),
                        n_jobs=v.n_jobs,
                        mean_speedup=v.mean_speedup,
                    )
                    for v in round_views
                ]
            budgets = broker.decide(epoch, round_views)
            decisions.append(budgets)
        return decisions

    @pytest.mark.parametrize("name", ["harvest", "trade", "bo"])
    def test_fixed_seed_is_deterministic(self, name, catalog4):
        rounds = self._rounds(catalog4)
        a = self._drive(make_broker(name), rounds, catalog4)
        b = self._drive(make_broker(name), rounds, catalog4)
        assert a == b

    @pytest.mark.parametrize("name", ["static", "harvest", "trade", "bo"])
    def test_snapshot_restore_resumes_bit_identically(self, name, catalog4):
        rounds = self._rounds(catalog4, n=8)
        reference = make_broker(name)
        ref_decisions = self._drive(reference, rounds, catalog4)

        # Replay the first half on a fresh broker, snapshot, restore
        # into another fresh broker (through JSON, like a checkpoint
        # file), and continue with the second half.
        first = make_broker(name)
        half = self._drive(first, rounds[:4], catalog4)
        state = PolicyState.from_dict(
            json.loads(json.dumps(first.snapshot().to_dict()))
        )
        resumed = make_broker(name).restore(state)
        # Rebuild the second half's views from the midpoint budgets,
        # exactly as the reference run saw them.
        decisions = []
        budgets = None
        for offset, round_views in enumerate(rounds[4:]):
            epoch = 4 + offset
            base = half[-1] if budgets is None else budgets
            round_views = [
                BrokerView(
                    node_id=v.node_id,
                    budget=base[v.node_id],
                    floor=base[v.node_id].floor(catalog4, v.n_jobs),
                    n_jobs=v.n_jobs,
                    mean_speedup=v.mean_speedup,
                )
                for v in round_views
            ]
            budgets = resumed.decide(epoch, round_views)
            decisions.append(budgets)
        assert half + decisions == ref_decisions

    def test_restore_rejects_wrong_kind(self):
        state = StaticBroker().snapshot()
        with pytest.raises(ClusterError):
            HarvestBroker().restore(state)


class TestBudgetTransfer:
    def test_validation(self):
        with pytest.raises(ClusterError):
            BudgetTransfer(epoch=0, resource="cores", units=0, source=0, target=1)
        with pytest.raises(ClusterError):
            BudgetTransfer(epoch=0, resource="cores", units=1, source=1, target=1)

    def test_round_trip(self):
        transfer = BudgetTransfer(epoch=3, resource="cores", units=2, source=0, target=1)
        assert BudgetTransfer.from_dict(
            json.loads(json.dumps(transfer.to_dict()))
        ) == transfer


@register_broker
class _LeakyBroker(GlobalBroker):
    """Test double: violates conservation by dropping one unit."""

    name = "_leaky"

    def decide(self, epoch, views):
        decision = self._unchanged(views)
        donor = views[-1].node_id
        decision[donor] = decision[donor].transfer("cores", -1)
        return decision


@register_broker
class _StarvingBroker(GlobalBroker):
    """Test double: moves everything it can, ignoring floors."""

    name = "_starving"

    def decide(self, epoch, views):
        decision = self._unchanged(views)
        a, b = views[0].node_id, views[-1].node_id
        units = decision[a].get("cores") - 1
        if units > 0:
            decision[a] = decision[a].transfer("cores", -units)
            decision[b] = decision[b].transfer("cores", units)
        return decision


class TestSimulatorIntegration:
    def test_static_broker_matches_no_broker_bit_for_bit(self, catalog4):
        trace = tiny_trace()
        results = []
        for broker in (None, "static"):
            sim = ClusterSimulator(
                trace, n_nodes=2, catalog=catalog4, epoch_config=TINY,
                policy="EqualPartition", seed=3, broker=broker,
            )
            results.append(sim.run())
        none_result, static_result = results
        assert static_result.records == none_result.records
        assert static_result.broker == "static"
        assert none_result.broker == "none"
        assert static_result.budget_transfers == 0

    @pytest.mark.parametrize("broker", ["harvest", "trade", "bo"])
    def test_pool_is_conserved_every_epoch(self, broker, catalog4):
        sim = ClusterSimulator(
            tiny_trace(n_epochs=3), n_nodes=3, catalog=catalog4,
            epoch_config=TINY, policy="EqualPartition", seed=3, broker=broker,
        )
        pool = sim.pool
        result = sim.run()
        for epoch in range(result.n_epochs):
            budgets = [r.budget for r in result.records if r.epoch == epoch]
            assert pool_totals(budgets) == pool
        # End state too: the nodes' final budgets still sum to the pool.
        assert pool_totals(n.budget for n in sim.nodes) == pool

    def test_broker_decisions_are_observable(self, catalog4):
        collector = TraceCollector()
        with use_collector(collector):
            ClusterSimulator(
                tiny_trace(n_epochs=3), n_nodes=3, catalog=catalog4,
                epoch_config=TINY, policy="EqualPartition", seed=3,
                broker="harvest",
            ).run()
        decides = [e for e in collector.events if e.name == "broker.decide"]
        assert len(decides) == 3
        transfers = [e for e in collector.events if e.name == "budget_transfer"]
        assert transfers, "harvest on an uneven fleet should move units"
        for event in transfers:
            args = dict(event.args)
            assert args["source"] != args["target"]
            assert args["units"] >= 1
        series = {
            name for name, _ in collector.metrics.items()
            if name.endswith(".budget_units")
        }
        assert len(series) == 3  # one per node

    def test_heterogeneous_budgets_and_summary(self, catalog4):
        sim = ClusterSimulator(
            tiny_trace(), n_nodes=2, catalog=catalog4, epoch_config=TINY,
            policy="EqualPartition", seed=3,
            node_budgets=[4, {"cores": 3, "llc_ways": 4, "memory_bandwidth": 4}],
        )
        assert sim.nodes[0].capacity == 4
        assert sim.nodes[1].capacity == 3
        result = sim.run()
        summary = result.node_summary()
        assert len(summary[0]) == 6
        node0, node1 = summary
        assert node0[4] == 12.0  # mean budget units, constant without a broker
        assert node1[4] == 11.0
        assert 0.0 <= node0[5] <= 1.0  # budget occupancy is a fraction

    def test_node_budgets_length_must_match(self, catalog4):
        with pytest.raises(ClusterError):
            ClusterSimulator(
                tiny_trace(), n_nodes=2, catalog=catalog4,
                node_budgets=[4, 4, 4],
            )

    def test_conservation_violation_fails_loudly(self, catalog4):
        sim = ClusterSimulator(
            tiny_trace(), n_nodes=2, catalog=catalog4, epoch_config=TINY,
            policy="EqualPartition", seed=3, broker="_leaky",
        )
        with pytest.raises(ClusterError, match="conservation"):
            sim.run()

    def test_floor_violation_fails_loudly(self, catalog4):
        sim = ClusterSimulator(
            tiny_trace(initial_jobs=6, rate=3.0), n_nodes=2, catalog=catalog4,
            epoch_config=TINY, policy="EqualPartition", seed=3,
            broker="_starving",
        )
        with pytest.raises(ClusterError, match="floor"):
            sim.run()

    def test_broker_kwargs_require_registry_id(self, catalog4):
        with pytest.raises(ClusterError):
            ClusterSimulator(
                tiny_trace(), n_nodes=2, catalog=catalog4,
                broker=StaticBroker(), broker_kwargs={"x": 1},
            )

    def test_slo_attainment(self, catalog4):
        result = ClusterSimulator(
            tiny_trace(), n_nodes=2, catalog=catalog4, epoch_config=TINY,
            policy="EqualPartition", seed=3,
        ).run()
        assert result.slo_attainment(0.0) == 1.0
        assert 0.0 <= result.slo_attainment(0.8) <= 1.0


class TestBrokerSweep:
    def test_sweep_and_deltas_vs_static(self, catalog4):
        sweep = broker_sweep(
            tiny_trace(n_epochs=3), n_nodes=2,
            brokers=("static", "harvest"), placements=("round_robin",),
            policy="EqualPartition", catalog=catalog4, epoch_config=TINY,
            seed=3,
        )
        assert sweep.brokers() == ("static", "harvest")
        deltas = sweep.deltas_vs_static()
        assert len(deltas) == 1
        delta = deltas[0]
        assert delta.broker == "harvest"
        assert delta.speedup.n_common > 0
        assert delta.budget_transfers == sweep.cell(
            "harvest", "round_robin"
        ).result.budget_transfers

    def test_unknown_broker_rejected(self, catalog4):
        with pytest.raises(ClusterError):
            broker_sweep(tiny_trace(), n_nodes=2, brokers=("nope",))

    def test_missing_cell_raises(self, catalog4):
        sweep = broker_sweep(
            tiny_trace(n_epochs=2), n_nodes=2, brokers=("static",),
            placements=("round_robin",), policy="EqualPartition",
            catalog=catalog4, epoch_config=TINY, seed=3,
        )
        with pytest.raises(ClusterError):
            sweep.cell("harvest", "round_robin")
