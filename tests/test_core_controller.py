"""Tests for the SATORI controller (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.controller import SatoriController
from repro.core.initializers import good_initial_set
from repro.errors import PolicyError
from repro.experiments.runner import RunConfig, run_policy
from repro.resources.space import ConfigurationSpace
from repro.rng import make_rng
from repro.system.simulation import CoLocationSimulator


@pytest.fixture
def space(catalog6):
    return ConfigurationSpace(catalog6, 3)


def drive(controller, simulator, n_steps):
    """Run the Algorithm-1 loop manually for n_steps."""
    observation = None
    for _ in range(n_steps):
        config = controller.decide(observation)
        observation = simulator.step(config)
    return observation


class TestLifecycle:
    def test_first_decision_is_equal_partition(self, space):
        controller = SatoriController(space, rng=0)
        assert controller.decide(None) == space.equal_partition()

    def test_initial_set_drained_in_order(self, space, make_simulator):
        controller = SatoriController(space, rng=0, n_initial_random=1)
        initial = controller.initial_configurations
        sim = make_simulator()
        observation = None
        seen = []
        for _ in range(len(initial)):
            config = controller.decide(observation)
            seen.append(config)
            observation = sim.step(config)
        assert seen == initial
        assert seen[0] == space.equal_partition()
        assert len(set(seen)) == len(seen)

    def test_records_accumulate(self, space, make_simulator):
        controller = SatoriController(space, rng=0)
        drive(controller, make_simulator(), 20)
        assert len(controller.records) == 19  # one per observed interval

    def test_invalid_mode(self, space):
        with pytest.raises(PolicyError):
            SatoriController(space, mode="greedy")

    def test_reset_clears_state(self, space, make_simulator):
        controller = SatoriController(space, rng=0)
        drive(controller, make_simulator(), 15)
        controller.reset()
        assert len(controller.records) == 0
        assert controller.decide(None) == space.equal_partition()

    def test_decisions_always_valid(self, space, make_simulator):
        controller = SatoriController(space, rng=3)
        sim = make_simulator()
        observation = None
        for _ in range(30):
            config = controller.decide(observation)
            assert space.contains(config)
            observation = sim.step(config)


class TestVariants:
    def test_mode_names(self, space):
        assert SatoriController(space, mode="dynamic").name == "SATORI"
        assert SatoriController(space, mode="throughput").name == "Throughput SATORI"
        assert SatoriController(space, mode="fairness").name == "Fairness SATORI"
        assert "static" in SatoriController(space, mode="static").name

    def test_static_weights_constant(self, space, make_simulator):
        controller = SatoriController(space, mode="static", rng=0)
        drive(controller, make_simulator(), 12)
        assert controller.weights.pair == (0.5, 0.5)

    def test_throughput_variant_weights(self, space, make_simulator):
        controller = SatoriController(space, mode="throughput", rng=0)
        drive(controller, make_simulator(), 5)
        assert controller.weights.pair == (1.0, 0.0)

    def test_dynamic_weights_move(self, space, make_simulator):
        controller = SatoriController(space, mode="dynamic", rng=0)
        sim = make_simulator()
        observation = None
        weights = []
        for _ in range(60):
            config = controller.decide(observation)
            observation = sim.step(config)
            if controller.weights is not None:
                weights.append(controller.weights.w_throughput)
        assert max(weights) - min(weights) > 0.01


class TestDiagnostics:
    def test_diagnostics_keys(self, space, make_simulator):
        controller = SatoriController(space, rng=0)
        drive(controller, make_simulator(), 25)
        diag = controller.diagnostics()
        for key in ("weight_throughput", "weight_fairness", "objective"):
            assert key in diag

    def test_decision_time_tracked(self, space, make_simulator):
        controller = SatoriController(space, rng=0)
        drive(controller, make_simulator(), 10)
        assert controller.mean_decision_time_s > 0

    def test_idle_detection_engages_on_stable_objective(self, space, parsec_mix3, catalog6):
        """With zero noise and a repeating config, idleness should trigger."""
        controller = SatoriController(
            space, rng=0, idle_detection=True, idle_patience=5, idle_tolerance=0.5
        )
        sim = CoLocationSimulator(parsec_mix3, catalog6, noise_sigma=0.0, seed=0)
        drive(controller, sim, 60)
        assert controller.idle_fraction > 0

    def test_idle_disabled_never_idles(self, space, make_simulator):
        controller = SatoriController(space, rng=0, idle_detection=False)
        drive(controller, make_simulator(), 40)
        assert controller.idle_fraction == 0.0


class TestEndToEnd:
    def test_run_policy_integration(self, space, parsec_mix3, catalog6):
        controller = SatoriController(space, rng=1)
        result = run_policy(
            controller, parsec_mix3, catalog6, RunConfig(duration_s=4.0), seed=1
        )
        assert 0 < result.throughput <= 1
        assert 0 < result.fairness <= 1
        assert len(result.telemetry) == 40

    def test_beats_random_on_average(self, space, parsec_mix3, catalog6):
        from repro.policies.random_search import RandomSearchPolicy

        rc = RunConfig(duration_s=10.0)
        satori = run_policy(SatoriController(space, rng=2), parsec_mix3, catalog6, rc, seed=2)
        random = run_policy(RandomSearchPolicy(space, rng=2), parsec_mix3, catalog6, rc, seed=2)
        satori_score = satori.throughput + satori.fairness
        random_score = random.throughput + random.fairness
        assert satori_score > random_score
