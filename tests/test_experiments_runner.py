"""Tests for the experiment runner and comparison harness."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.comparison import (
    STANDARD_POLICY_ORDER,
    aggregate,
    compare_on_mix,
    compare_on_mixes,
    full_space,
    standard_policies,
)
from repro.experiments.runner import RunConfig, experiment_catalog, run_policy
from repro.policies.static import EqualPartitionPolicy
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH


class TestExperimentCatalog:
    def test_default_units(self):
        catalog = experiment_catalog()
        assert all(catalog.get(name).units == 8 for name in catalog.names)

    def test_total_capacity_preserved(self):
        for units in (4, 8, 10):
            catalog = experiment_catalog(units)
            assert catalog.get(LLC_WAYS).capacity == pytest.approx(13.75 * 2**20)
            assert catalog.get(MEMORY_BANDWIDTH).capacity == pytest.approx(12e9)

    def test_too_few_units_rejected(self):
        with pytest.raises(ExperimentError):
            experiment_catalog(units=1)


class TestRunConfig:
    def test_n_steps(self):
        assert RunConfig(duration_s=2.0, interval_s=0.1).n_steps == 20

    def test_invalid_duration(self):
        with pytest.raises(ExperimentError):
            RunConfig(duration_s=0.01, interval_s=0.1)

    def test_invalid_warmup(self):
        with pytest.raises(ExperimentError):
            RunConfig(warmup_fraction=1.0)


class TestRunPolicy:
    def test_telemetry_length(self, catalog6, parsec_mix3):
        policy = EqualPartitionPolicy(full_space(catalog6, 3))
        result = run_policy(policy, parsec_mix3, catalog6, RunConfig(duration_s=3.0), seed=0)
        assert len(result.telemetry) == 30

    def test_scored_drops_warmup(self, catalog6, parsec_mix3):
        policy = EqualPartitionPolicy(full_space(catalog6, 3))
        rc = RunConfig(duration_s=4.0, warmup_fraction=0.25)
        result = run_policy(policy, parsec_mix3, catalog6, rc, seed=0)
        assert len(result.scored) == 30

    def test_scores_in_range(self, catalog6, parsec_mix3):
        policy = EqualPartitionPolicy(full_space(catalog6, 3))
        result = run_policy(policy, parsec_mix3, catalog6, RunConfig(duration_s=3.0), seed=0)
        assert 0 < result.throughput <= 1
        assert 0 < result.fairness <= 1
        assert 0 < result.worst_job_speedup <= 1

    def test_deterministic_given_seed(self, catalog6, parsec_mix3):
        def run():
            policy = EqualPartitionPolicy(full_space(catalog6, 3))
            return run_policy(policy, parsec_mix3, catalog6, RunConfig(duration_s=2.0), seed=42)

        assert run().throughput == run().throughput

    def test_baseline_reset_interval(self, catalog6, parsec_mix3):
        """Policies see a baseline held constant within each reset period."""
        seen_baselines = []

        class Spy(EqualPartitionPolicy):
            def decide(self, observation):
                if observation is not None:
                    seen_baselines.append(observation.isolation_ips)
                return super().decide(observation)

        policy = Spy(full_space(catalog6, 3))
        rc = RunConfig(duration_s=3.0, baseline_reset_s=1.0)
        run_policy(policy, parsec_mix3, catalog6, rc, seed=0)
        # Within the first reset period the held baseline is constant.
        assert seen_baselines[0] == seen_baselines[5]
        # Across reset periods it changes (noise + phases).
        assert seen_baselines[0] != seen_baselines[15]


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self, catalog6, parsec_mix3):
        return compare_on_mix(
            parsec_mix3, catalog6, RunConfig(duration_s=5.0), seed=0
        )

    def test_all_standard_policies_present(self, comparison):
        assert set(comparison.scores) == set(STANDARD_POLICY_ORDER)

    def test_scores_normalized_to_oracle(self, comparison):
        for score in comparison.scores.values():
            assert 0 < score.throughput_vs_oracle < 200
            assert 0 < score.fairness_vs_oracle < 200

    def test_unknown_policy_raises(self, comparison):
        with pytest.raises(ExperimentError):
            comparison.score("Heracles")

    def test_include_subset(self, catalog6, parsec_mix3):
        comparison = compare_on_mix(
            parsec_mix3,
            catalog6,
            RunConfig(duration_s=2.0),
            seed=0,
            include=("Random", "SATORI"),
        )
        assert set(comparison.scores) == {"Random", "SATORI"}

    def test_aggregate(self, catalog6, parsec_mix3, synthetic_pair):
        comparisons = compare_on_mixes(
            [parsec_mix3],
            catalog6,
            RunConfig(duration_s=2.0),
            seed=0,
            include=("Random",),
        )
        agg = aggregate(comparisons, ("Random",))
        assert "Random" in agg
        t, f = agg["Random"]
        assert 0 < t < 200 and 0 < f < 200

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ExperimentError):
            aggregate([])

    def test_standard_policies_resource_sets(self, catalog6):
        policies = standard_policies(catalog6, 3, seed=0)
        assert policies["dCAT"].controlled_resources == (LLC_WAYS,)
        assert set(policies["CoPart"].controlled_resources) == {LLC_WAYS, MEMORY_BANDWIDTH}
        assert set(policies["SATORI"].controlled_resources) == {
            CORES,
            LLC_WAYS,
            MEMORY_BANDWIDTH,
        }

    def test_standard_policies_unknown_name(self, catalog6):
        with pytest.raises(ExperimentError):
            standard_policies(catalog6, 3, include=("Heracles",))
