"""Fault-injection substrate and hardened-control-loop tests.

Covers the resilience contract end to end: plan/schedule determinism
and serialization, the faulty register file, the simulator's injection
points (actuation retry, last-known-good fallback, monitor corruption,
crashes/hangs), the controller's hardening layer (validation, retreat,
watchdog), and the engine-level guarantees (faulted runs bit-identical
across worker counts, fault plans in digests and the cache, retries,
partial batches, cache degradation).
"""

from __future__ import annotations

import dataclasses
import math
import time

import numpy as np
import pytest

import repro.engine.engine as engine_module
from repro.engine import ExecutionEngine, RunCache, RunError, RunSpec, derive_seed
from repro.errors import (
    ActuationError,
    EngineError,
    ExperimentError,
    HardwareError,
)
from repro.faults import (
    ACTUATION,
    CRASH,
    DROP,
    HANG,
    OUTAGE_ATTEMPTS,
    OUTLIER,
    STUCK,
    FaultEvent,
    FaultPlan,
    FaultSchedule,
    FaultyMsrFile,
)
from repro.hardware.msr import IA32_L3_QOS_MASK_BASE
from repro.core.controller import SatoriController
from repro.experiments.runner import RunConfig, experiment_catalog, run_policy
from repro.resources.space import ConfigurationSpace
from repro.system.simulation import CoLocationSimulator, Observation
from repro.workloads.mixes import mix_from_names

FAST = RunConfig(duration_s=2.0, interval_s=0.1, baseline_reset_s=1.0)

#: A plan exercising every fault family over the whole run.
BUSY_PLAN = FaultPlan(
    actuation_fail_rate=0.3,
    actuation_fail_attempts=2,
    actuation_outage_rate=0.05,
    sample_drop_rate=0.1,
    sample_nan_rate=0.1,
    sample_stuck_rate=0.1,
    sample_outlier_rate=0.1,
    crash_rate=0.05,
    hang_rate=0.05,
)


def schedule_of(*events: FaultEvent) -> FaultSchedule:
    return FaultSchedule(events=tuple(events))


# -- FaultPlan -----------------------------------------------------------


class TestFaultPlan:
    def test_round_trip(self):
        rebuilt = FaultPlan.from_dict(BUSY_PLAN.to_dict())
        assert rebuilt == BUSY_PLAN

    def test_hashable_frozen(self):
        assert hash(BUSY_PLAN) == hash(FaultPlan.from_dict(BUSY_PLAN.to_dict()))
        with pytest.raises(dataclasses.FrozenInstanceError):
            BUSY_PLAN.crash_rate = 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start_s": -1.0},
            {"start_s": 5.0, "end_s": 5.0},
            {"crash_rate": 1.0},
            {"sample_drop_rate": -0.1},
            {"actuation_fail_attempts": 0},
            {"crash_restart_s": 0.0},
            {"sample_outlier_scale": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ExperimentError):
            FaultPlan(**kwargs)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ExperimentError):
            FaultPlan.from_dict({"crash_rate": 0.1, "meltdown_rate": 0.5})

    def test_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(crash_rate=0.1).is_empty

    def test_window_clamps_to_duration(self):
        plan = FaultPlan(start_s=2.0, end_s=50.0, crash_rate=0.1)
        assert plan.window(10.0) == (2.0, 10.0)
        assert FaultPlan(crash_rate=0.1).window(10.0) == (0.0, 10.0)


# -- FaultSchedule -------------------------------------------------------


class TestFaultSchedule:
    def test_generation_is_deterministic(self):
        a = FaultSchedule.generate(BUSY_PLAN, n_jobs=3, duration_s=5.0, interval_s=0.1, seed=7)
        b = FaultSchedule.generate(BUSY_PLAN, n_jobs=3, duration_s=5.0, interval_s=0.1, seed=7)
        assert a == b and len(a) > 0

    def test_seed_changes_timeline(self):
        a = FaultSchedule.generate(BUSY_PLAN, n_jobs=3, duration_s=5.0, interval_s=0.1, seed=7)
        b = FaultSchedule.generate(BUSY_PLAN, n_jobs=3, duration_s=5.0, interval_s=0.1, seed=8)
        assert a != b

    def test_json_round_trip(self):
        schedule = FaultSchedule.generate(
            BUSY_PLAN, n_jobs=2, duration_s=3.0, interval_s=0.1, seed=1
        )
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_events_confined_to_window(self):
        plan = dataclasses.replace(BUSY_PLAN, start_s=2.0, end_s=4.0)
        schedule = FaultSchedule.generate(plan, n_jobs=3, duration_s=10.0, interval_s=0.1, seed=3)
        assert len(schedule) > 0
        assert all(2.0 <= e.start_s < 4.0 for e in schedule)

    def test_window_restriction_preserves_shared_timeline(self):
        # Draws are consumed unconditionally, so narrowing the window
        # must not shift the events inside the remaining overlap.
        full = FaultSchedule.generate(BUSY_PLAN, n_jobs=3, duration_s=6.0, interval_s=0.1, seed=5)
        narrowed = FaultSchedule.generate(
            dataclasses.replace(BUSY_PLAN, end_s=3.0),
            n_jobs=3,
            duration_s=6.0,
            interval_s=0.1,
            seed=5,
        )
        assert tuple(e for e in full if e.start_s < 3.0) == narrowed.events

    def test_lookups(self):
        schedule = schedule_of(
            FaultEvent(ACTUATION, 0.0, 0.1, magnitude=2),
            FaultEvent(DROP, 0.0, 0.1, job=1),
            FaultEvent(CRASH, 0.0, 1.0, job=0),
        )
        assert schedule.actuation_fail_attempts(0.05) == 2
        assert schedule.actuation_fail_attempts(0.15) == 0
        assert [e.kind for e in schedule.monitor_events(1, 0.05)] == [DROP]
        assert schedule.monitor_events(0, 0.05) == []
        assert [e.kind for _, e in schedule.workload_events(0, 0.5)] == [CRASH]
        assert schedule.active_count(0.05) == 3
        assert schedule.active_count(0.5) == 1

    def test_generate_validation(self):
        with pytest.raises(ExperimentError):
            FaultSchedule.generate(BUSY_PLAN, n_jobs=0, duration_s=1.0, interval_s=0.1)
        with pytest.raises(ExperimentError):
            FaultSchedule.generate(BUSY_PLAN, n_jobs=1, duration_s=1.0, interval_s=0.0)

    def test_event_validation(self):
        with pytest.raises(ExperimentError):
            FaultEvent("gremlin", 0.0, 1.0)
        with pytest.raises(ExperimentError):
            FaultEvent(CRASH, 1.0, 1.0)


# -- FaultyMsrFile -------------------------------------------------------


class TestFaultyMsrFile:
    def test_armed_write_raises_without_mutating(self):
        msr = FaultyMsrFile()
        msr.write(IA32_L3_QOS_MASK_BASE, 0b1111)
        msr.arm()
        with pytest.raises(HardwareError) as err:
            msr.write(IA32_L3_QOS_MASK_BASE, 0b0011)
        # The error names the register and the value that was lost.
        assert f"{IA32_L3_QOS_MASK_BASE:#x}" in str(err.value)
        assert f"{0b0011:#x}" in str(err.value)
        assert msr.read(IA32_L3_QOS_MASK_BASE) == 0b1111
        assert msr.injected_failures == 1

    def test_disarm_restores_writes(self):
        msr = FaultyMsrFile()
        msr.arm()
        msr.arm(False)
        msr.write(IA32_L3_QOS_MASK_BASE, 0b0111)
        assert msr.read(IA32_L3_QOS_MASK_BASE) == 0b0111
        assert not msr.armed and msr.injected_failures == 0


# -- simulator injection points -----------------------------------------


class TestSimulatorActuationFaults:
    def test_transient_failure_rescued_by_retry(self, make_simulator):
        schedule = schedule_of(FaultEvent(ACTUATION, 0.0, 0.1, magnitude=2))
        sim = make_simulator(fault_schedule=schedule, actuation_retries=2)
        obs = sim.step(sim.equal_partition())
        assert obs.actuation_ok
        assert sim.current_config == sim.equal_partition()
        assert sim.msr.read(IA32_L3_QOS_MASK_BASE) != 0
        assert sim.fault_counters["actuation_failures"] == 2
        assert sim.fault_counters["actuation_exhausted"] == 0

    def test_retry_failures_cost_ips(self, catalog6, parsec_mix3):
        schedule = schedule_of(FaultEvent(ACTUATION, 0.0, 0.1, magnitude=2))
        clean = CoLocationSimulator(parsec_mix3, catalog6, noise_sigma=0.0, seed=1)
        faulted = CoLocationSimulator(
            parsec_mix3,
            catalog6,
            noise_sigma=0.0,
            seed=1,
            fault_schedule=schedule,
            actuation_retries=2,
        )
        base = np.array(clean.step(clean.equal_partition()).ips)
        hit = np.array(faulted.step(faulted.equal_partition()).ips)
        assert np.all(hit < base)

    def test_outage_keeps_last_known_good(self, make_simulator):
        schedule = schedule_of(
            FaultEvent(ACTUATION, 0.1, 1.1, magnitude=OUTAGE_ATTEMPTS)
        )
        sim = make_simulator(fault_schedule=schedule, actuation_retries=2)
        good = sim.equal_partition()
        assert sim.step(good).actuation_ok
        flipped = good  # any install during the outage fails
        obs = sim.step(flipped)
        assert not obs.actuation_ok
        assert obs.config == good  # last-known-good stayed in force
        assert sim.fault_counters["actuation_exhausted"] == 1

    def test_apply_raises_actuation_error_on_exhaustion(self, make_simulator):
        schedule = schedule_of(
            FaultEvent(ACTUATION, 0.0, 1.0, magnitude=OUTAGE_ATTEMPTS)
        )
        sim = make_simulator(fault_schedule=schedule, actuation_retries=1)
        with pytest.raises(ActuationError):
            sim.apply(sim.equal_partition())
        assert sim.current_config is None


class TestSimulatorMonitorFaults:
    def test_drop_reports_nan_but_true_ips_survives(self, make_simulator):
        schedule = schedule_of(FaultEvent(DROP, 0.0, 0.1, job=1))
        sim = make_simulator(fault_schedule=schedule)
        obs = sim.step(sim.equal_partition())
        assert math.isnan(obs.ips[1])
        assert all(np.isfinite(sim.last_true_ips))
        assert sim.last_true_ips[1] > 0
        assert sim.fault_counters["samples_dropped"] == 1

    def test_outlier_scales_reported_value(self, make_simulator):
        schedule = schedule_of(FaultEvent(OUTLIER, 0.0, 0.1, job=0, magnitude=4.0))
        sim = make_simulator(fault_schedule=schedule)
        obs = sim.step(sim.equal_partition())
        assert obs.ips[0] == pytest.approx(4.0 * sim.last_true_ips[0])
        assert sim.fault_counters["samples_outlier"] == 1

    def test_stuck_counter_repeats_previous_report(self, make_simulator):
        schedule = schedule_of(FaultEvent(STUCK, 0.1, 0.2, job=0))
        sim = make_simulator(fault_schedule=schedule)
        first = sim.step(sim.equal_partition())
        second = sim.step()
        assert second.ips[0] == first.ips[0]
        assert second.ips[0] != sim.last_true_ips[0]
        assert sim.fault_counters["samples_stuck"] == 1


class TestSimulatorWorkloadFaults:
    def test_crash_zeroes_ips_and_progress(self, catalog6, parsec_mix3):
        schedule = schedule_of(FaultEvent(CRASH, 0.1, 1.0, job=0))
        sim = CoLocationSimulator(
            parsec_mix3, catalog6, noise_sigma=0.0, seed=1, fault_schedule=schedule
        )
        sim.step(sim.equal_partition())
        obs = sim.step()
        assert obs.ips[0] == 0.0
        assert all(v > 0 for v in obs.ips[1:])
        assert sim.fault_counters["crashes"] == 1

    def test_hang_zeroes_ips_once_per_event(self, catalog6, parsec_mix3):
        schedule = schedule_of(FaultEvent(HANG, 0.0, 0.3, job=2))
        sim = CoLocationSimulator(
            parsec_mix3, catalog6, noise_sigma=0.0, seed=1, fault_schedule=schedule
        )
        for _ in range(3):
            obs = sim.step(sim.equal_partition())
            assert obs.ips[2] == 0.0
        # One event spanning three intervals counts once.
        assert sim.fault_counters["hangs"] == 1
        assert sim.step().ips[2] > 0


# -- controller hardening ------------------------------------------------


def make_observation(config, ips, iso, ok=True, t=0.1):
    return Observation(
        time_s=t,
        interval_s=0.1,
        ips=tuple(float(v) for v in ips),
        isolation_ips=tuple(float(v) for v in iso),
        config=config,
        completed_runs=(0,) * len(ips),
        actuation_ok=ok,
    )


@pytest.fixture
def satori(space6x3):
    return SatoriController(space6x3, rng=0, watchdog_threshold=3)


class TestControllerHardening:
    ISO = (2.0, 2.0, 2.0)

    def good_obs(self, config, scale=1.0, ok=True):
        return make_observation(config, (1.1 * scale, 1.0 * scale, 0.9 * scale), self.ISO, ok=ok)

    def test_validation_rejects_nonfinite(self, satori):
        config = satori.decide(None)
        satori.decide(make_observation(config, (1.0, float("nan"), 1.0), self.ISO))
        assert satori.rejected_samples == 1
        assert len(satori.records) == 0

    def test_validation_rejects_all_zero(self, satori):
        config = satori.decide(None)
        satori.decide(make_observation(config, (0.0, 0.0, 0.0), self.ISO))
        assert satori.rejected_samples == 1

    def test_validation_rejects_impossible_speedups(self, satori):
        config = satori.decide(None)
        satori.decide(make_observation(config, (10.0, 1.0, 1.0), self.ISO))
        assert satori.rejected_samples == 1

    def test_unhardened_controller_falls_over_on_degenerate_interval(self, space6x3):
        naive = SatoriController(space6x3, rng=0, hardening=False)
        config = naive.decide(None)
        with pytest.raises(ExperimentError):
            naive.decide(make_observation(config, (0.0, 0.0, 0.0), self.ISO))

    def test_retreat_returns_best_recorded_configuration(self, satori):
        config = satori.decide(None)
        # Feed enough clean samples to build records (scores vary so the
        # incumbent is distinguishable).
        for scale in (0.6, 1.0, 0.8, 0.7, 0.9, 0.75):
            config = satori.decide(self.good_obs(config, scale))
        values = satori.records.objective_values(satori.weights.pair)
        incumbent = satori.records.samples[int(np.nanargmax(values))].config
        retreat = satori.decide(make_observation(config, (0.0, 0.0, 0.0), self.ISO))
        assert retreat == incumbent

    def test_watchdog_engages_and_holds_installed_config(self, satori):
        config = satori.decide(None)
        installed = config  # the observation reports what actually ran
        for _ in range(2):
            config = satori.decide(self.good_obs(installed, ok=False))
            assert not satori.watchdog_active
        held = satori.decide(self.good_obs(installed, ok=False))
        assert satori.watchdog_active
        assert held == installed.restrict(satori.controlled_resources)
        assert satori.fallback_intervals == 1

    def test_watchdog_reengages_bo_on_recovery(self, satori):
        config = satori.decide(None)
        for _ in range(4):
            satori.decide(self.good_obs(config, ok=False))
        assert satori.watchdog_active
        records_before = len(satori.records)
        satori.decide(self.good_obs(config, ok=True))
        assert not satori.watchdog_active
        # The clean interval was recorded; faulted ones never were.
        assert len(satori.records) == records_before + 1

    def test_failed_actuation_not_attributed_to_suggestion(self, satori):
        suggested = satori.decide(None)
        installed = satori.space.sample(rng=5)
        while installed == suggested:
            installed = satori.space.sample(rng=None)
        satori.decide(self.good_obs(installed, ok=False))
        assert all(s.config != suggested for s in satori.records.samples)

    def test_hardening_diagnostics_exposed(self, satori):
        config = satori.decide(None)
        satori.decide(self.good_obs(config))
        diag = satori.diagnostics()
        assert {"watchdog_active", "rejected_samples", "fallback_intervals"} <= set(diag)


# -- engine-level guarantees --------------------------------------------


@pytest.fixture(scope="module")
def fault_batch():
    catalog = experiment_catalog(units=4)
    mixes = [
        mix_from_names(["canneal", "fluidanimate"]),
        mix_from_names(["streamcluster", "vips"]),
    ]
    return [
        RunSpec(
            mix=mix,
            policy="Random",
            catalog=catalog,
            run_config=FAST,
            seed=3,
            fault_plan=BUSY_PLAN,
        )
        for mix in mixes
    ]


class TestFaultedDeterminism:
    def test_workers_do_not_change_faulted_results(self, fault_batch):
        serial = [r.to_dict() for r in ExecutionEngine(workers=1).run(fault_batch)]
        parallel = [r.to_dict() for r in ExecutionEngine(workers=2).run(fault_batch)]
        assert serial == parallel

    def test_identical_plans_identical_digests(self, fault_batch):
        clone = dataclasses.replace(fault_batch[0], fault_plan=FaultPlan.from_dict(BUSY_PLAN.to_dict()))
        assert clone.digest == fault_batch[0].digest

    def test_fault_plan_changes_digest(self, fault_batch):
        clean = dataclasses.replace(fault_batch[0], fault_plan=None)
        milder = dataclasses.replace(
            fault_batch[0], fault_plan=dataclasses.replace(BUSY_PLAN, crash_rate=0.01)
        )
        assert len({fault_batch[0].digest, clean.digest, milder.digest}) == 3

    def test_faulted_runs_cache_hit(self, fault_batch, tmp_path):
        engine = ExecutionEngine(cache=RunCache(tmp_path))
        first = engine.run(fault_batch)
        again = engine.run(fault_batch)
        assert engine.stats.executed == len(fault_batch)
        assert engine.stats.cache_hits == len(fault_batch)
        assert [r.to_dict() for r in first] == [r.to_dict() for r in again]

    def test_environment_digest_ignores_policy_identity(self, fault_batch):
        base = fault_batch[0]
        other_policy = dataclasses.replace(base, policy="EqualPartition")
        other_kwargs = dataclasses.replace(base, policy_kwargs={"hardening": False})
        other_goals = dataclasses.replace(base, goals=("hmean_speedup", "jain"))
        assert base.digest != other_policy.digest
        assert base.environment_digest == other_policy.environment_digest
        assert base.environment_digest == other_kwargs.environment_digest
        assert base.environment_digest == other_goals.environment_digest
        # Environment changes do move it.
        other_seed = dataclasses.replace(base, seed=4)
        assert base.environment_digest != other_seed.environment_digest

    def test_fault_seed_derives_from_environment_digest(self, fault_batch):
        base = fault_batch[0]
        assert derive_seed(base.environment_digest, "faults") != derive_seed(
            base.digest, "faults"
        )

    def test_policy_variants_share_fault_timeline(self, fault_batch):
        # Same environment ⇒ same realized schedule inside execute_run:
        # verify through the recorded faults_active telemetry trail.
        base = fault_batch[0]
        twin = dataclasses.replace(base, policy="EqualPartition")
        results = ExecutionEngine().run([base, twin])
        trails = [r.telemetry.series("faults_active").tolist() for r in results]
        assert trails[0] == trails[1]


class TestEngineResilience:
    def test_retry_rescues_transient_failure(self, fault_batch, monkeypatch):
        real = engine_module._execute_run_payload
        failures = {"left": 1}

        def flaky(spec):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("transient worker loss")
            return real(spec)

        monkeypatch.setattr(engine_module, "_execute_run_payload", flaky)
        engine = ExecutionEngine(retries=1)
        results = engine.run(fault_batch[:1])
        assert results[0].to_dict() == ExecutionEngine().run(fault_batch[:1])[0].to_dict()
        assert engine.stats.retried == 1
        assert engine.stats.failed == 0

    def test_partial_batch_records_failures(self, fault_batch, monkeypatch):
        real = engine_module._execute_run_payload

        def selective(spec):
            if spec == fault_batch[0]:
                raise RuntimeError("this spec always dies")
            return real(spec)

        monkeypatch.setattr(engine_module, "_execute_run_payload", selective)
        engine = ExecutionEngine()
        results = engine.run(fault_batch, on_error="record")
        assert isinstance(results[0], RunError)
        assert results[0].spec == fault_batch[0]
        assert "this spec always dies" in results[0].error
        assert not isinstance(results[1], RunError)
        assert engine.stats.failed == 1

    def test_on_error_raise_is_default(self, fault_batch, monkeypatch):
        def boom(spec):
            raise RuntimeError("no survivors")

        monkeypatch.setattr(engine_module, "_execute_run_payload", boom)
        with pytest.raises(EngineError):
            ExecutionEngine().run(fault_batch)

    def test_on_error_validated(self, fault_batch):
        with pytest.raises(EngineError):
            ExecutionEngine().run(fault_batch, on_error="ignore")

    def test_unwritable_cache_degrades_gracefully(self, fault_batch, tmp_path):
        blocker = tmp_path / "not-a-directory"
        blocker.write_text("occupied")
        cache = RunCache(blocker)
        engine = ExecutionEngine(cache=cache)
        with pytest.warns(RuntimeWarning, match="caching disabled"):
            results = engine.run(fault_batch[:1])
        assert not isinstance(results[0], RunError)
        assert cache.disabled
        assert engine.stats.cache_errors == 1
        # Subsequent batches still compute, silently uncached.
        again = engine.run(fault_batch[:1])
        assert again[0].to_dict() == results[0].to_dict()
        assert engine.stats.cache_errors == 1


class TestFaultedRunPolicy:
    def test_run_policy_scores_true_ips(self, catalog6, parsec_mix3):
        from repro.policies.static import EqualPartitionPolicy

        plan = FaultPlan(sample_outlier_rate=0.5, sample_outlier_scale=16.0)
        space = ConfigurationSpace(catalog6, len(parsec_mix3))
        noisy = run_policy(
            EqualPartitionPolicy(space),
            parsec_mix3,
            catalog6,
            FAST,
            seed=0,
            faults=plan,
            fault_seed=0,
        )
        clean = run_policy(EqualPartitionPolicy(space), parsec_mix3, catalog6, FAST, seed=0)
        # Heavy outlier corruption hits the policy's view only; the
        # scored telemetry stays at the clean level (same noise seed).
        assert noisy.throughput == pytest.approx(clean.throughput, rel=1e-6)

    def test_fault_trail_recorded(self, catalog6, parsec_mix3):
        from repro.policies.static import EqualPartitionPolicy

        plan = FaultPlan(crash_rate=0.3)
        space = ConfigurationSpace(catalog6, len(parsec_mix3))
        result = run_policy(
            EqualPartitionPolicy(space),
            parsec_mix3,
            catalog6,
            FAST,
            seed=0,
            faults=plan,
            fault_seed=1,
        )
        trail = result.telemetry.series("faults_active")
        assert len(trail) == FAST.n_steps
        assert trail.max() > 0


class TestEngineHardening:
    """Deadlines, backoff, and the knobs the fleet recovery layer uses."""

    def test_constructor_validation(self):
        with pytest.raises(EngineError):
            ExecutionEngine(spec_timeout_s=0)
        with pytest.raises(EngineError):
            ExecutionEngine(backoff_base_s=-0.1)
        with pytest.raises(EngineError):
            ExecutionEngine(backoff_jitter=-0.5)

    def test_backoff_is_exponential_and_deterministic(self, fault_batch, monkeypatch):
        from repro.obs import TraceCollector, use_collector

        real = engine_module._execute_run_payload
        failures = {"left": 2}

        def flaky(spec):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("transient worker loss")
            return real(spec)

        slept = []
        monkeypatch.setattr(engine_module, "_execute_run_payload", flaky)
        monkeypatch.setattr(engine_module.time, "sleep", slept.append)
        engine = ExecutionEngine(retries=2, backoff_base_s=0.2, backoff_jitter=0.25)
        collector = TraceCollector()
        with use_collector(collector):
            engine.run(fault_batch[:1])
        # Round r sleeps base * 2**(r-1), stretched by a jitter
        # fraction derived from the retried spec's digest — the exact
        # delays are reproducible, not merely bounded.
        spec = fault_batch[0]
        expected = [
            0.2 * 2 ** (r - 1)
            * (1.0 + 0.25 * (derive_seed(spec.digest, "backoff", r) % 10**6 / 10**6))
            for r in (1, 2)
        ]
        assert slept == pytest.approx(expected)
        backoffs = [e for e in collector.events if e.name == "retry_backoff"]
        assert [dict(e.args)["round"] for e in backoffs] == [1, 2]
        assert [dict(e.args)["delay_s"] for e in backoffs] == pytest.approx(expected)

    def test_zero_base_skips_sleep(self, fault_batch, monkeypatch):
        def boom(spec):
            raise RuntimeError("always")

        slept = []
        monkeypatch.setattr(engine_module, "_execute_run_payload", boom)
        monkeypatch.setattr(engine_module.time, "sleep", slept.append)
        engine = ExecutionEngine(retries=2)  # backoff_base_s defaults to 0
        engine.run(fault_batch[:1], on_error="record")
        assert slept == []

    def test_per_spec_deadline_abandons_straggler(self, fault_batch, monkeypatch):
        # Worker pools fork on this platform, so the monkeypatched
        # payload function is inherited by the children: the first spec
        # outlives its deadline, the second finishes normally.
        real = engine_module._execute_run_payload
        hang_spec = fault_batch[0]

        def selective(spec):
            if spec == hang_spec:
                time.sleep(2.5)
            return real(spec)

        monkeypatch.setattr(engine_module, "_execute_run_payload", selective)
        engine = ExecutionEngine(workers=2, spec_timeout_s=0.4)
        started = time.perf_counter()
        results = engine.run(fault_batch, on_error="record")
        assert isinstance(results[0], RunError)
        assert "per-spec deadline" in results[0].error
        assert not isinstance(results[1], RunError)
        # The batch did not wait out the straggler's full 2.5s sleep.
        assert time.perf_counter() - started < 2.5
        assert engine.stats.failed == 1

    def test_no_deadlines_is_single_wait(self, fault_batch):
        # Without timeouts the pool path produces complete results and
        # preserves order (the historical behavior).
        results = ExecutionEngine(workers=2).run(fault_batch)
        assert all(not isinstance(r, RunError) for r in results)
