"""Tests for the per-goal records and objective reconstruction (Sec. III-B)."""

import numpy as np
import pytest

from repro.core.objective import GoalRecords
from repro.errors import ModelError
from repro.resources.space import ConfigurationSpace
from repro.resources.types import default_catalog
from repro.rng import make_rng


@pytest.fixture
def space():
    return ConfigurationSpace(default_catalog(6, 6, 6), 3)


@pytest.fixture
def records(space):
    recs = GoalRecords(("throughput", "fairness"))
    rng = make_rng(0)
    for i in range(6):
        config = space.sample(rng)
        recs.add(config, space.encode(config), (0.1 * i, 1.0 - 0.1 * i))
    return recs


class TestRecording:
    def test_length(self, records):
        assert len(records) == 6

    def test_goal_names(self, records):
        assert records.goal_names == ("throughput", "fairness")

    def test_inputs_shape(self, records, space):
        assert records.inputs().shape == (6, space.dimensions)

    def test_goal_values(self, records):
        assert records.goal_values("throughput")[2] == pytest.approx(0.2)
        assert records.goal_values("fairness")[2] == pytest.approx(0.8)

    def test_unknown_goal(self, records):
        with pytest.raises(ModelError):
            records.goal_values("energy")

    def test_wrong_score_count_rejected(self, records, space):
        config = space.equal_partition()
        with pytest.raises(ModelError):
            records.add(config, space.encode(config), (0.5,))

    def test_latest(self, records):
        assert records.latest().scores == (0.5, 0.5)

    def test_empty_records_raise(self):
        empty = GoalRecords()
        with pytest.raises(ModelError):
            empty.inputs()
        with pytest.raises(ModelError):
            empty.latest()

    def test_max_samples_evicts_oldest(self, space):
        recs = GoalRecords(max_samples=4)
        rng = make_rng(1)
        for i in range(6):
            config = space.sample(rng)
            recs.add(config, space.encode(config), (float(i), 0.0))
        assert len(recs) == 4
        assert recs.goal_values("throughput")[0] == pytest.approx(2.0)

    def test_reevaluation_appends(self, space):
        recs = GoalRecords()
        config = space.equal_partition()
        recs.add(config, space.encode(config), (0.5, 0.5))
        recs.add(config, space.encode(config), (0.6, 0.4))
        assert len(recs) == 2


class TestObjectiveReconstruction:
    def test_weighted_combination(self, records):
        values = records.objective_values((1.0, 0.0))
        assert values[3] == pytest.approx(0.3)
        values = records.objective_values((0.0, 1.0))
        assert values[3] == pytest.approx(0.7)

    def test_reconstruction_without_resampling(self, records):
        """Changing weights re-scores existing samples — no re-runs."""
        before = len(records)
        a = records.objective_values((0.75, 0.25))
        b = records.objective_values((0.25, 0.75))
        assert len(records) == before
        assert not np.allclose(a, b)

    def test_best_depends_on_weights(self, records):
        best_t, _ = records.best((1.0, 0.0))
        best_f, _ = records.best((0.0, 1.0))
        assert best_t != best_f  # throughput grows, fairness shrinks across samples

    def test_best_value(self, records):
        _, value = records.best((1.0, 0.0))
        assert value == pytest.approx(0.5)

    def test_wrong_weight_count(self, records):
        with pytest.raises(ModelError):
            records.objective_values((0.5,))

    def test_three_goal_extensibility(self, space):
        """The records are goal-count agnostic (paper's extensibility claim)."""
        recs = GoalRecords(("throughput", "fairness", "energy"))
        config = space.equal_partition()
        recs.add(config, space.encode(config), (0.5, 0.6, 0.7))
        values = recs.objective_values((0.2, 0.3, 0.5))
        assert values[0] == pytest.approx(0.2 * 0.5 + 0.3 * 0.6 + 0.5 * 0.7)

    def test_goal_trace(self, records):
        trace = records.goal_trace()
        assert set(trace) == {"throughput", "fairness"}
        assert len(trace["throughput"]) == 6


class TestRescore:
    """In-place score reconstruction from raw telemetry — the mechanism
    baseline tilts (BoPF's guarantee phase) ride on."""

    def add_with_telemetry(self, space, recs, scores, ips=(1e9, 2e9, 3e9)):
        config = space.equal_partition()
        recs.add(config, space.encode(config), scores,
                 ips=ips, isolation_ips=(2e9, 2e9, 4e9))

    def test_rescore_counts_only_changed_samples(self, space):
        recs = GoalRecords()
        self.add_with_telemetry(space, recs, (0.5, 0.5))
        self.add_with_telemetry(space, recs, (0.3, 0.3))
        # Rescore everything to (0.5, 0.5): the first sample already
        # has those scores, so only the second counts as changed.
        assert recs.rescore(lambda s: (0.5, 0.5)) == 1
        assert all(s.scores == (0.5, 0.5) for s in recs.samples)

    def test_none_leaves_sample_untouched(self, space):
        recs = GoalRecords()
        self.add_with_telemetry(space, recs, (0.4, 0.6))
        scorer = lambda s: None if s.ips is not None else (0.0, 0.0)
        assert recs.rescore(scorer) == 0
        assert recs.samples[0].scores == (0.4, 0.6)

    def test_raw_telemetry_reaches_the_scorer(self, space):
        recs = GoalRecords()
        self.add_with_telemetry(space, recs, (0.4, 0.6))
        seen = []
        recs.rescore(lambda s: seen.append((s.ips, s.isolation_ips)) or None)
        assert seen == [((1e9, 2e9, 3e9), (2e9, 2e9, 4e9))]

    def test_wrong_arity_rejected(self, space):
        recs = GoalRecords()
        self.add_with_telemetry(space, recs, (0.4, 0.6))
        with pytest.raises(ModelError, match="goal scores"):
            recs.rescore(lambda s: (0.5,))


class TestSnapshotTelemetry:
    """Raw ips/isolation_ips survive the snapshot round trip — and old
    snapshots that predate those keys still restore cleanly."""

    def test_round_trip_keeps_raw_telemetry(self, space):
        recs = GoalRecords()
        config = space.equal_partition()
        recs.add(config, space.encode(config), (0.4, 0.6),
                 ips=(1e9,) * 3, isolation_ips=(2e9,) * 3)
        restored = GoalRecords().restore(recs.snapshot())
        assert restored.samples[0].ips == (1e9,) * 3
        assert restored.samples[0].isolation_ips == (2e9,) * 3

    def test_samples_without_telemetry_snapshot_without_keys(self, space):
        # Keeping the keys absent (not null) preserves the historical
        # snapshot schema for records that never saw raw telemetry.
        recs = GoalRecords()
        config = space.equal_partition()
        recs.add(config, space.encode(config), (0.4, 0.6))
        sample = recs.snapshot().samples[0]
        assert "ips" not in sample and "isolation_ips" not in sample

    def test_old_snapshot_without_keys_restores(self, space):
        recs = GoalRecords()
        config = space.equal_partition()
        recs.add(config, space.encode(config), (0.4, 0.6))
        state = recs.snapshot()
        restored = GoalRecords().restore(state)
        assert restored.samples[0].ips is None
        assert restored.samples[0].isolation_ips is None
        # And such samples are simply skipped by telemetry rescorers.
        assert restored.rescore(
            lambda s: None if s.ips is None else (0.0, 0.0)
        ) == 0
