"""Tests for the terminal plot renderers."""

import numpy as np
import pytest

from repro.analysis.plots import (
    bar_chart,
    cluster_node_dashboard,
    line_chart,
    sparkline,
)
from repro.errors import ExperimentError
from repro.obs import MetricRegistry


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline(range(8))
        assert list(line) == sorted(line, key="▁▂▃▄▅▆▇█".index)

    def test_constant_series(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_nan_rendered_as_space(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "

    def test_custom_bounds(self):
        clipped = sparkline([5.0], lo=0.0, hi=10.0)
        assert clipped == "▄" or clipped == "▅"

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            sparkline([])


class TestBarChart:
    def test_rows_and_scaling(self):
        chart = bar_chart(["a", "bb"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        chart = bar_chart(["x", "long"], [1.0, 1.0])
        lines = chart.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_mismatched_lengths(self):
        with pytest.raises(ExperimentError):
            bar_chart(["a"], [1.0, 2.0])

    def test_unit_suffix(self):
        assert "%" in bar_chart(["a"], [42.0], unit="%")

    def test_max_value_caps_bars(self):
        chart = bar_chart(["a"], [200.0], width=10, max_value=100.0)
        assert chart.count("█") == 10


class TestClusterNodeDashboard:
    @staticmethod
    def registry():
        registry = MetricRegistry()
        for node, values in ((0, (0.5, 0.7, 0.9)), (1, (0.9, 0.7, 0.5))):
            for metric, series in (("throughput", values), ("fairness", values)):
                s = registry.series(f"cluster.round_robin.SATORI.node{node}.{metric}")
                for v in series:
                    s.append(v)
        return registry

    def test_one_block_per_cell_one_row_per_node(self):
        out = cluster_node_dashboard(self.registry())
        assert "[round_robin / SATORI]" in out and "(3 epochs)" in out
        lines = out.splitlines()
        assert sum(1 for line in lines if line.strip().startswith(("0 ", "1 "))) == 2

    def test_sparklines_share_scale_within_cell(self):
        out = cluster_node_dashboard(self.registry())
        # Opposite trends on a shared scale: node 0 rises, node 1 falls.
        node0 = next(l for l in out.splitlines() if l.strip().startswith("0"))
        node1 = next(l for l in out.splitlines() if l.strip().startswith("1"))
        assert "▁" in node0 and "█" in node0
        assert "▁" in node1 and "█" in node1

    def test_plain_mapping_accepted(self):
        out = cluster_node_dashboard(
            {"cluster.rr.SATORI.node0.throughput": [1.0, 2.0]}.items()
        )
        assert "[rr / SATORI]" in out

    def test_non_cluster_series_ignored(self):
        registry = self.registry()
        registry.series("session.some_series").append(1.0)
        registry.counter("engine.cache_hits").inc()
        out = cluster_node_dashboard(registry)
        assert "session" not in out

    def test_no_cluster_series_rejected(self):
        with pytest.raises(ExperimentError, match="no cluster"):
            cluster_node_dashboard(MetricRegistry())

    def test_missing_metric_column_rendered_as_dash(self):
        registry = MetricRegistry()
        registry.series("cluster.rr.SATORI.node0.throughput").append(1.0)
        registry.series("cluster.rr.SATORI.node1.throughput").append(1.0)
        registry.series("cluster.rr.SATORI.node1.fairness").append(1.0)
        out = cluster_node_dashboard(registry)
        node0 = next(l for l in out.splitlines() if l.strip().startswith("0"))
        assert "-" in node0


class TestLineChart:
    def test_dimensions(self):
        chart = line_chart({"s": np.sin(np.linspace(0, 6, 50))}, height=8, width=40)
        lines = chart.splitlines()
        assert len(lines) == 9  # height rows + legend
        assert "s" in lines[-1]

    def test_multi_series_legend(self):
        chart = line_chart({"a": [1, 2], "b": [2, 1]})
        assert "* a" in chart and "+ b" in chart

    def test_axis_labels_show_range(self):
        chart = line_chart({"a": [0.0, 10.0]})
        assert "10.000" in chart and "0.000" in chart

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            line_chart({})
        with pytest.raises(ExperimentError):
            line_chart({"a": []})
