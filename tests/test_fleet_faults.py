"""Tests for the fleet-weather substrate (node-scoped fault plans and
their deterministic schedules).

Covers the plan/schedule contract the chaos sweep depends on:
serialization round-trips (hypothesis-driven over the full parameter
space), bit-identical realization from identical ``(plan, n_epochs,
seed)`` inputs, stream independence (a busy blackout stream never
shifts the straggler stream), and the horizon discipline — plans whose
deterministic windows outlive the trace raise rather than silently
truncate.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.faults import (
    NODE_DOWN,
    NODE_FLAKY,
    NODE_STRAGGLER,
    NodeFaultEvent,
    NodeFaultPlan,
    NodeFaultSchedule,
)

#: A plan exercising every fleet fault family.
BUSY_PLAN = NodeFaultPlan(
    crash_epoch=3,
    crash_rejoin_epochs=2,
    blackout_rate=0.3,
    blackout_epochs=2,
    straggler_rate=0.3,
    straggler_epochs=1,
    straggler_slowdown=2.5,
    flaky_rate=0.3,
    flaky_epochs=1,
    flaky_intensity=0.6,
)


def node_fault_plans_strategy():
    """Valid NodeFaultPlan instances across the whole parameter space."""
    crash = st.one_of(st.none(), st.integers(min_value=0, max_value=50))
    return crash.flatmap(
        lambda crash_epoch: st.builds(
            NodeFaultPlan,
            crash_epoch=st.just(crash_epoch),
            crash_rejoin_epochs=(
                st.none()
                if crash_epoch is None
                else st.one_of(st.none(), st.integers(min_value=1, max_value=10))
            ),
            blackout_rate=st.floats(min_value=0.0, max_value=0.99),
            blackout_epochs=st.integers(min_value=1, max_value=8),
            straggler_rate=st.floats(min_value=0.0, max_value=0.99),
            straggler_epochs=st.integers(min_value=1, max_value=8),
            straggler_slowdown=st.floats(min_value=1.01, max_value=16.0),
            flaky_rate=st.floats(min_value=0.0, max_value=0.99),
            flaky_epochs=st.integers(min_value=1, max_value=8),
            flaky_intensity=st.floats(min_value=0.01, max_value=1.0),
            start_epoch=st.integers(min_value=0, max_value=20),
            end_epoch=st.none(),
        )
    )


class TestNodeFaultPlan:
    def test_round_trip(self):
        rebuilt = NodeFaultPlan.from_dict(BUSY_PLAN.to_dict())
        assert rebuilt == BUSY_PLAN

    def test_round_trip_through_json(self):
        data = json.loads(json.dumps(BUSY_PLAN.to_dict()))
        assert NodeFaultPlan.from_dict(data) == BUSY_PLAN

    def test_hashable_frozen(self):
        assert hash(BUSY_PLAN) == hash(NodeFaultPlan.from_dict(BUSY_PLAN.to_dict()))
        with pytest.raises(dataclasses.FrozenInstanceError):
            BUSY_PLAN.blackout_rate = 0.5

    @settings(max_examples=50, deadline=None)
    @given(plan=node_fault_plans_strategy())
    def test_round_trip_property(self, plan):
        data = json.loads(json.dumps(plan.to_dict()))
        assert NodeFaultPlan.from_dict(data) == plan

    def test_is_empty(self):
        assert NodeFaultPlan().is_empty
        assert not NodeFaultPlan(crash_epoch=1).is_empty
        assert not NodeFaultPlan(blackout_rate=0.1).is_empty

    @pytest.mark.parametrize("kwargs", [
        dict(crash_epoch=-1),
        dict(crash_rejoin_epochs=2),            # rejoin without a crash
        dict(crash_epoch=1, crash_rejoin_epochs=0),
        dict(blackout_rate=1.0),
        dict(straggler_rate=-0.1),
        dict(flaky_rate=1.5),
        dict(blackout_epochs=0),
        dict(straggler_slowdown=1.0),
        dict(flaky_intensity=0.0),
        dict(flaky_intensity=1.5),
        dict(start_epoch=-1),
        dict(start_epoch=3, end_epoch=3),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ExperimentError):
            NodeFaultPlan(**kwargs)


class TestHorizonDiscipline:
    """A plan whose deterministic windows outlive the trace raises —
    silent truncation would quietly turn a chaos run fair-weather."""

    def test_crash_past_horizon_raises(self):
        with pytest.raises(ExperimentError, match="outlives"):
            NodeFaultPlan(crash_epoch=5).validate_horizon(5)

    def test_rejoin_past_horizon_raises(self):
        plan = NodeFaultPlan(crash_epoch=3, crash_rejoin_epochs=4)
        with pytest.raises(ExperimentError, match="rejoin"):
            plan.validate_horizon(6)
        plan.validate_horizon(7)  # rejoin == n_epochs observed exactly

    def test_window_past_horizon_raises(self):
        with pytest.raises(ExperimentError, match="past the"):
            NodeFaultPlan(blackout_rate=0.5, start_epoch=8).validate_horizon(8)
        with pytest.raises(ExperimentError, match="outlives"):
            NodeFaultPlan(blackout_rate=0.5, end_epoch=9).validate_horizon(8)

    def test_empty_plan_window_is_not_checked(self):
        # An all-zero plan has no observable faults: a late start_epoch
        # is vacuous, not an error.
        NodeFaultPlan(start_epoch=100).validate_horizon(4)

    def test_generate_enforces_horizon(self):
        with pytest.raises(ExperimentError, match="outlives"):
            NodeFaultSchedule.generate(NodeFaultPlan(crash_epoch=9), n_epochs=6)

    def test_generate_rejects_empty_trace(self):
        with pytest.raises(ExperimentError, match="n_epochs"):
            NodeFaultSchedule.generate(NodeFaultPlan(), n_epochs=0)

    def test_stochastic_windows_clamp_at_horizon(self):
        # Stochastic windows are clamped, never rejected: the down
        # epochs inside the trace are realized, the tail is
        # unobservable by construction.
        plan = NodeFaultPlan(blackout_rate=0.9, blackout_epochs=50)
        schedule = NodeFaultSchedule.generate(plan, n_epochs=6, seed=1)
        assert any(e.kind == NODE_DOWN for e in schedule)
        assert all(e.end_epoch is not None and e.end_epoch <= 6 for e in schedule)


class TestNodeFaultEvent:
    def test_round_trip(self):
        event = NodeFaultEvent(NODE_STRAGGLER, 2, 5, magnitude=3.0)
        data = json.loads(json.dumps(event.to_dict()))
        assert NodeFaultEvent.from_dict(data) == event

    def test_open_ended_round_trip(self):
        event = NodeFaultEvent(NODE_DOWN, 4)          # crash, no rejoin
        assert NodeFaultEvent.from_dict(event.to_dict()) == event

    def test_active_is_half_open(self):
        event = NodeFaultEvent(NODE_DOWN, 2, 4)
        assert not event.active(1)
        assert event.active(2) and event.active(3)
        assert not event.active(4)

    def test_open_ended_lasts_forever(self):
        assert NodeFaultEvent(NODE_DOWN, 2).active(10**6)

    def test_validation(self):
        with pytest.raises(ExperimentError, match="unknown node fault kind"):
            NodeFaultEvent("meteor", 0)
        with pytest.raises(ExperimentError):
            NodeFaultEvent(NODE_DOWN, -1)
        with pytest.raises(ExperimentError, match="empty"):
            NodeFaultEvent(NODE_DOWN, 3, 3)


class TestNodeFaultSchedule:
    def test_round_trip(self):
        schedule = NodeFaultSchedule.generate(BUSY_PLAN, n_epochs=10, seed=3)
        data = json.loads(json.dumps(schedule.to_dict()))
        assert NodeFaultSchedule.from_dict(data) == schedule

    @settings(max_examples=30, deadline=None)
    @given(plan=node_fault_plans_strategy(), seed=st.integers(0, 2**31))
    def test_round_trip_property(self, plan, seed):
        n_epochs = 60  # past every strategy-generated deterministic window
        schedule = NodeFaultSchedule.generate(plan, n_epochs=n_epochs, seed=seed)
        data = json.loads(json.dumps(schedule.to_dict()))
        assert NodeFaultSchedule.from_dict(data) == schedule

    @settings(max_examples=30, deadline=None)
    @given(plan=node_fault_plans_strategy(), seed=st.integers(0, 2**31))
    def test_same_inputs_bit_identical(self, plan, seed):
        a = NodeFaultSchedule.generate(plan, n_epochs=60, seed=seed)
        b = NodeFaultSchedule.generate(plan, n_epochs=60, seed=seed)
        assert a == b

    def test_different_seeds_differ(self):
        plan = NodeFaultPlan(blackout_rate=0.5)
        a = NodeFaultSchedule.generate(plan, n_epochs=40, seed=1)
        b = NodeFaultSchedule.generate(plan, n_epochs=40, seed=2)
        assert a != b

    def test_crash_fires_at_exact_epoch(self):
        plan = NodeFaultPlan(crash_epoch=4, crash_rejoin_epochs=3)
        schedule = NodeFaultSchedule.generate(plan, n_epochs=10, seed=0)
        assert not schedule.down_at(3)
        assert schedule.down_at(4) and schedule.down_at(6)
        assert not schedule.down_at(7)
        assert schedule.down_end(4) == 7

    def test_crash_without_rejoin_is_permanent(self):
        schedule = NodeFaultSchedule.generate(
            NodeFaultPlan(crash_epoch=2), n_epochs=8, seed=0
        )
        assert schedule.down_at(7)
        assert schedule.down_end(2) is None

    def test_stream_independence(self):
        # Straggler windows must be a function of the straggler stream
        # only: turning the blackout family on must not move them.
        quiet = NodeFaultPlan(straggler_rate=0.4, straggler_slowdown=3.0)
        noisy = dataclasses.replace(quiet, blackout_rate=0.8, blackout_epochs=2)
        pick = lambda sched: [e for e in sched if e.kind == NODE_STRAGGLER]
        assert pick(
            NodeFaultSchedule.generate(quiet, n_epochs=40, seed=11)
        ) == pick(NodeFaultSchedule.generate(noisy, n_epochs=40, seed=11))

    def test_window_confines_stochastic_faults(self):
        plan = NodeFaultPlan(flaky_rate=0.9, start_epoch=5, end_epoch=10)
        schedule = NodeFaultSchedule.generate(plan, n_epochs=20, seed=2)
        assert len(schedule) > 0
        assert all(5 <= e.start_epoch < 10 for e in schedule)

    def test_lookups_report_magnitudes(self):
        schedule = NodeFaultSchedule(
            events=(
                NodeFaultEvent(NODE_STRAGGLER, 1, 3, magnitude=2.0),
                NodeFaultEvent(NODE_STRAGGLER, 2, 4, magnitude=4.0),
                NodeFaultEvent(NODE_FLAKY, 1, 2, magnitude=0.7),
            ),
            n_epochs=5,
        )
        assert schedule.slowdown_at(0) == 1.0
        assert schedule.slowdown_at(1) == 2.0
        assert schedule.slowdown_at(2) == 4.0     # overlapping -> max
        assert schedule.slowdown_at(3) == 4.0
        assert schedule.flaky_at(1) == 0.7
        assert schedule.flaky_at(2) == 0.0

    def test_empty_plan_empty_schedule(self):
        schedule = NodeFaultSchedule.generate(NodeFaultPlan(), n_epochs=12, seed=9)
        assert len(schedule) == 0
        assert not schedule.down_at(0)
        assert schedule.slowdown_at(0) == 1.0
        assert schedule.flaky_at(0) == 0.0
