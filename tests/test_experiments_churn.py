"""Tests for the workload-churn adaptation experiment."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.churn import workload_churn
from repro.workloads.registry import get_workload


class TestReplaceWorkload:
    def test_swap_changes_mix(self, make_simulator):
        sim = make_simulator()
        sim.step(sim.equal_partition())
        before = sim.mix.names
        sim.replace_workload(1, get_workload("vips"))
        assert sim.mix.names != before
        assert sim.mix.names[1] == "vips"
        assert sim.n_jobs == 3

    def test_newcomer_starts_at_phase_zero(self, make_simulator):
        sim = make_simulator()
        for _ in range(23):
            sim.step(sim.equal_partition())
        newcomer = get_workload("vips")
        sim.replace_workload(0, newcomer)
        active = sim.mix[0].phase_at(sim.time_s)
        assert active.ips_per_core == pytest.approx(newcomer.phase_at(0.0).ips_per_core)

    def test_progress_reset(self, make_simulator):
        sim = make_simulator()
        for _ in range(5):
            sim.step(sim.equal_partition())
        sim.replace_workload(0, get_workload("vips"))
        obs = sim.step()
        assert obs.completed_runs[0] == 0

    def test_bad_index_rejected(self, make_simulator):
        sim = make_simulator()
        with pytest.raises(ExperimentError):
            sim.replace_workload(5, get_workload("vips"))


class TestChurnExperiment:
    @pytest.fixture(scope="class")
    def churn_result(self, request):
        catalog = request.getfixturevalue("catalog6")
        mix = request.getfixturevalue("parsec_mix3")
        return workload_churn(
            mix,
            get_workload("vips"),
            swap_index=1,
            catalog=catalog,
            duration_s=14.0,
            seed=1,
            window_s=3.0,
        )

    def test_windows_measured(self, churn_result):
        assert 0 < churn_result.before_ratio <= 1.3
        assert 0 < churn_result.disturbance_ratio <= 1.3
        assert 0 < churn_result.recovered_ratio <= 1.3

    def test_satori_recovers(self, churn_result):
        """Sec. III-C: mix changes need no re-initialization."""
        assert churn_result.recovers

    def test_newcomer_recorded(self, churn_result):
        assert churn_result.newcomer == "vips"

    def test_duplicate_newcomer_rejected(self, catalog6, parsec_mix3):
        with pytest.raises(ExperimentError):
            workload_churn(
                parsec_mix3, get_workload("canneal"), catalog=catalog6, duration_s=6.0
            )

    def test_swap_time_validated(self, catalog6, parsec_mix3):
        with pytest.raises(ExperimentError):
            workload_churn(
                parsec_mix3,
                get_workload("vips"),
                catalog=catalog6,
                duration_s=6.0,
                swap_time_s=10.0,
            )
