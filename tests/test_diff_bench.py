"""Tests for the bench-regression differ (``benchmarks/diff_bench.py``).

The differ is a standalone stdlib script (not part of the ``repro``
package), so it is loaded here by file path.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SPEC = importlib.util.spec_from_file_location(
    "diff_bench", os.path.join(_ROOT, "benchmarks", "diff_bench.py")
)
diff_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(diff_bench)


def _write(directory, name, payload):
    directory.mkdir(exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


class TestExtract:
    def test_plain_path(self):
        assert list(diff_bench.extract({"a": {"b": 2.5}}, "a.b")) == [("a.b", 2.5)]

    def test_wildcard_fans_out_sorted(self):
        data = {"schemes": {"trade": {"eps": 2.0}, "static": {"eps": 1.0}}}
        assert list(diff_bench.extract(data, "schemes.*.eps")) == [
            ("schemes.static.eps", 1.0),
            ("schemes.trade.eps", 2.0),
        ]

    def test_missing_and_non_numeric_yield_nothing(self):
        assert list(diff_bench.extract({"a": 1.0}, "b")) == []
        assert list(diff_bench.extract({"a": "text"}, "a")) == []
        assert list(diff_bench.extract({"a": True}, "a")) == []


class TestRegression:
    def test_direction_aware(self):
        # Throughput halved: 50% worse.
        assert diff_bench.regression(10.0, 5.0, "higher") == pytest.approx(0.5)
        # Latency halved: 50% better.
        assert diff_bench.regression(10.0, 5.0, "lower") == pytest.approx(-0.5)
        assert diff_bench.regression(0.0, 5.0, "higher") == 0.0


class TestContextChanges:
    def test_equal_context_reports_nothing(self):
        payload = {"n_nodes": 3, "n_epochs": 4, "epoch_seconds": 6.0,
                   "batched": {"workers": 3}}
        assert diff_bench.context_changes(
            "BENCH_cluster.json", payload, dict(payload)) == []

    def test_changed_and_missing_context_keys_reported(self):
        previous = {"n_nodes": 3, "n_epochs": 4}
        current = {"n_nodes": 4}
        changes = diff_bench.context_changes(
            "BENCH_cluster.json", previous, current)
        assert "n_nodes 3 -> 4" in changes
        assert "n_epochs 4 -> None" in changes

    def test_context_absent_on_both_sides_is_comparable(self):
        # Old artifacts predating the context keys still diff cleanly
        # against each other.
        assert diff_bench.context_changes(
            "BENCH_chaos.json", {"epochs_per_s": 1.0}, {"epochs_per_s": 2.0}
        ) == []


class TestMain:
    def test_warns_on_regression_but_exits_zero(self, tmp_path, capsys):
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        _write(prev, "BENCH_serve.json",
               {"sessions_per_sec": 100.0, "decision_latency_p99_ms": 1.0})
        _write(cur, "BENCH_serve.json",
               {"sessions_per_sec": 50.0, "decision_latency_p99_ms": 0.9})
        code = diff_bench.main([str(prev), str(cur)])
        out = capsys.readouterr().out
        assert code == 0
        assert "WARN" in out and "sessions_per_sec" in out
        assert "1 regression(s)" in out

    def test_strict_exits_nonzero(self, tmp_path, capsys):
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        _write(prev, "BENCH_chaos.json", {"epochs_per_s": 10.0})
        _write(cur, "BENCH_chaos.json", {"epochs_per_s": 1.0})
        assert diff_bench.main([str(prev), str(cur), "--strict"]) == 1

    def test_within_threshold_is_quiet(self, tmp_path, capsys):
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        payload = {"sessions_per_sec": 100.0, "steps_per_sec": 1000.0,
                   "decision_latency_p50_ms": 0.5, "decision_latency_p99_ms": 2.0}
        _write(prev, "BENCH_serve.json", payload)
        _write(cur, "BENCH_serve.json", {**payload, "sessions_per_sec": 90.0})
        code = diff_bench.main([str(prev), str(cur), "--strict"])
        out = capsys.readouterr().out
        assert code == 0
        assert "WARN" not in out
        assert "0 regression(s)" in out

    def test_missing_artifacts_skip(self, tmp_path, capsys):
        (tmp_path / "prev").mkdir()
        (tmp_path / "cur").mkdir()
        code = diff_bench.main([str(tmp_path / "prev"), str(tmp_path / "cur")])
        out = capsys.readouterr().out
        assert code == 0
        assert "compared 0 artifact(s)" in out

    def test_reports_improvements_with_notice(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.setenv("GITHUB_ACTIONS", "true")
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        _write(prev, "BENCH_chaos.json", {"epochs_per_s": 1.0})
        _write(cur, "BENCH_chaos.json", {"epochs_per_s": 2.0})
        code = diff_bench.main([str(prev), str(cur), "--strict"])
        out = capsys.readouterr().out
        assert code == 0
        assert "good" in out
        assert "::notice title=bench improvement::" in out
        assert "1 improvement(s)" in out

    def test_scale_change_skips_comparison_without_warning(
            self, tmp_path, capsys):
        # The epoch length changed between runs: epochs/sec is not
        # comparable, so a 10x "regression" must not warn.
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        _write(prev, "BENCH_chaos.json",
               {"epochs_per_s": 10.0, "epoch_seconds": 2.0})
        _write(cur, "BENCH_chaos.json",
               {"epochs_per_s": 1.0, "epoch_seconds": 6.0})
        code = diff_bench.main([str(prev), str(cur), "--strict"])
        out = capsys.readouterr().out
        assert code == 0
        assert "WARN" not in out
        assert "note" in out and "scale changed" in out
        assert "epoch_seconds 2.0 -> 6.0" in out

    def test_one_sided_metrics_are_noted_not_silent(self, tmp_path, capsys):
        # The previous artifact predates the batched section; the
        # current one gained it. Neither direction should warn, but the
        # schema drift must be visible.
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        scheme = {"epochs_per_s": 1.0, "decide_ms": {"mean": 2.0, "max": 4.0}}
        _write(prev, "BENCH_cluster.json", {
            "schemes": {"bo": scheme, "legacy": scheme},
        })
        _write(cur, "BENCH_cluster.json", {
            "schemes": {"bo": scheme},
            "batched": {"speedup": 1.9, "batched_epochs_per_s": 0.9},
        })
        code = diff_bench.main([str(prev), str(cur), "--strict"])
        out = capsys.readouterr().out
        assert code == 0
        assert "WARN" not in out
        assert "batched.speedup is new" in out
        assert "schemes.legacy.epochs_per_s dropped" in out

    def test_qos_attainment_loss_warns_gain_notices(self, tmp_path, capsys):
        # SLO attainment is one-sided higher-is-better: a drop warns,
        # a gain on another shape is an improvement, never a warning.
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        shapes = lambda flash, diurnal: {"shapes": {
            "flash_crowd": {"BoPF": {"attainment": flash}},
            "diurnal": {"BoPF": {"attainment": diurnal}},
        }}
        _write(prev, "BENCH_qos.json", shapes(0.75, 0.5))
        _write(cur, "BENCH_qos.json", shapes(0.45, 0.9))
        code = diff_bench.main([str(prev), str(cur)])
        out = capsys.readouterr().out
        assert code == 0
        assert "WARN" in out and "flash_crowd.BoPF.attainment" in out
        assert "good" in out and "diurnal.BoPF.attainment" in out

    def test_qos_first_run_skips_gracefully(self, tmp_path, capsys):
        # First CI run ever writing BENCH_qos.json: no previous-side
        # artifact exists, and the diff must skip it without noise.
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        prev.mkdir()
        _write(cur, "BENCH_qos.json",
               {"shapes": {"flash_crowd": {"BoPF": {"attainment": 0.75}}}})
        code = diff_bench.main([str(prev), str(cur), "--strict"])
        out = capsys.readouterr().out
        assert code == 0
        assert "skip  BENCH_qos.json: no previous artifact" in out
        assert "WARN" not in out

    def test_qos_slo_floor_change_skips_comparison(self, tmp_path, capsys):
        # A different SLO floor redefines attainment; raw comparisons
        # across floors would warn for no reason.
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        _write(prev, "BENCH_qos.json", {
            "slo": {"min_speedup": 0.7},
            "shapes": {"flash_crowd": {"BoPF": {"attainment": 0.2}}},
        })
        _write(cur, "BENCH_qos.json", {
            "slo": {"min_speedup": 0.55},
            "shapes": {"flash_crowd": {"BoPF": {"attainment": 0.8}}},
        })
        code = diff_bench.main([str(prev), str(cur), "--strict"])
        out = capsys.readouterr().out
        assert code == 0
        assert "WARN" not in out
        assert "scale changed" in out and "slo.min_speedup 0.7 -> 0.55" in out

    def test_summary_file_written(self, tmp_path, capsys):
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        _write(prev, "BENCH_chaos.json", {"epochs_per_s": 10.0})
        _write(cur, "BENCH_chaos.json", {"epochs_per_s": 1.0})
        summary = tmp_path / "summary.md"
        diff_bench.main([str(prev), str(cur), "--summary", str(summary)])
        text = summary.read_text()
        assert "## Bench diff" in text
        assert "### Regressions" in text
        assert "epochs_per_s" in text
