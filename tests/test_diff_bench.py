"""Tests for the bench-regression differ (``benchmarks/diff_bench.py``).

The differ is a standalone stdlib script (not part of the ``repro``
package), so it is loaded here by file path.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SPEC = importlib.util.spec_from_file_location(
    "diff_bench", os.path.join(_ROOT, "benchmarks", "diff_bench.py")
)
diff_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(diff_bench)


def _write(directory, name, payload):
    directory.mkdir(exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


class TestExtract:
    def test_plain_path(self):
        assert list(diff_bench.extract({"a": {"b": 2.5}}, "a.b")) == [("a.b", 2.5)]

    def test_wildcard_fans_out_sorted(self):
        data = {"schemes": {"trade": {"eps": 2.0}, "static": {"eps": 1.0}}}
        assert list(diff_bench.extract(data, "schemes.*.eps")) == [
            ("schemes.static.eps", 1.0),
            ("schemes.trade.eps", 2.0),
        ]

    def test_missing_and_non_numeric_yield_nothing(self):
        assert list(diff_bench.extract({"a": 1.0}, "b")) == []
        assert list(diff_bench.extract({"a": "text"}, "a")) == []
        assert list(diff_bench.extract({"a": True}, "a")) == []


class TestRegression:
    def test_direction_aware(self):
        # Throughput halved: 50% worse.
        assert diff_bench.regression(10.0, 5.0, "higher") == pytest.approx(0.5)
        # Latency halved: 50% better.
        assert diff_bench.regression(10.0, 5.0, "lower") == pytest.approx(-0.5)
        assert diff_bench.regression(0.0, 5.0, "higher") == 0.0


class TestMain:
    def test_warns_on_regression_but_exits_zero(self, tmp_path, capsys):
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        _write(prev, "BENCH_serve.json",
               {"sessions_per_sec": 100.0, "decision_latency_p99_ms": 1.0})
        _write(cur, "BENCH_serve.json",
               {"sessions_per_sec": 50.0, "decision_latency_p99_ms": 0.9})
        code = diff_bench.main([str(prev), str(cur)])
        out = capsys.readouterr().out
        assert code == 0
        assert "WARN" in out and "sessions_per_sec" in out
        assert "1 regression(s)" in out

    def test_strict_exits_nonzero(self, tmp_path, capsys):
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        _write(prev, "BENCH_chaos.json", {"epochs_per_s": 10.0})
        _write(cur, "BENCH_chaos.json", {"epochs_per_s": 1.0})
        assert diff_bench.main([str(prev), str(cur), "--strict"]) == 1

    def test_within_threshold_is_quiet(self, tmp_path, capsys):
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        payload = {"sessions_per_sec": 100.0, "steps_per_sec": 1000.0,
                   "decision_latency_p50_ms": 0.5, "decision_latency_p99_ms": 2.0}
        _write(prev, "BENCH_serve.json", payload)
        _write(cur, "BENCH_serve.json", {**payload, "sessions_per_sec": 90.0})
        code = diff_bench.main([str(prev), str(cur), "--strict"])
        out = capsys.readouterr().out
        assert code == 0
        assert "WARN" not in out
        assert "0 regression(s)" in out

    def test_missing_artifacts_skip(self, tmp_path, capsys):
        (tmp_path / "prev").mkdir()
        (tmp_path / "cur").mkdir()
        code = diff_bench.main([str(tmp_path / "prev"), str(tmp_path / "cur")])
        out = capsys.readouterr().out
        assert code == 0
        assert "compared 0 artifact(s)" in out
