"""Smoke checks for the example scripts.

Full example runs take tens of seconds each, so the test suite
verifies they compile, carry usage docstrings, and expose a ``main``
entry point; the examples themselves are exercised manually / by CI
at release time.
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExamples:
    def test_parses(self, path):
        ast.parse(path.read_text())

    def test_has_docstring_with_run_instructions(self, path):
        module = ast.parse(path.read_text())
        docstring = ast.get_docstring(module)
        assert docstring, f"{path.name} needs a module docstring"
        assert "Run:" in docstring, f"{path.name} docstring must show how to run it"

    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source
        assert "def main(" in source

    def test_imports_only_public_api(self, path):
        """Examples must not reach into private modules."""
        module = ast.parse(path.read_text())
        for node in ast.walk(module):
            if isinstance(node, ast.ImportFrom) and node.module:
                assert not any(part.startswith("_") for part in node.module.split(".")), (
                    f"{path.name} imports private module {node.module}"
                )


def test_expected_example_set():
    names = {p.name for p in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 4, "the deliverable requires at least three domain examples + quickstart"
