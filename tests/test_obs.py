"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.errors import ObsError
from repro.obs import (
    INSTANT,
    NULL_COLLECTOR,
    SPAN,
    ManualClock,
    MetricRegistry,
    NullCollector,
    NullRegistry,
    TraceCollector,
    TraceEvent,
    active_collector,
    use_collector,
)
from repro.obs.export import (
    chrome_trace,
    events_to_jsonl,
    prometheus_text,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_S


def manual_collector(step_ns: int = 1000) -> TraceCollector:
    return TraceCollector(clock=ManualClock(step_ns=step_ns))


class TestManualClock:
    def test_each_read_advances_by_step(self):
        clock = ManualClock(start_ns=10, step_ns=5)
        assert [clock(), clock(), clock()] == [10, 15, 20]

    def test_advance_shifts_time(self):
        clock = ManualClock()
        clock()
        clock.advance(10_000)
        assert clock() == 11_000


class TestSpans:
    def test_span_duration_is_deterministic_with_manual_clock(self):
        collector = manual_collector(step_ns=1000)
        with collector.span("work", "test"):
            pass
        (event,) = collector.events
        assert event.kind == SPAN
        assert event.name == "work"
        assert event.category == "test"
        assert event.duration_ns == 1000

    def test_nested_spans_complete_inner_first(self):
        collector = manual_collector()
        with collector.span("outer"):
            with collector.span("inner"):
                pass
        assert [e.name for e in collector.events] == ["inner", "outer"]
        inner, outer = collector.events
        assert outer.start_ns < inner.start_ns
        assert outer.duration_ns > inner.duration_ns

    def test_exception_propagates_and_span_still_recorded(self):
        collector = manual_collector()
        with pytest.raises(ValueError):
            with collector.span("failing"):
                raise ValueError("boom")
        assert [e.name for e in collector.events] == ["failing"]

    def test_span_args_recorded_sorted(self):
        collector = manual_collector()
        with collector.span("s", "c", zeta=1, alpha=2):
            pass
        (event,) = collector.events
        assert event.args == (("alpha", 2), ("zeta", 1))

    def test_helpers(self):
        collector = manual_collector(step_ns=1000)
        with collector.span("a"):
            pass
        with collector.span("a"):
            pass
        collector.event("marker")
        assert len(collector.spans_named("a")) == 2
        assert collector.total_seconds("a") == pytest.approx(2e-6)
        collector.clear()
        assert collector.events == ()


class TestInstantEvents:
    def test_event_is_zero_duration_instant(self):
        collector = manual_collector()
        collector.event("migration", "cluster", job_id=3)
        (event,) = collector.events
        assert event.kind == INSTANT
        assert event.duration_ns == 0
        assert dict(event.args) == {"job_id": 3}


class TestTraceEventSerialization:
    def test_round_trip(self):
        event = TraceEvent("n", "c", 5, 7, SPAN, (("k", 1.5),))
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_argless_round_trip_omits_args(self):
        event = TraceEvent("n", "c", 5, 7)
        assert "args" not in event.to_dict()
        assert TraceEvent.from_dict(event.to_dict()) == event


class TestMetricRegistry:
    def test_counter_accumulates(self):
        registry = MetricRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2.0)
        assert registry.counter("hits").value == 3.0
        assert registry.counters() == {"hits": 3.0}

    def test_counter_rejects_decrease(self):
        with pytest.raises(ObsError, match="cannot decrease"):
            MetricRegistry().counter("c").inc(-1.0)

    def test_gauge_holds_last_value(self):
        gauge = MetricRegistry().gauge("util")
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.value == 0.75

    def test_histogram_buckets_and_mean(self):
        histogram = MetricRegistry().histogram("lat", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            histogram.observe(value)
        assert histogram.bucket_counts == (1, 1, 1)  # +inf bucket last
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(7.0 / 3.0)

    def test_histogram_bad_buckets_rejected(self):
        registry = MetricRegistry()
        with pytest.raises(ObsError, match="ascending"):
            registry.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ObsError, match="ascending"):
            registry.histogram("h2", buckets=())

    def test_default_buckets_strictly_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS_S) == sorted(set(DEFAULT_LATENCY_BUCKETS_S))

    def test_series_keeps_order(self):
        series = MetricRegistry().series("s")
        for value in (3.0, 1.0, 2.0):
            series.append(value)
        assert series.values == (3.0, 1.0, 2.0)
        assert series.last == 2.0

    def test_name_kind_conflict_rejected(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(ObsError, match="is a Counter"):
            registry.gauge("x")

    def test_get_and_names(self):
        registry = MetricRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ("a", "b")
        assert registry.get("missing") is None
        assert len(registry) == 2


class TestNullPath:
    def test_default_active_collector_is_null(self):
        assert active_collector() is NULL_COLLECTOR
        assert not NULL_COLLECTOR.enabled

    def test_null_collector_records_nothing(self):
        collector = NullCollector()
        with collector.span("s", "c", arg=1):
            pass
        collector.event("e")
        collector.metrics.counter("c").inc()
        collector.metrics.histogram("h").observe(1.0)
        collector.metrics.series("s").append(1.0)
        collector.metrics.gauge("g").set(1.0)
        assert collector.events == ()
        assert len(collector.metrics) == 0

    def test_null_registry_hands_out_shared_singletons(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.series("a") is registry.series("b")

    def test_use_collector_installs_and_restores(self):
        collector = TraceCollector()
        with use_collector(collector):
            assert active_collector() is collector
            inner = TraceCollector()
            with use_collector(inner):
                assert active_collector() is inner
            assert active_collector() is collector
        assert active_collector() is NULL_COLLECTOR

    def test_use_collector_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_collector(TraceCollector()):
                raise RuntimeError("boom")
        assert active_collector() is NULL_COLLECTOR


class TestJsonlExport:
    def test_round_trip(self, tmp_path):
        collector = manual_collector()
        with collector.span("s", "c", k=1):
            pass
        collector.event("i", "c")
        path = write_jsonl(collector.events, tmp_path / "trace.jsonl")
        assert read_jsonl(path) == list(collector.events)

    def test_one_event_per_line(self):
        events = [TraceEvent("a", "", 0, 1), TraceEvent("b", "", 1, 1)]
        text = events_to_jsonl(events)
        assert len(text.splitlines()) == 2

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "category": "", "start_ns": 0, '
                        '"duration_ns": 1, "kind": "span"}\nnot json\n')
        with pytest.raises(ObsError, match="bad.jsonl:2"):
            read_jsonl(path)


class TestChromeExport:
    def test_structure(self, tmp_path):
        collector = manual_collector(step_ns=1000)
        with collector.span("work", "bo", depth=1):
            pass
        collector.event("mark", "cluster")
        trace = chrome_trace(collector.events, process_name="test-proc")
        assert set(trace) == {"traceEvents", "displayTimeUnit"}

        meta, *rest = trace["traceEvents"]
        assert meta["ph"] == "M" and meta["args"]["name"] == "test-proc"
        by_name = {entry["name"]: entry for entry in rest}
        span = by_name["work"]
        assert span["ph"] == "X"
        assert span["dur"] == pytest.approx(1.0)  # 1000 ns -> 1 us
        assert span["cat"] == "bo"
        assert span["args"] == {"depth": 1}
        instant = by_name["mark"]
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert "dur" not in instant

        path = write_chrome_trace(collector.events, tmp_path / "t.json")
        assert json.loads(path.read_text())["displayTimeUnit"] == "ms"

    def test_events_sorted_by_start(self):
        events = [TraceEvent("late", "", 100, 1), TraceEvent("early", "", 5, 1)]
        names = [e["name"] for e in chrome_trace(events)["traceEvents"][1:]]
        assert names == ["early", "late"]


class TestPrometheusExport:
    def test_all_kinds_rendered(self, tmp_path):
        registry = MetricRegistry()
        registry.counter("engine.cache_hits").inc(3)
        registry.gauge("worker.util").set(0.5)
        histogram = registry.histogram("lat", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        registry.series("node0.fairness").append(0.9)

        text = prometheus_text(registry)
        assert "# TYPE engine_cache_hits counter\nengine_cache_hits 3" in text
        assert "worker_util 0.5" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 1' in text  # cumulative: nothing in (1, 2]
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 5.5" in text and "lat_count 2" in text
        assert "node0_fairness 0.9" in text

        path = write_prometheus(registry, tmp_path / "m.prom")
        assert path.read_text() == text

    def test_empty_registry_is_empty_text(self):
        assert prometheus_text(MetricRegistry()) == ""


class TestAdoption:
    """Grafting worker-process spans onto the parent timeline."""

    def foreign_events(self):
        # Spans from a "worker" clock whose epoch is unrelated to the
        # parent's: a 1000 ns outer span containing a later inner one.
        return [
            TraceEvent("outer", "engine", 500_000, 1000),
            TraceEvent("inner", "engine", 500_200, 100),
        ]

    def test_adopt_rebases_and_preserves_offsets(self):
        collector = manual_collector()
        collector.adopt(self.foreign_events(), at_ns=10_000)
        outer, inner = collector.events
        assert outer.start_ns == 10_000          # earliest lands at at_ns
        assert inner.start_ns == 10_200          # +200 offset preserved
        assert outer.duration_ns == 1000         # durations untouched
        assert inner.duration_ns == 100

    def test_adopt_tags_lane(self):
        collector = manual_collector()
        collector.adopt(self.foreign_events(), at_ns=0, lane="worker:3")
        assert all(dict(e.args)["lane"] == "worker:3" for e in collector.events)

    def test_adopt_without_lane_leaves_args_alone(self):
        collector = manual_collector()
        collector.adopt([TraceEvent("e", "", 5, 1, args=(("k", 1),))], at_ns=0)
        (event,) = collector.events
        assert event.args == (("k", 1),)

    def test_adopt_empty_batch_is_noop(self):
        collector = manual_collector()
        collector.adopt([], at_ns=0)
        assert collector.events == ()

    def test_null_collector_adopt_is_noop(self):
        NULL_COLLECTOR.adopt(self.foreign_events(), at_ns=0, lane="w")
        assert NULL_COLLECTOR.events == ()

    def test_now_ns_reads_the_collector_clock(self):
        collector = TraceCollector(clock=ManualClock(start_ns=42, step_ns=0))
        assert collector.now_ns() == 42


class TestChromeLanes:
    def test_lanes_map_to_threads(self):
        events = [
            TraceEvent("main_work", "engine", 0, 10),
            TraceEvent("w0", "engine", 5, 10, args=(("lane", "worker:0"),)),
            TraceEvent("w1", "engine", 6, 10, args=(("lane", "worker:1"),)),
            TraceEvent("w0b", "engine", 7, 10, args=(("lane", "worker:0"),)),
        ]
        trace = chrome_trace(events)
        by_name = {e["name"]: e for e in trace["traceEvents"] if e.get("ph") == "X"}
        assert by_name["main_work"]["tid"] == 1
        assert by_name["w0"]["tid"] == by_name["w0b"]["tid"] == 2
        assert by_name["w1"]["tid"] == 3
        # The lane arg is consumed by the tid mapping, not re-emitted.
        assert "args" not in by_name["w0"]
        names = {
            entry["tid"]: entry["args"]["name"]
            for entry in trace["traceEvents"]
            if entry["ph"] == "M" and entry["name"] == "thread_name"
        }
        assert names == {1: "main", 2: "worker:0", 3: "worker:1"}

    def test_no_lanes_no_thread_metadata(self):
        # Lane-free traces keep the historical single-thread shape —
        # no trailing thread_name entries.
        events = [TraceEvent("solo", "", 0, 1)]
        entries = chrome_trace(events)["traceEvents"]
        assert [e["name"] for e in entries] == ["process_name", "solo"]


class TestWorkerSpanPropagation:
    def test_pool_run_adopts_worker_spans(self):
        from repro.engine import ExecutionEngine, RunSpec
        from repro.experiments.runner import RunConfig, experiment_catalog
        from repro.workloads.mixes import mix_from_names

        specs = [
            RunSpec(
                mix=mix_from_names(names),
                policy="EqualPartition",
                catalog=experiment_catalog(4),
                run_config=RunConfig(duration_s=1.0, baseline_reset_s=0.5),
                seed=1,
            )
            for names in (["canneal", "streamcluster"], ["vips", "freqmine"])
        ]
        collector = TraceCollector()
        with use_collector(collector):
            ExecutionEngine(workers=2).run(specs)
        worker_spans = [
            e for e in collector.spans_named("run_spec")
            if dict(e.args).get("lane", "").startswith("worker:")
        ]
        lanes = {dict(e.args)["lane"] for e in worker_spans}
        assert lanes == {"worker:0", "worker:1"}
        # And the chrome export renders them on their own threads.
        tids = {
            entry["tid"]
            for entry in chrome_trace(collector.events)["traceEvents"]
            if entry.get("ph") == "X" and entry["name"] == "run_spec"
        }
        assert tids == {2, 3}
