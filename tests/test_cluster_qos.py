"""Cluster-level SLO tests: placement, enforcement, and the qos sweep.

Three seams of the SLO-aware-scheduling feature:

* ``SLOAwarePlacement`` and the ``NodeView.qos_jobs`` signal it keys
  off — including the regression that the views the simulator hands
  every placement call track the *actual* qos population through
  migrations and post-crash re-placement;
* the simulator's SLO enforcement path (``qos_slo``): attainment in
  ``ClusterResult.slo`` and per-record ``slo_attained``, outage
  scoring for crashed nodes, and the qos_fraction=0 bit-identity
  guarantee;
* the ``qos_sweep`` experiment's report shape at toy scale.
"""

import json

import pytest

from repro.cluster import ClusterSimulator, MigrationConfig, NodeView, RecoveryConfig
from repro.cluster.placement import SLOAwarePlacement, make_placement
from repro.errors import ExperimentError
from repro.experiments.qos import DEFAULT_QOS_SLO, qos_sweep, qos_trace
from repro.experiments.runner import RunConfig, experiment_catalog
from repro.faults import NodeFaultPlan
from repro.qos import SLOSpec
from repro.workloads.arrivals import ArrivalTrace, JobArrival, poisson_trace
from repro.workloads.registry import default_registry

#: Tiny methodology for fast simulator tests.
TINY = RunConfig(duration_s=1.0, baseline_reset_s=0.5)

#: A permissive SLO most healthy epochs meet — the tests below care
#: about the plumbing, not the attainment level itself.
EASY_SLO = SLOSpec(min_speedup=0.2, window=2, attain_target=0.5)


def qview(node_id, n_jobs, qos_jobs=0, capacity=4, mean_speedup=1.0):
    return NodeView(
        node_id, n_jobs, capacity, mean_speedup, 1.0, qos_jobs=qos_jobs
    )


def typed_jobs(*kinds):
    """Open-ended arrivals at epoch 0, one per kind label."""
    registry = default_registry()
    names = ("canneal", "streamcluster", "vips", "fluidanimate")
    return tuple(
        JobArrival(job_id, registry.get(names[job_id % len(names)]),
                   arrival_epoch=0, kind=kind)
        for job_id, kind in enumerate(kinds)
    )


def install_view_audit(simulator, trace):
    """Assert, at every ``_views`` call, that each view's ``qos_jobs``
    matches the node's actual qos population per the trace's kinds."""
    kind_by_id = {arrival.job_id: arrival.kind for arrival in trace.jobs}
    original = simulator._views
    calls = []

    def audited(exclude=None):
        views = original(exclude)
        for view, node in zip(views, simulator.nodes):
            actual = sum(
                1 for job_id in node.job_ids if kind_by_id[job_id] == "qos"
            )
            assert view.qos_jobs == actual, (
                f"view for node {node.node_id} reports {view.qos_jobs} qos "
                f"jobs; the node actually hosts {actual}"
            )
        calls.append(exclude)
        return views

    simulator._views = audited
    return calls


class TestSLOAwarePlacement:
    def test_spreads_qos_jobs_first(self):
        policy = SLOAwarePlacement()
        nodes = [qview(0, 1, qos_jobs=1), qview(1, 2, qos_jobs=0)]
        # Node 1 is busier but hosts no qos job: the spread criterion
        # dominates raw occupancy.
        assert policy.place(nodes) == 1

    def test_predicted_occupancy_breaks_qos_ties(self):
        policy = SLOAwarePlacement()
        nodes = [qview(0, 3, qos_jobs=1), qview(1, 1, qos_jobs=1)]
        assert policy.place(nodes) == 1

    def test_contention_breaks_occupancy_ties(self):
        policy = SLOAwarePlacement()
        nodes = [
            qview(0, 1, mean_speedup=0.6),
            qview(1, 1, mean_speedup=0.9),
        ]
        assert policy.place(nodes) == 1

    def test_elastic_capacity_changes_prediction(self):
        # Same job count, but node 0's budget shrank to capacity 2:
        # placing there would fill it (predicted 1.0 vs 0.5).
        policy = SLOAwarePlacement()
        nodes = [qview(0, 1, capacity=2), qview(1, 1, capacity=4)]
        assert policy.place(nodes) == 1

    def test_registry_constructs_it(self):
        assert isinstance(make_placement("slo_aware"), SLOAwarePlacement)


class TestViewsTrackQosPopulation:
    """Satellite regression: ``NodeView.qos_jobs`` must equal the actual
    qos population at every placement decision — after migrations and
    after recovery re-placement, not only at first arrival."""

    def test_after_migration(self):
        # Three open jobs on two nodes; an always-on migration trigger
        # (threshold 1.0, patience 1) moves one within two epochs. The
        # audit runs at every _views call, including the migration's
        # exclude-source call and every subsequent placement.
        trace = ArrivalTrace(
            n_epochs=3, jobs=typed_jobs("qos", "batch", "qos")
        )
        simulator = ClusterSimulator(
            trace,
            n_nodes=2,
            placement="slo_aware",
            policy="EqualPartition",
            catalog=experiment_catalog(4),
            epoch_config=TINY,
            seed=1,
            migration=MigrationConfig(fairness_threshold=1.0, patience=1),
            qos_slo=EASY_SLO,
        )
        calls = install_view_audit(simulator, trace)
        result = simulator.run()
        assert result.migrations >= 1
        # The migration path presents the source node as full.
        assert any(exclude is not None for exclude in calls)

    def test_after_crash_recovery_replacement(self):
        # Node 0 crashes with a qos job aboard; recovery drains it and
        # re-places via the placement policy. The re-placed arrival
        # must carry its qos kind, and every view must reflect it.
        trace = ArrivalTrace(
            n_epochs=5, jobs=typed_jobs("qos", "batch", "qos")
        )
        simulator = ClusterSimulator(
            trace,
            n_nodes=2,
            placement="slo_aware",
            policy="EqualPartition",
            catalog=experiment_catalog(4),
            epoch_config=TINY,
            seed=1,
            node_capacity=2,
            fleet_plans={0: NodeFaultPlan(crash_epoch=1, crash_rejoin_epochs=2)},
            recovery=RecoveryConfig(),
            qos_slo=EASY_SLO,
        )
        calls = install_view_audit(simulator, trace)
        result = simulator.run()
        assert result.node_downs == 1
        assert result.replacements >= 1
        assert result.jobs_lost == ()
        assert len(calls) > 0


class TestSimulatorSLO:
    def run_qos(self, trace=None, **kwargs):
        defaults = dict(
            n_nodes=2,
            placement="slo_aware",
            policy="EqualPartition",
            catalog=experiment_catalog(4),
            epoch_config=TINY,
            seed=1,
            qos_slo=EASY_SLO,
        )
        defaults.update(kwargs)
        if trace is None:
            trace = ArrivalTrace(
                n_epochs=3, jobs=typed_jobs("qos", "batch", "batch", "qos")
            )
        return ClusterSimulator(trace, **defaults).run()

    def test_result_carries_slo_summary(self):
        result = self.run_qos()
        assert result.slo is not None
        assert result.slo.qos_jobs == 2
        assert 0.0 <= result.slo.attainment <= 1.0
        assert result.qos_attainment() == result.slo.attainment
        assert result.qos_miss_rate() == result.slo.miss_rate

    def test_records_carry_kinds_and_attainment(self):
        result = self.run_qos()
        for record in result.records:
            assert len(record.job_kinds) == len(record.job_ids)
            scored = {job_id for job_id, _ in record.slo_attained}
            expected = {
                job_id
                for job_id, kind in zip(record.job_ids, record.job_kinds)
                if kind == "qos"
            }
            assert scored == expected

    def test_no_slo_means_no_summary(self):
        result = self.run_qos(qos_slo=None)
        assert result.slo is None
        assert result.qos_attainment() != result.qos_attainment()  # NaN

    def test_failed_epoch_scores_qos_jobs_zero(self):
        # A permanent straggler past the recovery deadline: every epoch
        # on the node fails with the jobs still aboard (a crash would
        # drain them into the queue instead), so the outage path must
        # score each resident qos job 0.0 for those epochs.
        trace = ArrivalTrace(n_epochs=3, jobs=typed_jobs("qos", "batch"))
        result = self.run_qos(
            trace=trace,
            n_nodes=1,
            fleet_plans={
                0: NodeFaultPlan(straggler_rate=0.99, straggler_slowdown=10.0)
            },
            recovery=RecoveryConfig(
                straggler_deadline_factor=3.0, failure_threshold=10
            ),
        )
        assert result.node_epoch_failures >= 1
        outage_scores = [
            value
            for record in result.records
            if record.failed
            for _, value in record.slo_attained
        ]
        assert outage_scores and all(value == 0.0 for value in outage_scores)
        assert result.slo.attainment < 1.0
        assert result.slo.misses  # the outage produced miss events

    def test_qos_fraction_zero_is_bit_identical(self):
        # The flag-threading guarantee: qos_fraction=0 must not change
        # a single RNG draw, so the whole cluster run — records, spec
        # digests, telemetry — is equal to the untyped-trace run.
        untyped = poisson_trace(
            n_epochs=3, arrival_rate=1.5, mean_residency=2.0,
            suites=("ecp",), seed=7, initial_jobs=4,
        )
        typed = poisson_trace(
            n_epochs=3, arrival_rate=1.5, mean_residency=2.0,
            suites=("ecp",), seed=7, initial_jobs=4, qos_fraction=0.0,
        )

        def run(trace):
            return ClusterSimulator(
                trace,
                n_nodes=2,
                placement="slo_aware",
                policy="EqualPartition",
                catalog=experiment_catalog(4),
                epoch_config=TINY,
                seed=1,
            ).run()

        assert run(untyped) == run(typed)


class TestQosSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return qos_sweep(
            shapes=("flash_crowd",),
            policies=("EqualPartition", "SATORI"),
            qos_fractions=(0.5,),
            trace_seeds=(0,),
            n_nodes=2,
            n_epochs=3,
            slo=EASY_SLO,
            epoch_config=TINY,
        )

    def test_report_covers_the_grid(self, report):
        assert report.shapes == ("flash_crowd",)
        assert report.policies == ("EqualPartition", "SATORI")
        assert len(report.cells) == 2
        for cell in report.cells:
            assert cell.qos_jobs > 0
            assert 0.0 <= cell.attainment <= 1.0

    def test_aggregations_and_deltas(self, report):
        attainment = report.attainment("flash_crowd", "SATORI")
        cells = report.cells_for("flash_crowd", "SATORI", 0.5)
        assert len(cells) == 1
        assert attainment == pytest.approx(cells[0].attainment)
        # Deltas are against the SATORI baseline, so SATORI's is zero.
        assert report.attainment_delta("flash_crowd", "SATORI") == pytest.approx(0.0)
        assert report.fairness_delta("flash_crowd", "SATORI") == pytest.approx(0.0)

    def test_to_dict_is_json_codable(self, report):
        data = json.loads(json.dumps(report.to_dict()))
        assert data["slo"]["min_speedup"] == EASY_SLO.min_speedup
        nested = data["shapes"]["flash_crowd"]["SATORI"]
        assert set(nested) >= {"attainment", "fairness"}
        assert len(data["cells"]) == 2

    def test_summary_renders(self, report):
        text = report.summary()
        assert "flash_crowd" in text and "SATORI" in text

    def test_unknown_shape_rejected(self):
        with pytest.raises(ExperimentError, match="shape"):
            qos_trace("tsunami")

    def test_qos_trace_tags_requested_fraction(self):
        trace = qos_trace("diurnal", qos_fraction=1.0, seed=3)
        assert trace.jobs and all(job.kind == "qos" for job in trace.jobs)
