"""Unit tests for the simulated hardware substrate (MSR/CAT/MBA/affinity/RAPL)."""

import pytest

from repro.errors import HardwareError
from repro.hardware.affinity import CoreAffinityController
from repro.hardware.cat import CacheAllocationTechnology, is_contiguous_mask
from repro.hardware.mba import THROTTLE_STEP, MemoryBandwidthAllocator
from repro.hardware.msr import (
    IA32_L2_QOS_EXT_BW_THRTL_BASE,
    IA32_L3_QOS_MASK_BASE,
    MSR_PKG_POWER_LIMIT,
    MsrFile,
)
from repro.hardware.rapl import POWER_UNIT_WATTS, PowerCapController


class TestMsrFile:
    def test_unwritten_reads_zero(self):
        assert MsrFile().read(0xC90) == 0

    def test_write_read_roundtrip(self):
        msr = MsrFile()
        msr.write(0xC90, 0xFF)
        assert msr.read(0xC90) == 0xFF

    def test_sub_index_isolated(self):
        msr = MsrFile()
        msr.write(0xC8F, 1, sub_index=0)
        msr.write(0xC8F, 2, sub_index=1)
        assert msr.read(0xC8F, 0) == 1
        assert msr.read(0xC8F, 1) == 2

    def test_negative_address_rejected(self):
        with pytest.raises(HardwareError):
            MsrFile().write(-1, 0)

    def test_value_over_64_bits_rejected(self):
        with pytest.raises(HardwareError):
            MsrFile().write(0xC90, 2**64)

    def test_iteration_sorted(self):
        msr = MsrFile()
        msr.write(0xD50, 1)
        msr.write(0xC90, 2)
        keys = [k for k, _ in msr]
        assert keys == sorted(keys)


class TestContiguousMask:
    @pytest.mark.parametrize("mask", [0b1, 0b11, 0b1110, 0b1111111111])
    def test_contiguous(self, mask):
        assert is_contiguous_mask(mask)

    @pytest.mark.parametrize("mask", [0, 0b101, 0b1001, 0b1101])
    def test_non_contiguous(self, mask):
        assert not is_contiguous_mask(mask)


class TestCat:
    @pytest.fixture
    def cat(self):
        return CacheAllocationTechnology(MsrFile(), n_ways=10)

    def test_apply_partition_masks_disjoint(self, cat):
        masks = cat.apply_partition([3, 3, 4])
        assert masks == [0b111, 0b111000, 0b1111000000]
        combined = 0
        for mask in masks:
            assert combined & mask == 0
            combined |= mask

    def test_ways_readback(self, cat):
        cat.apply_partition([2, 5, 3])
        assert [cat.ways_of(cos) for cos in range(3)] == [2, 5, 3]

    def test_mask_written_to_msr(self):
        msr = MsrFile()
        cat = CacheAllocationTechnology(msr, n_ways=10)
        cat.apply_partition([4, 6])
        assert msr.read(IA32_L3_QOS_MASK_BASE + 1) == 0b1111110000

    def test_non_contiguous_mask_rejected(self, cat):
        with pytest.raises(HardwareError, match="contiguous"):
            cat.set_mask(0, 0b101)

    def test_empty_mask_rejected(self, cat):
        with pytest.raises(HardwareError):
            cat.set_mask(0, 0)

    def test_mask_beyond_ways_rejected(self, cat):
        with pytest.raises(HardwareError):
            cat.set_mask(0, 1 << 10)

    def test_cos_out_of_range(self, cat):
        with pytest.raises(HardwareError):
            cat.set_mask(16, 1)

    def test_too_many_ways_requested(self, cat):
        with pytest.raises(HardwareError):
            cat.apply_partition([6, 6])

    def test_zero_way_job_rejected(self, cat):
        with pytest.raises(HardwareError):
            cat.apply_partition([0, 10])

    def test_more_jobs_than_cos_rejected(self):
        cat = CacheAllocationTechnology(MsrFile(), n_ways=10, n_cos=2)
        with pytest.raises(HardwareError):
            cat.apply_partition([3, 3, 4])


class TestMba:
    @pytest.fixture
    def mba(self):
        return MemoryBandwidthAllocator(MsrFile(), total_units=10)

    def test_apply_partition_throttles(self, mba):
        throttles = mba.apply_partition([2, 3, 5])
        assert throttles == [80, 70, 50]

    def test_units_roundtrip(self, mba):
        mba.apply_partition([2, 3, 5])
        assert [mba.units_of(cos) for cos in range(3)] == [2, 3, 5]

    def test_throttle_written_to_msr(self):
        msr = MsrFile()
        mba = MemoryBandwidthAllocator(msr, total_units=10)
        mba.apply_partition([1, 9])
        assert msr.read(IA32_L2_QOS_EXT_BW_THRTL_BASE) == 90

    def test_non_step_throttle_rejected(self, mba):
        with pytest.raises(HardwareError, match="multiple"):
            mba.set_throttle(0, 45)

    def test_throttle_out_of_range(self, mba):
        with pytest.raises(HardwareError):
            mba.set_throttle(0, 100)

    def test_full_allocation_unthrottled(self, mba):
        mba.apply_partition([10])
        assert mba.throttle_of(0) == 0

    def test_oversubscription_rejected(self, mba):
        with pytest.raises(HardwareError):
            mba.apply_partition([6, 6])

    def test_zero_unit_job_rejected(self, mba):
        with pytest.raises(HardwareError):
            mba.apply_partition([0, 10])

    def test_step_constant(self):
        assert THROTTLE_STEP == 10


class TestAffinity:
    @pytest.fixture
    def affinity(self):
        return CoreAffinityController(n_cores=10)

    def test_apply_partition_disjoint_ranges(self, affinity):
        sets = affinity.apply_partition([3, 3, 4])
        assert sets == [{0, 1, 2}, {3, 4, 5}, {6, 7, 8, 9}]

    def test_affinity_readback(self, affinity):
        affinity.apply_partition([5, 5])
        assert affinity.core_count_of(1) == 5

    def test_unset_job_raises(self, affinity):
        with pytest.raises(HardwareError):
            affinity.affinity_of(0)

    def test_bad_core_id_rejected(self, affinity):
        with pytest.raises(HardwareError):
            affinity.set_affinity(0, [10])

    def test_empty_core_set_rejected(self, affinity):
        with pytest.raises(HardwareError):
            affinity.set_affinity(0, [])

    def test_oversubscription_rejected(self, affinity):
        with pytest.raises(HardwareError):
            affinity.apply_partition([6, 6])


class TestRapl:
    def test_package_limit_roundtrip(self):
        rapl = PowerCapController(MsrFile(), tdp_watts=85.0)
        rapl.set_package_limit(60.0)
        assert rapl.package_limit() == pytest.approx(60.0, abs=POWER_UNIT_WATTS)

    def test_limit_above_tdp_rejected(self):
        rapl = PowerCapController(MsrFile(), tdp_watts=85.0)
        with pytest.raises(HardwareError):
            rapl.set_package_limit(100.0)

    def test_msr_encoding(self):
        msr = MsrFile()
        rapl = PowerCapController(msr, tdp_watts=85.0)
        rapl.set_package_limit(10.0)
        assert msr.read(MSR_PKG_POWER_LIMIT) == 80  # 10 W / (1/8 W)

    def test_partition_and_readback(self):
        rapl = PowerCapController(MsrFile())
        rapl.apply_partition([3, 7])
        assert rapl.units_of(1) == 7

    def test_unbudgeted_job_raises(self):
        rapl = PowerCapController(MsrFile())
        with pytest.raises(HardwareError):
            rapl.units_of(0)

    def test_zero_unit_job_rejected(self):
        with pytest.raises(HardwareError):
            PowerCapController(MsrFile()).apply_partition([0, 5])
