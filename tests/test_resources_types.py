"""Unit tests for resources.types: Resource, ResourceCatalog."""

import pytest

from repro.errors import SpaceError
from repro.resources.types import (
    CORES,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    Resource,
    ResourceCatalog,
    ResourceKind,
    default_catalog,
)


class TestResource:
    def test_name_matches_kind(self):
        r = Resource(ResourceKind.CORES, 10)
        assert r.name == "cores"

    def test_capacity_is_units_times_unit_capacity(self):
        r = Resource(ResourceKind.MEMORY_BANDWIDTH, 10, unit_capacity=1.2e9)
        assert r.capacity == pytest.approx(12e9)

    def test_zero_units_rejected(self):
        with pytest.raises(SpaceError):
            Resource(ResourceKind.CORES, 0)

    def test_negative_min_units_rejected(self):
        with pytest.raises(SpaceError):
            Resource(ResourceKind.CORES, 4, min_units=-1)

    def test_max_jobs(self):
        assert Resource(ResourceKind.LLC_WAYS, 10, min_units=2).max_jobs() == 5

    def test_max_jobs_unbounded_raises(self):
        with pytest.raises(SpaceError):
            Resource(ResourceKind.LLC_WAYS, 10, min_units=0).max_jobs()

    def test_frozen(self):
        r = Resource(ResourceKind.CORES, 10)
        with pytest.raises(AttributeError):
            r.units = 5


class TestResourceCatalog:
    def test_iteration_preserves_order(self):
        catalog = default_catalog()
        assert catalog.names == (CORES, LLC_WAYS, MEMORY_BANDWIDTH)

    def test_len(self):
        assert len(default_catalog()) == 3

    def test_contains(self):
        catalog = default_catalog()
        assert CORES in catalog
        assert "gpu" not in catalog

    def test_get_unknown_raises(self):
        with pytest.raises(SpaceError, match="unknown resource"):
            default_catalog().get("gpu")

    def test_duplicate_resources_rejected(self):
        r = Resource(ResourceKind.CORES, 4)
        with pytest.raises(SpaceError, match="duplicate"):
            ResourceCatalog([r, r])

    def test_empty_catalog_rejected(self):
        with pytest.raises(SpaceError):
            ResourceCatalog([])

    def test_subset_preserves_order(self):
        catalog = default_catalog()
        sub = catalog.subset([MEMORY_BANDWIDTH, CORES])
        assert sub.names == (CORES, MEMORY_BANDWIDTH)

    def test_subset_unknown_raises(self):
        with pytest.raises(SpaceError):
            default_catalog().subset(["gpu"])

    def test_equality_and_hash(self):
        assert default_catalog() == default_catalog()
        assert hash(default_catalog()) == hash(default_catalog())

    def test_default_catalog_unit_counts(self):
        catalog = default_catalog()
        assert catalog.get(CORES).units == 10
        assert catalog.get(LLC_WAYS).units == 10
        assert catalog.get(MEMORY_BANDWIDTH).units == 10

    def test_default_catalog_capacities(self):
        catalog = default_catalog()
        assert catalog.get(LLC_WAYS).capacity == pytest.approx(13.75 * 2**20)
        assert catalog.get(MEMORY_BANDWIDTH).capacity == pytest.approx(12e9)
