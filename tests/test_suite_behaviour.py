"""Behavioural tests of the suite models under the full system.

Beyond the parameter-level checks in ``test_workloads_suites``, these
tests assert that the *system-level behaviours* the paper's analysis
relies on actually emerge from the models.
"""

import numpy as np
import pytest

from repro.resources.allocation import Configuration, equal_partition
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH
from repro.system.contention import evaluate_system, isolation_ips
from repro.workloads.mixes import mix_from_names
from repro.workloads.registry import get_workload


def ips_under(catalog, workload, cores, ways, bw, t=0.0):
    return workload.ips_under(catalog, t, cores=cores, llc_ways=ways, bandwidth_units=bw)


class TestCoreSensitivity:
    def test_fluidanimate_gains_most_from_cores(self, catalog6):
        """The paper attributes mix-0's low gain to fluidanimate's
        core sensitivity: its IPS must scale with cores far more than
        canneal's."""
        gains = {}
        for name in ("fluidanimate", "canneal"):
            w = get_workload(name)
            gains[name] = ips_under(catalog6, w, 5, 4, 4) / ips_under(catalog6, w, 1, 4, 4)
        assert gains["fluidanimate"] > 1.5 * gains["canneal"]

    def test_swaptions_scales_nearly_linearly(self, catalog6):
        w = get_workload("swaptions")
        ratio = ips_under(catalog6, w, 6, 3, 6) / ips_under(catalog6, w, 1, 3, 6)
        assert ratio > 4.5  # near-linear over 6x cores


class TestCacheSensitivity:
    def test_canneal_cache_cliff_under_scarce_bandwidth(self, catalog6):
        """Crossing canneal's working-set cliff must collapse its memory
        traffic — the utility that co-located bandwidth competition
        turns into the non-convexity defeating single-step hill
        climbing. (Canneal's own IPS gain is capped by its serial
        compute roofline, so the cliff is asserted on
        bytes/instruction, the quantity that frees the shared bus.)"""
        phase = get_workload("canneal").phase_at(0.0)
        way_bytes = catalog6.get(LLC_WAYS).unit_capacity
        bpi_low = phase.bytes_per_instruction(1 * way_bytes)
        bpi_high = phase.bytes_per_instruction(6 * way_bytes)
        assert bpi_low > 2.5 * bpi_high
        # And some direct IPS benefit remains under scarce bandwidth.
        w = get_workload("canneal")
        assert ips_under(catalog6, w, 4, 6, 1) > 1.05 * ips_under(catalog6, w, 4, 1, 1)

    def test_streamcluster_cache_insensitive(self, catalog6):
        w = get_workload("streamcluster")
        low = ips_under(catalog6, w, 2, 1, 2)
        high = ips_under(catalog6, w, 2, 6, 2)
        assert high < 1.4 * low  # streaming: cache barely helps

    def test_xsbench_cache_resistant(self, catalog6):
        """XSBench's random lookups defeat any realistic LLC."""
        w = get_workload("xsbench")
        low = ips_under(catalog6, w, 3, 1, 3)
        high = ips_under(catalog6, w, 3, 5, 3)
        assert high < 1.25 * low


class TestBandwidthSensitivity:
    @pytest.mark.parametrize("name", ["streamcluster", "amg", "media_streaming"])
    def test_streaming_workloads_bandwidth_bound(self, catalog6, name):
        w = get_workload(name)
        low = ips_under(catalog6, w, 4, 3, 1)
        high = ips_under(catalog6, w, 4, 3, 5)
        assert high > 1.8 * low

    def test_swaptions_bandwidth_insensitive(self, catalog6):
        w = get_workload("swaptions")
        low = ips_under(catalog6, w, 4, 3, 1)
        high = ips_under(catalog6, w, 4, 3, 5)
        assert high < 1.2 * low


class TestPaperMixAnalysis:
    def test_minife_swfft_contend_for_llc(self, catalog6):
        """The paper calls minife+swfft the hardest ECP pair: both
        benefit substantially from LLC, so their joint demand exceeds
        the cache. Verify both have real cache utility under scarce
        bandwidth."""
        for name in ("minife", "swfft"):
            w = get_workload(name)
            gain = ips_under(catalog6, w, 3, 5, 1) / ips_under(catalog6, w, 3, 1, 1)
            assert gain > 1.2, name

    def test_amg_hypre_similar_system_behaviour(self, catalog6):
        """The paper calls amg+hypre the easiest pair (similar needs):
        their IPS responses across allocations must correlate highly."""
        allocations = [(1, 1, 1), (4, 2, 1), (1, 2, 4), (3, 3, 3), (2, 5, 2)]
        amg = np.array([ips_under(catalog6, get_workload("amg"), *a) for a in allocations])
        hypre = np.array([ips_under(catalog6, get_workload("hypre"), *a) for a in allocations])
        correlation = np.corrcoef(amg, hypre)[0, 1]
        assert correlation > 0.95

    def test_blackscholes_streamcluster_bandwidth_conflict(self, catalog6):
        """Sec. V: blackscholes contends with other streaming jobs for
        memory bandwidth — under a shared bus the pair's combined
        traffic saturates capacity."""
        mix = mix_from_names(["blackscholes", "streamcluster"])
        config = equal_partition(catalog6, 2).restrict([CORES, LLC_WAYS])
        state = evaluate_system(mix, catalog6, config, 0.0)
        capacity = catalog6.get(MEMORY_BANDWIDTH).capacity
        assert state.memory_bandwidth_bytes_s.sum() > 0.85 * capacity


class TestContentionEdgeCases:
    def test_two_job_minimum_mix(self, catalog6):
        mix = mix_from_names(["amg", "hypre"])
        state = evaluate_system(mix, catalog6, equal_partition(catalog6, 2), 0.0)
        assert state.ips.shape == (2,)

    def test_degenerate_all_to_one_job(self, catalog6):
        """Starving jobs to one unit each must stay finite and positive."""
        mix = mix_from_names(["canneal", "fluidanimate", "streamcluster"])
        config = Configuration(
            {CORES: (4, 1, 1), LLC_WAYS: (4, 1, 1), MEMORY_BANDWIDTH: (4, 1, 1)}
        )
        state = evaluate_system(mix, catalog6, config, 0.0)
        assert np.all(np.isfinite(state.ips)) and np.all(state.ips > 0)

    def test_isolation_invariant_to_config(self, catalog6):
        mix = mix_from_names(["amg", "hypre"])
        iso_a = isolation_ips(mix, catalog6, 1.0)
        iso_b = isolation_ips(mix, catalog6, 1.0)
        assert np.array_equal(iso_a, iso_b)
