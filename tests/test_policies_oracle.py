"""Tests for the brute-force Oracle."""

import numpy as np
import pytest

from repro.errors import PolicyError
from repro.metrics.goals import GoalSet
from repro.policies.oracle import OraclePolicy, OracleSearch, balanced_oracle
from repro.resources.types import CORES, LLC_WAYS, MEMORY_BANDWIDTH, default_catalog
from repro.workloads.mixes import mix_from_names


@pytest.fixture(scope="module")
def mix():
    return mix_from_names(["canneal", "fluidanimate", "streamcluster"])


@pytest.fixture(scope="module")
def search(mix):
    from repro.experiments.runner import experiment_catalog

    return OracleSearch(mix, experiment_catalog(units=6))


class TestOracleSearch:
    def test_best_is_space_member(self, search):
        result = search.best(0.0, 0.5, 0.5)
        assert search.space.contains(result.config)

    def test_vectorized_matches_exhaustive(self, mix):
        """The broadcasting search must equal literal enumeration."""
        from repro.experiments.runner import experiment_catalog

        catalog = experiment_catalog(units=4)
        small = OracleSearch(mix, catalog)
        result = small.best(0.0, 0.5, 0.5)

        best_value = -1.0
        best_config = None
        for config in small.space.enumerate():
            t, f = small.evaluate(config, 0.0)
            value = 0.5 * t + 0.5 * f
            if value > best_value:
                best_value = value
                best_config = config
        assert result.objective == pytest.approx(best_value, rel=1e-9)
        assert result.config == best_config

    def test_throughput_oracle_dominates_in_throughput(self, search):
        t_opt = search.best(0.0, 1.0, 0.0)
        balanced = search.best(0.0, 0.5, 0.5)
        f_opt = search.best(0.0, 0.0, 1.0)
        assert t_opt.throughput >= balanced.throughput >= f_opt.throughput - 1e-12

    def test_fairness_oracle_dominates_in_fairness(self, search):
        t_opt = search.best(0.0, 1.0, 0.0)
        f_opt = search.best(0.0, 0.0, 1.0)
        assert f_opt.fairness >= t_opt.fairness

    def test_conflicting_goals_give_different_configs(self, search):
        assert search.best(0.0, 1.0, 0.0).config != search.best(0.0, 0.0, 1.0).config

    def test_cache_hit_returns_same_object(self, search):
        a = search.best(0.0, 0.5, 0.5)
        b = search.best(0.0, 0.5, 0.5)
        assert a is b

    def test_same_phase_key_shares_result(self, search, mix):
        t_same = 0.01  # still inside every job's first phase
        assert search.phase_key(0.0) == search.phase_key(t_same)
        assert search.best(0.0, 0.5, 0.5) is search.best(t_same, 0.5, 0.5)

    def test_optimum_changes_across_phases(self, search):
        """Fig. 1: the optimal configuration drifts as phases change."""
        configs = {search.best(t, 1.0, 0.0).config for t in (0.0, 3.2, 5.6, 7.9)}
        assert len(configs) > 1

    def test_evaluate_consistent_with_best(self, search):
        result = search.best(0.0, 0.5, 0.5)
        t, f = search.evaluate(result.config, 0.0)
        assert t == pytest.approx(result.throughput, rel=1e-9)
        assert f == pytest.approx(result.fairness, rel=1e-9)

    def test_space_size_guard(self, mix):
        with pytest.raises(PolicyError, match="above the cap"):
            OracleSearch(mix, default_catalog(), max_configs=10)

    def test_n_configs_reported(self, search):
        assert search.best(0.0, 0.5, 0.5).n_configs == search.space.size()

    @pytest.mark.parametrize("throughput_metric", ["sum_ips", "geometric_mean", "harmonic_mean"])
    @pytest.mark.parametrize("fairness_metric", ["jain", "one_minus_cov"])
    def test_all_metric_combinations(self, mix, throughput_metric, fairness_metric):
        from repro.experiments.runner import experiment_catalog

        goals = GoalSet(throughput_metric, fairness_metric)
        search = OracleSearch(mix, experiment_catalog(units=4), goals)
        result = search.best(0.0, 0.5, 0.5)
        t, f = search.evaluate(result.config, 0.0)
        assert result.objective == pytest.approx(0.5 * t + 0.5 * f, rel=1e-9)


class TestOraclePolicy:
    def test_variant_names(self, search):
        assert OraclePolicy(search, 1.0, 0.0).name == "Throughput Oracle"
        assert OraclePolicy(search, 0.0, 1.0).name == "Fairness Oracle"
        assert OraclePolicy(search, 0.5, 0.5).name == "Balanced Oracle"

    def test_decide_uses_observation_time(self, search, mix, catalog6):
        from repro.experiments.runner import experiment_catalog
        from repro.system.simulation import CoLocationSimulator

        catalog = experiment_catalog(units=6)
        policy = OraclePolicy(search, 0.5, 0.5)
        sim = CoLocationSimulator(mix, catalog, seed=0)
        config = policy.decide(None)
        assert config == search.best(0.0, 0.5, 0.5).config
        obs = sim.step(config)
        config2 = policy.decide(obs)
        assert config2 == search.best(obs.time_s, 0.5, 0.5).config

    def test_balanced_oracle_helper(self, mix):
        from repro.experiments.runner import experiment_catalog

        policy = balanced_oracle(mix, experiment_catalog(units=4))
        assert policy.name == "Balanced Oracle"
