"""Cross-module integration tests: full stacks on small scenarios."""

import numpy as np
import pytest

from repro import (
    CoLocationSimulator,
    GoalSet,
    RunConfig,
    SatoriController,
    UnmanagedPolicy,
    balanced_oracle,
    compare_on_mix,
    experiment_catalog,
    full_space,
    run_policy,
    suite_mixes,
)
from repro.hardware.msr import IA32_L3_QOS_MASK_BASE
from repro.policies.parties import PartiesPolicy
from repro.workloads.mixes import mix_from_names
from repro.workloads.synthetic import random_workloads
from repro.workloads.mixes import JobMix


class TestFullStack:
    def test_satori_end_to_end_improves_over_unmanaged(self, catalog6, parsec_mix3):
        rc = RunConfig(duration_s=10.0)
        satori = run_policy(
            SatoriController(full_space(catalog6, 3), rng=0), parsec_mix3, catalog6, rc, seed=0
        )
        unmanaged = run_policy(UnmanagedPolicy(full_space(catalog6, 3)), parsec_mix3, catalog6, rc, seed=0)
        assert satori.throughput + satori.fairness > unmanaged.throughput + unmanaged.fairness

    def test_oracle_bounds_all_policies_on_objective(self, catalog6, parsec_mix3):
        """No online policy beats the Balanced Oracle's weighted objective."""
        rc = RunConfig(duration_s=8.0)
        oracle = run_policy(balanced_oracle(parsec_mix3, catalog6), parsec_mix3, catalog6, rc, seed=3)
        oracle_objective = 0.5 * oracle.throughput + 0.5 * oracle.fairness
        for policy in (
            SatoriController(full_space(catalog6, 3), rng=3),
            PartiesPolicy(full_space(catalog6, 3)),
        ):
            result = run_policy(policy, parsec_mix3, catalog6, rc, seed=3)
            objective = 0.5 * result.throughput + 0.5 * result.fairness
            assert objective <= oracle_objective * 1.08  # noise + transient slack

    def test_msrs_reflect_final_configuration(self, catalog6, parsec_mix3):
        sim = CoLocationSimulator(parsec_mix3, catalog6, seed=0)
        controller = SatoriController(full_space(catalog6, 3), rng=0)
        observation = None
        for _ in range(20):
            config = controller.decide(observation)
            observation = sim.step(config)
        # The CAT MSRs must encode exactly the last installed way split.
        ways = observation.config.units("llc_ways")
        offset = 0
        for cos, count in enumerate(ways):
            expected = ((1 << count) - 1) << offset
            assert sim.msr.read(IA32_L3_QOS_MASK_BASE + cos) == expected
            offset += count

    def test_synthetic_workloads_full_pipeline(self, catalog6):
        """The whole stack also runs on randomly generated workloads."""
        mix = JobMix(tuple(random_workloads(3, rng=21)))
        comparison = compare_on_mix(
            mix,
            catalog6,
            RunConfig(duration_s=4.0),
            seed=1,
            include=("Random", "SATORI"),
        )
        for score in comparison.scores.values():
            assert 0 < score.throughput_vs_oracle < 200
            assert 0 < score.fairness_vs_oracle < 200

    def test_cross_suite_mix(self, catalog6):
        """Mixes can combine workloads from different suites."""
        mix = mix_from_names(["canneal", "amg", "web_search"])
        result = run_policy(
            SatoriController(full_space(catalog6, 3), rng=0),
            mix,
            catalog6,
            RunConfig(duration_s=4.0),
            seed=0,
        )
        assert 0 < result.throughput <= 1

    def test_alternative_metrics_full_run(self, catalog6, parsec_mix3):
        goals = GoalSet("geometric_mean", "one_minus_cov")
        result = run_policy(
            SatoriController(full_space(catalog6, 3), goals, rng=0),
            parsec_mix3,
            catalog6,
            RunConfig(duration_s=4.0),
            goals=goals,
            seed=0,
        )
        assert 0 < result.throughput <= 1
        assert 0 <= result.fairness <= 1

    def test_long_run_stability(self, catalog4):
        """A longer run neither crashes nor degenerates (weights bounded,
        scores in range, time advances exactly)."""
        mix = mix_from_names(["amg", "hypre"])
        controller = SatoriController(full_space(catalog4, 2), rng=0)
        result = run_policy(controller, mix, catalog4, RunConfig(duration_s=30.0), seed=0)
        assert len(result.telemetry) == 300
        assert result.telemetry[-1].time_s == pytest.approx(30.0)
        weights = result.telemetry.series("weight_throughput")
        valid = weights[~np.isnan(weights)]
        assert np.all(valid >= 0.25 - 1e-9) and np.all(valid <= 0.75 + 1e-9)

    def test_determinism_of_full_comparison(self, catalog4):
        mix = mix_from_names(["amg", "hypre"])

        def run():
            return compare_on_mix(
                mix, catalog4, RunConfig(duration_s=3.0), seed=7, include=("SATORI",)
            ).score("SATORI")

        a, b = run(), run()
        assert a.throughput == b.throughput
        assert a.fairness == b.fairness


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_experiment_exports_resolve(self):
        import repro.experiments as experiments

        for name in experiments.__all__:
            assert getattr(experiments, name) is not None
