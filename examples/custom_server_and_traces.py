#!/usr/bin/env python3
"""Bring your own machine and workloads.

Runs SATORI on a *named server preset* (an AMD Milan CCX here, rather
than the paper's Skylake part) with one workload *fitted from a
profiling trace* — the path a user takes to apply SATORI to their own
deployment:

1. pick/describe the server (``repro.resources.presets``);
2. profile each workload briefly (pqos + CAT sweeps) and fit it
   (``repro.workloads.trace``);
3. validate the fitted profile (``repro.workloads.validation``);
4. co-locate and let SATORI partition.

Run:
    python examples/custom_server_and_traces.py
"""

from repro import RunConfig, SatoriController, full_space, run_policy
from repro.experiments import format_table
from repro.policies import EqualPartitionPolicy
from repro.resources import preset_catalog
from repro.workloads import JobMix, get_workload
from repro.workloads.trace import synthesize_trace, workload_from_trace
from repro.workloads.validation import validate_workload


def main() -> None:
    # 1. The server: an 8-core Milan CCX with L3 QoS.
    catalog = preset_catalog("milan-ccx-8")
    print("Server: milan-ccx-8")
    for resource in catalog:
        print(f"  {resource.name:18s} {resource.units:3d} units "
              f"({resource.capacity:.3g} total)")

    # 2. A "customer workload": here we synthesize the profiling trace
    #    from a known model (stand-in for real pqos measurements), then
    #    fit it back — exactly what you would do with recorded probes.
    probes = synthesize_trace(get_workload("canneal"), n_cores=8)
    customer = workload_from_trace("customer_annealer", probes,
                                   description="fitted from profiling probes")
    print(f"\nFitted workload: {customer.name} "
          f"({len(customer.schedule.segments)} phases)")

    # 3. Validate the fitted profile before trusting it.
    findings = validate_workload(customer, catalog)
    if findings:
        for finding in findings:
            print(f"  {finding}")
    else:
        print("  profile validation: clean")

    # 4. Co-locate with two library workloads and partition online.
    mix = JobMix((customer, get_workload("amg"), get_workload("media_streaming")))
    run_config = RunConfig(duration_s=15.0)
    rows = []
    for policy in (
        EqualPartitionPolicy(full_space(catalog, len(mix))),
        SatoriController(full_space(catalog, len(mix)), rng=0),
    ):
        result = run_policy(policy, mix, catalog, run_config, seed=0)
        rows.append([result.policy_name, result.throughput, result.fairness])

    print()
    print(format_table(["policy", "throughput", "fairness"], rows, precision=3,
                       title=f"mix: {mix.label}"))


if __name__ == "__main__":
    main()
