#!/usr/bin/env python3
"""Adaptation without re-initialization: a mid-run workload swap.

Sec. III-C of the paper claims that "be it a phase change or a change
in the workload mixes, SATORI requires no further initialization."
This example runs SATORI on a five-job PARSEC mix, swaps one job for a
different benchmark halfway through, and plots (as text) how SATORI's
objective-to-oracle ratio dips and recovers — with replication over
several seeds to show the effect is robust, not one lucky run.

Run:
    python examples/workload_churn_adaptation.py
"""

import numpy as np

from repro.analysis import confidence_interval
from repro.experiments import format_table, workload_churn
from repro.workloads import get_workload, suite_mixes


def main() -> None:
    mix = suite_mixes("parsec")[0]
    newcomer = get_workload("vips")
    print(f"Mix: {mix.label}")
    print(f"At t=12 s, job 2 ({mix.names[2]}) is replaced by {newcomer.name}.\n")

    before, disturbed, recovered = [], [], []
    for seed in range(3):
        result = workload_churn(
            mix, newcomer, swap_index=2, duration_s=24.0, seed=seed, window_s=4.0
        )
        before.append(result.before_ratio)
        disturbed.append(result.disturbance_ratio)
        recovered.append(result.recovered_ratio)

    print(
        format_table(
            ["window", "objective / Balanced Oracle"],
            [
                ["before the swap", str(confidence_interval(before))],
                ["right after the swap", str(confidence_interval(disturbed))],
                ["end of run (recovered)", str(confidence_interval(recovered))],
            ],
            title="Mean objective ratio (3 seeds, 95 % CI):",
        )
    )

    drop = np.mean(before) - np.mean(disturbed)
    regain = np.mean(recovered) - np.mean(disturbed)
    print(
        f"\nThe swap costs {100 * max(drop, 0):.1f} points of optimality; SATORI "
        f"recovers {100 * max(regain, 0):.1f} points by the end of the run, with "
        "no reset — its per-goal records simply re-learn the new landscape."
    )


if __name__ == "__main__":
    main()
