#!/usr/bin/env python3
"""Quickstart: run SATORI on a co-located PARSEC job mix.

Builds the simulated server, co-locates five PARSEC workloads, lets
SATORI partition cores / LLC ways / memory bandwidth online for 20
simulated seconds, and compares the outcome against a static equal
partition and the practically-infeasible Balanced Oracle.

Run:
    python examples/quickstart.py
"""

from repro import (
    EqualPartitionPolicy,
    OraclePolicy,
    OracleSearch,
    RunConfig,
    SatoriController,
    experiment_catalog,
    full_space,
    run_policy,
    suite_mixes,
)
from repro.experiments import format_table


def main() -> None:
    # The server: 8 allocation units each of cores, LLC ways, and
    # memory-bandwidth (total capacities match the paper's testbed).
    catalog = experiment_catalog(units=8)

    # Five co-located PARSEC workloads (job mix 17, one of the paper's
    # high-gain mixes).
    mix = suite_mixes("parsec")[17]
    print(f"Job mix: {mix.label}")
    print(f"Configuration space size: {full_space(catalog, len(mix)).size():,}\n")

    run_config = RunConfig(duration_s=20.0)

    policies = {
        "Equal partition": EqualPartitionPolicy(full_space(catalog, len(mix))),
        "SATORI": SatoriController(full_space(catalog, len(mix)), rng=0),
        "Balanced Oracle": OraclePolicy(OracleSearch(mix, catalog), 0.5, 0.5),
    }

    rows = []
    for name, policy in policies.items():
        result = run_policy(policy, mix, catalog, run_config, seed=0)
        rows.append([name, result.throughput, result.fairness, result.worst_job_speedup])

    print(
        format_table(
            ["policy", "throughput", "fairness (Jain)", "worst-job speedup"],
            rows,
            precision=3,
            title="20 s of online partitioning (scores normalized to isolation):",
        )
    )
    print(
        "\nSATORI should land close to the Balanced Oracle and clearly above"
        "\nthe static equal partition on both goals."
    )


if __name__ == "__main__":
    main()
