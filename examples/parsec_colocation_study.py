#!/usr/bin/env python3
"""Co-location study: all competing policies on PARSEC mixes (mini Fig. 7/8).

Runs Random, dCAT, CoPart, PARTIES, and SATORI on several five-job
PARSEC mixes and reports throughput and fairness as a percentage of
the Balanced Oracle — the paper's Fig. 7/8 presentation. Use
``--mixes N`` for more mixes (all 21 reproduces Fig. 8; the default
subset keeps the example fast).

Run:
    python examples/parsec_colocation_study.py [--mixes 4] [--duration 20]
"""

import argparse

import numpy as np

from repro import RunConfig, experiment_catalog, suite_mixes
from repro.experiments import (
    STANDARD_POLICY_ORDER,
    aggregate,
    compare_on_mixes,
    format_table,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mixes", type=int, default=4, help="number of PARSEC mixes (max 21)")
    parser.add_argument("--duration", type=float, default=20.0, help="simulated seconds per run")
    args = parser.parse_args()

    catalog = experiment_catalog()
    all_mixes = suite_mixes("parsec")
    stride = max(1, len(all_mixes) // args.mixes)
    mixes = all_mixes[::stride][: args.mixes]

    comparisons = compare_on_mixes(
        mixes, catalog, RunConfig(duration_s=args.duration), seed=0
    )

    print("Per-mix results (% of Balanced Oracle, throughput/fairness):\n")
    rows = []
    for comparison in comparisons:
        row = [comparison.mix_label[:48]]
        for name in STANDARD_POLICY_ORDER:
            score = comparison.score(name)
            row.append(f"{score.throughput_vs_oracle:.0f}/{score.fairness_vs_oracle:.0f}")
        rows.append(row)
    print(format_table(["mix"] + list(STANDARD_POLICY_ORDER), rows))

    print("\nAggregate (mean % of Balanced Oracle):\n")
    agg = aggregate(comparisons, STANDARD_POLICY_ORDER)
    print(
        format_table(
            ["policy", "throughput %", "fairness %"],
            [[name, t, f] for name, (t, f) in agg.items()],
        )
    )

    satori_t, satori_f = agg["SATORI"]
    parties_t, parties_f = agg["PARTIES"]
    print(
        f"\nSATORI vs PARTIES: {satori_t - parties_t:+.1f} throughput points, "
        f"{satori_f - parties_f:+.1f} fairness points "
        "(paper: +14 points on both at this co-location degree)."
    )


if __name__ == "__main__":
    main()
