#!/usr/bin/env python3
"""Extending SATORI with a third goal: energy efficiency.

Sec. III-B argues SATORI's per-goal records make the objective
"portable, customizable, and extensible to multiple objectives
without much user-based coding effort". This example demonstrates it
by composing the library's building blocks directly — GoalRecords
with three goals (throughput, fairness, energy efficiency), the BO
engine, and the simulated server with a RAPL-style power model — in a
custom control loop. No library change is needed.

The energy model: active power grows with allocated cores and with
achieved memory traffic (uncore); efficiency is instructions per
joule, normalized by the isolated-execution efficiency.

Run:
    python examples/custom_objective_energy.py
"""

import numpy as np

from repro import (
    BayesianOptimizer,
    GoalRecords,
    GoalSet,
    CoLocationSimulator,
    experiment_catalog,
    full_space,
    suite_mixes,
)
from repro.core.initializers import good_initial_set
from repro.experiments import format_table

#: Simple server power model (watts).
IDLE_WATTS = 25.0
WATTS_PER_CORE = 5.5
WATTS_PER_GBS = 0.8


def power_draw(cores_per_job, bandwidth_bytes_s) -> float:
    """Package power under an allocation and achieved memory traffic."""
    return (
        IDLE_WATTS
        + WATTS_PER_CORE * float(np.sum(cores_per_job))
        + WATTS_PER_GBS * float(np.sum(bandwidth_bytes_s)) / 1e9
    )


def main() -> None:
    catalog = experiment_catalog()
    mix = suite_mixes("parsec")[5]
    space = full_space(catalog, len(mix))
    goals = GoalSet()
    simulator = CoLocationSimulator(mix, catalog, seed=0)

    # Reference efficiency: every job alone on the full machine.
    iso_ips = simulator.measure_isolation()
    iso_efficiency = float(np.sum(iso_ips)) / power_draw(
        [catalog.get("cores").units], [12e9]
    )

    # Three-goal records: the third column is energy efficiency.
    records = GoalRecords(("throughput", "fairness", "energy"))
    bo = BayesianOptimizer(space, rng=1)
    weights = (0.4, 0.3, 0.3)

    config = None
    observation = None
    initial = list(good_initial_set(space, rng=1))
    for step in range(200):
        config = initial.pop(0) if initial else bo.suggest(records, weights).config
        observation = simulator.step(config)

        scores = goals.scores(observation.ips, observation.isolation_ips)
        watts = power_draw(config.units("cores"), observation.memory_bandwidth_bytes_s)
        efficiency = min(1.0, (sum(observation.ips) / watts) / iso_efficiency)
        records.add(
            config, space.encode(config), (scores.throughput, scores.fairness, efficiency)
        )

    best_config, best_value = records.best(weights)
    trace = records.goal_trace()
    print(f"Job mix: {mix.label}")
    print(f"Explored {len(records)} retained samples; best 3-goal objective: {best_value:.3f}\n")
    print(
        format_table(
            ["goal", "first-10 mean", "last-10 mean"],
            [
                [name, float(np.mean(v[:10])), float(np.mean(v[-10:]))]
                for name, v in trace.items()
            ],
            precision=3,
            title="Goal scores over the run (BO improves all three jointly):",
        )
    )
    print("\nBest configuration found:")
    for name in best_config.resource_names:
        print(f"  {name:18s} {best_config.units(name)}")


if __name__ == "__main__":
    main()
