#!/usr/bin/env python3
"""Inside SATORI: dynamic goal prioritization at work (mini Fig. 14).

Runs full SATORI on one mix, prints the throughput/fairness weight
trace with its equalization and prioritization components, and then
compares against the static-0.5/0.5 variant to show the gain that
"sacrificing short-term benefits for long-term gains" buys.

Run:
    python examples/dynamic_prioritization_demo.py
"""

import numpy as np

from repro import RunConfig, experiment_catalog, suite_mixes
from repro.experiments import dynamic_vs_static, format_table, weight_trace


def main() -> None:
    catalog = experiment_catalog()
    mix = suite_mixes("parsec")[17]  # a high-gain mix per the paper's analysis
    run_config = RunConfig(duration_s=20.0)

    print(f"Job mix: {mix.label}\n")
    trace, _ = weight_trace(mix, catalog, run_config, seed=3)

    print("Weight trace (1 s samples) — Fig. 14(a) decomposition:\n")
    rows = []
    for i in range(0, len(trace.times), 10):
        rows.append(
            [
                trace.times[i],
                trace.w_throughput[i],
                trace.w_fairness[i],
                trace.prioritization_throughput[i],
                trace.equalization_throughput[i],
            ]
        )
    print(
        format_table(
            ["t (s)", "W_T", "W_F", "W_T prioritization", "W_T equalization"],
            rows,
            precision=3,
        )
    )

    mean_t, mean_f = trace.mean_weights()
    print(
        f"\nLong-term averages: W_T={mean_t:.3f}, W_F={mean_f:.3f} "
        "(the equalization period pins both to ~0.5)"
    )
    print(
        f"Largest short-term deviation from 0.5: {trace.max_deviation_from_equal():.2f} "
        "(the paper observes deviations up to 0.25, i.e. 50 %)"
    )

    print("\nDynamic vs static weights — Fig. 14(b):\n")
    comparison = dynamic_vs_static(mix, catalog, run_config, seed=3)
    print(
        format_table(
            ["variant", "throughput", "fairness"],
            [
                ["SATORI (dynamic)", comparison.dynamic.throughput, comparison.dynamic.fairness],
                ["SATORI (static 0.5/0.5)", comparison.other.throughput, comparison.other.fairness],
            ],
            precision=3,
        )
    )
    print(
        f"\nDynamic prioritization gain: {comparison.throughput_gain_percent:+.1f} % throughput, "
        f"{comparison.fairness_gain_percent:+.1f} % fairness "
        "(paper: up to +10 % on both)."
    )


if __name__ == "__main__":
    main()
